"""Ablation benchmarks for design choices the paper (or our
reproduction of it) depends on. These go beyond the paper's figures:

* **CCWS vs Best-SWL** — Section 2.4's justification for using the
  static oracle as the main baseline ("Best-SWL has been shown to
  provide better performance than dynamic warp throttling techniques
  such as CCWS").
* **Monitoring window length** — Table 3 fixes 50 000 cycles; the
  scaled config uses 2 000. How sensitive is Linebacker to it?
* **IPC variation bounds** — Table 3's ±10%.
* **DRAM model** — simple (latency+bandwidth) vs bank-level timing
  with Table 1's RCD/RP/RC/RRD/CL/WR/RAS parameters.
* **Victim-hit verification** — end-to-end token check across every
  app in the subset (no victim read may ever return stale data).

A small cache-sensitive subset keeps the runtime bounded.
"""

from dataclasses import replace

from conftest import run_once

from repro.analysis import format_series, geomean
from repro.baselines.ccws import run_ccws
from repro.core.linebacker import linebacker_factory
from repro.gpu.gpu import run_kernel

APPS = ("S2", "KM", "BC")


def _subset(ctx):
    return [a for a in APPS if a in ctx.apps] or list(ctx.apps[:2])


def test_ablation_ccws_vs_best_swl(benchmark, ctx):
    def run():
        rows = {}
        for app in _subset(ctx):
            oracle = ctx.best_swl(app)
            ccws = run_ccws(ctx.config, ctx.kernel(app))
            rows[app] = ccws.ipc / oracle.ipc
        return rows

    data = run_once(benchmark, run)
    print()
    print(format_series("Ablation: CCWS / Best-SWL (paper: <= 1)", data))
    gm = geomean(data.values())
    print(f"geomean {gm:.3f}")
    assert gm <= 1.10  # the static oracle is the stronger baseline


def test_ablation_window_length(benchmark, ctx):
    def run():
        rows = {}
        base_window = ctx.config.linebacker.window_cycles
        for factor in (0.5, 1.0, 2.0):
            lb = replace(
                ctx.config.linebacker, window_cycles=int(base_window * factor)
            )
            speeds = []
            for app in _subset(ctx):
                result = run_kernel(
                    ctx.config, ctx.kernel(app),
                    extension_factory=linebacker_factory(lb),
                )
                speeds.append(result.ipc / ctx.best_swl(app).ipc)
            rows[f"{factor}x window"] = geomean(speeds)
        return rows

    data = run_once(benchmark, run)
    print()
    print(format_series("Ablation: monitoring window length (LB/Best-SWL)", data))
    # Linebacker keeps beating the oracle across a 4x window range.
    assert min(data.values()) > 0.9


def test_ablation_ipc_bounds(benchmark, ctx):
    def run():
        rows = {}
        for bound in (0.05, 0.10, 0.20):
            lb = replace(
                ctx.config.linebacker,
                ipc_upper_bound=bound,
                ipc_lower_bound=-bound,
            )
            speeds = []
            for app in _subset(ctx):
                result = run_kernel(
                    ctx.config, ctx.kernel(app),
                    extension_factory=linebacker_factory(lb),
                )
                speeds.append(result.ipc / ctx.best_swl(app).ipc)
            rows[f"±{bound:.0%}"] = geomean(speeds)
        return rows

    data = run_once(benchmark, run)
    print()
    print(format_series("Ablation: IPC variation bounds (LB/Best-SWL)", data))
    assert min(data.values()) > 0.8


def test_ablation_dram_model(benchmark, ctx):
    def run():
        rows = {}
        for model in ("simple", "timing"):
            cfg = replace(ctx.config, gpu=replace(ctx.config.gpu, dram_model=model))
            speeds = []
            for app in _subset(ctx):
                base = run_kernel(cfg, ctx.kernel(app))
                lb = run_kernel(
                    cfg, ctx.kernel(app),
                    extension_factory=linebacker_factory(cfg.linebacker),
                )
                speeds.append(lb.ipc / base.ipc)
            rows[model] = geomean(speeds)
        return rows

    data = run_once(benchmark, run)
    print()
    print(format_series("Ablation: DRAM model (LB/baseline)", data))
    # The conclusion must not hinge on the DRAM abstraction.
    assert data["simple"] > 1.0
    assert data["timing"] > 1.0


def test_ablation_victim_correctness(benchmark, ctx):
    def run():
        corrupt = 0
        hits = 0
        for app in _subset(ctx):
            result = ctx.linebacker(app)
            for ext in result.extensions:
                corrupt += ext.stats.victim_reads_corrupt
                hits += ext.stats.victim_hits
        return {"victim_hits": hits, "corrupt_reads": corrupt}

    data = run_once(benchmark, run)
    print()
    print(format_series("Ablation: victim data integrity", data))
    assert data["corrupt_reads"] == 0
