"""Figure 1: breakdown of cold vs capacity/conflict (2C) miss ratio on
the baseline GPU.

Paper-reported shape: average L1 miss ratio 66.6%, of which
capacity/conflict misses are 44.6 percentage points (67% of all
misses); in 11 of 20 apps more than 70% of misses are 2C.
"""

from conftest import run_once

from repro.analysis import format_table, geomean, run_fig1


def test_fig1_miss_breakdown(benchmark, ctx):
    data = run_once(benchmark, run_fig1, ctx)
    print()
    print(format_table("Figure 1: miss ratio breakdown (baseline)", data,
                       columns=("cold", "capacity_conflict", "total")))
    totals = [row["total"] for row in data.values()]
    cc = [row["capacity_conflict"] for row in data.values()]
    print(f"\nmean total miss ratio: {sum(totals)/len(totals):.3f} "
          f"(paper: 0.666)")
    print(f"mean 2C miss ratio:    {sum(cc)/len(cc):.3f} (paper: 0.446)")

    # Shape assertions: capacity/conflict misses are a large share of
    # all misses. (The share is scale-dependent: shorter bench traces
    # touch each line fewer times, inflating the cold fraction; the
    # paper's 67% corresponds to full-length runs.)
    assert sum(cc) / max(1e-9, sum(totals)) > 0.30
    assert all(0.0 <= row["total"] <= 1.0 for row in data.values())
