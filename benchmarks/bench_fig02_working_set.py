"""Figure 2: per-SM reused working set of the top-4 most frequently
executed non-streaming loads within one monitoring window.

Paper-reported shape: the aggregate exceeds the 48 KB L1 in 13 of 20
applications.
"""

from conftest import run_once

from repro.analysis import format_series, run_fig2


def test_fig2_reused_working_set(benchmark, ctx):
    data = run_once(benchmark, run_fig2, ctx)
    print()
    print(format_series("Figure 2: top-4 load reused working set (KB/window)",
                        {k: round(v, 1) for k, v in data.items()}))
    l1_kb = ctx.config.gpu.l1_size_bytes / 1024
    over = [app for app, kb in data.items() if kb > l1_kb]
    print(f"\napps whose reused working set exceeds the {l1_kb:.0f} KB L1: "
          f"{len(over)}/{len(data)} ({', '.join(over)})  [paper: 13/20]")
    # The paper measures over 50 000-cycle windows; the scaled config's
    # short windows observe proportionally less reuse per window, so
    # the shape check compares against a quarter of the L1 instead of
    # the full 48 KB.
    substantial = [app for app, kb in data.items() if kb > l1_kb / 4]
    print(f"apps above {l1_kb/4:.0f} KB (scaled-window criterion): "
          f"{len(substantial)}/{len(data)}")
    assert len(substantial) >= len(data) // 3
