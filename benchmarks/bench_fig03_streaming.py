"""Figure 3: per-SM streaming data size per monitoring window.

Paper-reported shape: 9 of 20 apps stream more than 16 KB per window
(a third of the L1); in BI, LI, SR2, 2D and HS the streaming data
exceeds the whole cache.
"""

from conftest import run_once

from repro.analysis import format_series, run_fig3


def test_fig3_streaming_data(benchmark, ctx):
    data = run_once(benchmark, run_fig3, ctx)
    print()
    print(format_series("Figure 3: streaming data per window (KB)",
                        {k: round(v, 1) for k, v in data.items()}))
    streamers = [app for app, kb in data.items() if kb > 1.0]
    print(f"\napps with streaming traffic: {', '.join(streamers)}")
    expected_streamers = {"BI", "LI", "SR2", "2D", "HS"} & set(data)
    found = expected_streamers & set(streamers)
    print(f"paper's heavy streamers found: {sorted(found)} "
          f"(expected {sorted(expected_streamers)})")
    assert len(found) >= max(1, len(expected_streamers) - 1)
