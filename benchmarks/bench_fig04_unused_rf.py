"""Figure 4: statically (SUR) and dynamically (DUR) unused register
file space under the Best-SWL configuration.

Paper-reported shape: SUR ranges from ~4 KB to 144 KB (average
87.1 KB); in 13 of 20 apps Best-SWL leaves 27-173 KB dynamically
unused (average 58.7 KB among those).
"""

from conftest import run_once

from repro.analysis import format_table, run_fig4


def test_fig4_unused_register_file(benchmark, ctx):
    data = run_once(benchmark, run_fig4, ctx)
    print()
    print(format_table("Figure 4: unused register file under Best-SWL (KB)",
                       data, columns=("sur_kb", "dur_kb", "swl_limit"),
                       precision=1))
    surs = [row["sur_kb"] for row in data.values()]
    durs = [row["dur_kb"] for row in data.values() if row["dur_kb"] > 0]
    print(f"\nmean SUR: {sum(surs)/len(surs):.1f} KB (paper: 87.1 KB)")
    if durs:
        print(f"apps with DUR: {len(durs)}/{len(data)}, "
              f"mean {sum(durs)/len(durs):.1f} KB (paper: 13/20, 58.7 KB)")
    # Shape: a meaningful amount of register file is idle on average.
    assert sum(surs) / len(surs) > 16
