"""Figure 5: the idealized enhanced-L1 study — Best-SWL, CacheExt and
Best-SWL+CacheExt, normalized to the baseline.

Paper-reported shape (geomean): Best-SWL +11.5%, CacheExt +54.3%,
Best-SWL+CacheExt +77.0% — i.e. warp throttling combined with a large
cache is synergistic.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig5


def test_fig5_cache_extension_study(benchmark, ctx):
    data = run_once(benchmark, run_fig5, ctx)
    print()
    print(format_table(
        "Figure 5: idealized cache extension (normalized to baseline)",
        data, columns=("best_swl", "cache_ext", "best_swl_cache_ext")))
    gm = data["GM"]
    print(f"\ngeomeans  best_swl={gm['best_swl']:.3f} (paper 1.115)  "
          f"cache_ext={gm['cache_ext']:.3f} (paper 1.543)  "
          f"both={gm['best_swl_cache_ext']:.3f} (paper 1.770)")
    # Shape: enlarging the cache beats throttling alone, and the
    # combination is at least as good as either.
    assert gm["cache_ext"] > 1.0
    assert gm["best_swl_cache_ext"] >= gm["best_swl"] * 0.95
