"""Figure 9: idle register file space Linebacker can use as victim
cache (static + dynamic) and the number of monitoring periods it needs
to find the high-locality loads.

Paper-reported shape: averages of 88.5 KB static and 48.5 KB dynamic
unused space; most apps find their loads within two periods.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig9


def test_fig9_linebacker_victim_space(benchmark, ctx):
    data = run_once(benchmark, run_fig9, ctx)
    print()
    print(format_table(
        "Figure 9: Linebacker victim space (KB) and monitoring periods",
        data, columns=("sur_kb", "dur_kb", "monitoring_periods"), precision=1))
    periods = [row["monitoring_periods"] for row in data.values()]
    within_two = sum(1 for p in periods if 0 < p <= 2)
    print(f"\napps selecting within 2 periods: {within_two}/{len(periods)} "
          f"(paper: most apps)")
    assert within_two >= len(periods) // 2
