"""Figure 10: the VTT partition set-associativity trade-off.

Paper-reported shape: 1-way partitions utilize 92.8% of idle register
space but lose performance to long sequential tag searches; 16-way
partitions waste space (71.1% utilization); 4-way is the sweet spot
(+29.0% over Best-SWL at 88.5% utilization).
"""

from conftest import run_once

from repro.analysis import format_table, run_fig10


def test_fig10_partition_associativity(benchmark, ctx):
    data = run_once(benchmark, run_fig10, ctx, (1, 4, 16))
    rows = {f"{ways}-way": vals for ways, vals in data.items()}
    print()
    print(format_table(
        "Figure 10: VTT partition associativity "
        "(speedup vs Best-SWL, idle-RF utilization)",
        rows, columns=("speedup_vs_best_swl", "rf_utilization")))
    print("\npaper: 1-way 92.8% util, 4-way best perf @ 88.5% util, "
          "16-way 71.1% util")
    # Shape: finer partitions utilize at least as much idle register
    # space as coarser ones.
    assert data[1]["rf_utilization"] >= data[16]["rf_utilization"]
