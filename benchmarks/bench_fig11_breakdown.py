"""Figure 11: Linebacker technique breakdown — Victim Caching (keep
everything), Selective Victim Caching (filter streams, SUR only), and
Throttling+Selective Victim Caching (full Linebacker), normalized to
Best-SWL.

Paper-reported shape: selectivity gains >7% over plain victim caching
on the streaming-heavy apps (BI, BC, BG, SR2, SP); adding CTA
throttling gains another 7.7% on average.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig11


def test_fig11_technique_breakdown(benchmark, ctx):
    data = run_once(benchmark, run_fig11, ctx)
    print()
    print(format_table(
        "Figure 11: Linebacker breakdown (normalized to Best-SWL)",
        data,
        columns=("victim_caching", "selective_victim_caching",
                 "throttling_selective_victim_caching")))
    gm = data["GM"]
    print(f"\ngeomean: VC={gm['victim_caching']:.3f}  "
          f"SVC={gm['selective_victim_caching']:.3f}  "
          f"full LB={gm['throttling_selective_victim_caching']:.3f}")
    # Shape: each added technique helps on average.
    assert gm["selective_victim_caching"] >= gm["victim_caching"] * 0.97
    assert (
        gm["throttling_selective_victim_caching"]
        >= gm["selective_victim_caching"] * 0.97
    )
