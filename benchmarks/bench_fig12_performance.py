"""Figure 12: the headline comparison — baseline, PCAL, CERF and
Linebacker, normalized to Best-SWL.

Paper-reported shape (geomean over 20 apps): Linebacker +29.0% over
Best-SWL; CERF +19.6%; PCAL +7.6%; i.e. LB > CERF > PCAL > Best-SWL >
baseline.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig12


def test_fig12_performance_comparison(benchmark, ctx):
    data = run_once(benchmark, run_fig12, ctx)
    print()
    print(format_table(
        "Figure 12: performance (normalized to Best-SWL)",
        data, columns=("baseline", "pcal", "cerf", "linebacker")))
    gm = data["GM"]
    print(f"\ngeomean  baseline={gm['baseline']:.3f}  pcal={gm['pcal']:.3f} "
          f"(paper 1.076)  cerf={gm['cerf']:.3f} (paper 1.196)  "
          f"linebacker={gm['linebacker']:.3f} (paper 1.290)")
    # The paper's headline ordering.
    assert gm["linebacker"] > 1.0, "LB must beat Best-SWL on geomean"
    assert gm["linebacker"] > gm["pcal"], "LB must beat PCAL"
    assert gm["linebacker"] > gm["baseline"], "LB must beat the baseline"
    assert gm["cerf"] > gm["baseline"], "CERF must beat the baseline"
