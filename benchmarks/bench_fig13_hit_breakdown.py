"""Figure 13: L1 request outcome breakdown per architecture —
hit / miss / bypass / Reg hit (victim cache hit in register file) for
Baseline (B), Best-SWL (S), PCAL (P), CERF (C), Linebacker (L).

Paper-reported shape: Linebacker's combined hit ratio is the best
(65.1%), with 40.4% of requests served from the register file; its
L1-only hit ratio is *below* the baseline's because victim lines are
not refetched into L1. CERF reaches 57.9%.
"""

from conftest import run_once

from repro.analysis import format_table, geomean, run_fig13


def test_fig13_request_breakdown(benchmark, ctx):
    data = run_once(benchmark, run_fig13, ctx)
    print()
    for app, configs in data.items():
        rows = {cfg: vals for cfg, vals in configs.items()}
        print(format_table(f"Figure 13 [{app}]", rows,
                           columns=("hit", "miss", "bypass", "reg_hit"),
                           precision=3))
        print()

    lb_combined = [
        configs["L"]["hit"] + configs["L"]["reg_hit"] for configs in data.values()
    ]
    base_hit = [configs["B"]["hit"] for configs in data.values()]
    lb_reg = [configs["L"]["reg_hit"] for configs in data.values()]
    print(f"mean LB combined hit: {sum(lb_combined)/len(lb_combined):.3f} "
          f"(paper 0.651; reg-hit share {sum(lb_reg)/len(lb_reg):.3f}, paper 0.404)")
    print(f"mean baseline hit:    {sum(base_hit)/len(base_hit):.3f}")
    # Shape: Linebacker's combined hit ratio beats the baseline's.
    assert sum(lb_combined) > sum(base_hit)
    # PCAL actually bypasses; Linebacker actually reg-hits somewhere.
    assert any(configs["P"]["bypass"] > 0 for configs in data.values())
    assert any(configs["L"]["reg_hit"] > 0 for configs in data.values())
