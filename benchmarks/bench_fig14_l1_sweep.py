"""Figure 14: Linebacker vs CERF across L1 cache sizes (16-128 KB),
each normalized to the baseline *at that cache size*.

Paper-reported shape: gains shrink as L1 grows but Linebacker stays
ahead of CERF at every size — +78.0% vs +58.1% at 16 KB, +12.0% vs
+6.1% at 128 KB.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig14

SIZES = (16, 48, 96)  # KB; a subset of the paper's 16/48/64/96/128 sweep


def test_fig14_l1_size_sweep(benchmark, ctx):
    data = run_once(benchmark, run_fig14, ctx, SIZES)
    rows = {f"{kb} KB": vals for kb, vals in data.items()}
    print()
    print(format_table(
        "Figure 14: speedup over same-size baseline",
        rows, columns=("linebacker", "cerf")))
    print("\npaper: 16 KB -> LB 1.78 / CERF 1.58; 48 KB -> LB 1.29-ish; "
          "128 KB -> LB 1.12 / CERF 1.06")
    smallest, largest = min(SIZES), max(SIZES)
    # Shape: the benefit shrinks as the L1 grows.
    assert data[smallest]["linebacker"] >= data[largest]["linebacker"] * 0.9
    # Shape: LB >= CERF at the small end where filtering matters most.
    assert data[smallest]["linebacker"] >= data[smallest]["cerf"] * 0.9
