"""Figure 15: combinations of prior techniques — Baseline+SVC,
PCAL+CERF, PCAL+SVC, Linebacker, and LB+CacheExt, normalized to
Best-SWL.

Paper-reported shape: PCAL+CERF +21.3%, PCAL+SVC +25.1%, Linebacker
+29.0%, LB+CacheExt +41.9% — Linebacker beats every combination of
prior work, and still adds value on top of an idealized enlarged cache.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig15


def test_fig15_combinations(benchmark, ctx):
    data = run_once(benchmark, run_fig15, ctx)
    print()
    print(format_table(
        "Figure 15: combinations (normalized to Best-SWL)",
        data,
        columns=("baseline_svc", "pcal_cerf", "pcal_svc",
                 "linebacker", "lb_cache_ext")))
    gm = data["GM"]
    print(f"\ngeomean  baseline_svc={gm['baseline_svc']:.3f}  "
          f"pcal_cerf={gm['pcal_cerf']:.3f} (paper 1.213)  "
          f"pcal_svc={gm['pcal_svc']:.3f} (paper 1.251)  "
          f"LB={gm['linebacker']:.3f} (paper 1.290)  "
          f"LB+CacheExt={gm['lb_cache_ext']:.3f} (paper 1.419)")
    # Shape: full Linebacker is at least competitive with the combos,
    # and the idealized cache extension only helps it further.
    assert gm["linebacker"] >= gm["pcal_cerf"] * 0.95
    assert gm["lb_cache_ext"] >= gm["linebacker"] * 0.95
