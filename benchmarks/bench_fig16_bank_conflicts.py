"""Figure 16: register file bank conflicts of CERF and Linebacker,
normalized to the baseline.

Paper-reported shape: both increase conflicts (cache lines live in the
register banks), but Linebacker (+29.1%) stays well below CERF
(+52.4%) because stream filtering cuts register-file writes and its
higher L1 hit ratio avoids register reads entirely.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig16


def test_fig16_bank_conflicts(benchmark, ctx):
    data = run_once(benchmark, run_fig16, ctx)
    print()
    print(format_table(
        "Figure 16: RF bank conflicts (normalized to baseline)",
        data, columns=("cerf", "linebacker")))
    gm = data["GM"]
    print(f"\ngeomean  cerf={gm['cerf']:.3f} (paper 1.524)  "
          f"linebacker={gm['linebacker']:.3f} (paper 1.291)")
    # Shape: Linebacker causes no more conflicts than CERF.
    assert gm["linebacker"] <= gm["cerf"] * 1.05
