"""Figure 17: off-chip memory traffic of CERF and Linebacker,
normalized to the baseline, including Linebacker's register
backup/restore overhead.

Paper-reported shape: Linebacker cuts traffic 24.0% below the
baseline, 4.6 points more than CERF; backup/restore overhead is below
1% of total traffic in every application.
"""

from conftest import run_once

from repro.analysis import format_table, geomean, run_fig17
from repro.workloads import CACHE_SENSITIVE


def test_fig17_memory_traffic(benchmark, ctx):
    data = run_once(benchmark, run_fig17, ctx)
    print()
    print(format_table(
        "Figure 17: off-chip traffic (normalized to baseline)",
        data, columns=("cerf", "linebacker", "lb_register_overhead")))
    gm = data["GM"]
    sensitive = [a for a in ctx.apps if a in CACHE_SENSITIVE]
    gm_sensitive = geomean(data[a]["linebacker"] for a in sensitive)
    print(f"\ngeomean  cerf={gm['cerf']:.3f}  "
          f"linebacker={gm['linebacker']:.3f} (paper 0.760)")
    print(f"geomean over cache-sensitive apps: {gm_sensitive:.3f}")
    overheads = {
        app: row["lb_register_overhead"]
        for app, row in data.items()
        if app != "GM"
    }
    worst_sensitive = max(overheads[a] for a in sensitive) if sensitive else 0.0
    print(f"max backup/restore overhead (sensitive apps): "
          f"{worst_sensitive:.4f} of baseline traffic (paper: <1%)")
    # Shape: Linebacker reduces traffic on the memory-intensive apps
    # the mechanism targets, with small backup/restore overhead there.
    # (On compute-bound apps the tiny demand-traffic denominator makes
    # a single CTA backup look large at reduced bench scale — the
    # absolute overhead is a few hundred lines either way.)
    if sensitive:
        assert gm_sensitive < 1.0
        assert worst_sensitive < 0.10
