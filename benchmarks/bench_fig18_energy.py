"""Figure 18: energy consumption of CERF and Linebacker, normalized to
the baseline.

Paper-reported shape: Linebacker reduces energy 22.1% on average
(CERF: 21.2%) — the execution-time reduction dominates the small extra
power of the new structures.
"""

from conftest import run_once

from repro.analysis import format_table, run_fig18


def test_fig18_energy(benchmark, ctx):
    data = run_once(benchmark, run_fig18, ctx)
    print()
    print(format_table(
        "Figure 18: energy (normalized to baseline)",
        data, columns=("cerf", "linebacker")))
    gm = data["GM"]
    print(f"\ngeomean  cerf={gm['cerf']:.3f} (paper 0.788)  "
          f"linebacker={gm['linebacker']:.3f} (paper 0.779)")
    # Shape: Linebacker saves energy versus the baseline on geomean.
    assert gm["linebacker"] < 1.0
