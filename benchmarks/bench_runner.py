"""Benchmarks for the parallel experiment engine itself.

Two claims are demonstrated here (and in the CI log):

* **Warm-cache speedup** — rerunning ``run_fig12`` against a populated
  persistent cache completes at least 5x faster than the cold run,
  because every simulation resolves to an unpickle.
* **Parallel speedup** — on a multi-core host, a cold run fanned out
  over ``workers=2`` beats ``workers=1`` wall-clock. On single-core
  machines the wall-clocks are printed but not asserted (there is
  nothing to win by oversubscribing one CPU with process overhead).

These run the real figure-12 pipeline (baseline, PCAL, CERF,
Linebacker and the Best-SWL oracle sweep per app) on a reduced
configuration so the cold run stays in benchmark territory rather
than CI-timeout territory.
"""

import os
import time

import pytest

from repro.analysis import ExperimentContext
from repro.analysis.experiments import run_fig12
from repro.config import scaled_config
from repro.runner import ExperimentRunner, ResultCache

APPS = ("S2", "KM", "LI")
SCALE = 0.1
CONFIG = dict(num_sms=1, window_cycles=600)


def _context(cache_dir, workers=1, use_cache=True) -> ExperimentContext:
    cache = ResultCache(cache_dir) if use_cache else None
    return ExperimentContext(
        config=scaled_config(**CONFIG),
        scale=SCALE,
        apps=APPS,
        runner=ExperimentRunner(workers=workers, cache=cache, use_cache=use_cache),
    )


def test_warm_cache_rerun_is_5x_faster(tmp_path):
    cache_dir = tmp_path / "cache"

    started = time.perf_counter()
    cold_data = run_fig12(_context(cache_dir))
    cold = time.perf_counter() - started

    # A fresh context + runner over the same cache directory models a
    # process restart: empty memo, warm disk.
    warm_ctx = _context(cache_dir)
    started = time.perf_counter()
    warm_data = run_fig12(warm_ctx)
    warm = time.perf_counter() - started

    print(
        f"\nfig12 on {len(APPS)} apps: cold {cold:.2f}s, warm {warm:.3f}s "
        f"({cold / warm:.0f}x); warm runner: {warm_ctx.runner.stats.summary()}"
    )
    assert warm_ctx.runner.stats.simulated == 0, "warm run must be pure cache"
    assert warm_data == cold_data, "cached statistics must be identical"
    assert cold >= 5.0 * warm, f"warm rerun only {cold / warm:.1f}x faster"


def test_parallel_cold_run_beats_serial(tmp_path):
    started = time.perf_counter()
    serial_data = run_fig12(_context(tmp_path / "serial", workers=1))
    serial = time.perf_counter() - started

    started = time.perf_counter()
    parallel_data = run_fig12(_context(tmp_path / "parallel", workers=2))
    parallel = time.perf_counter() - started

    cores = os.cpu_count() or 1
    print(
        f"\nfig12 cold on {len(APPS)} apps: workers=1 {serial:.2f}s, "
        f"workers=2 {parallel:.2f}s ({cores} cores)"
    )
    assert parallel_data == serial_data, "fan-out must not change statistics"
    if cores < 2:
        pytest.skip(f"single-core host ({cores} CPU): no parallel win to assert")
    assert parallel < serial, (
        f"workers=2 ({parallel:.2f}s) should beat workers=1 ({serial:.2f}s)"
    )
