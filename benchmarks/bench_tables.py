"""Tables 1-3 and the Section 4.2 overhead inventory.

Tables 1 and 3 are configuration tables — reproduced directly from the
config dataclasses. Table 2 is the application list. Section 4.2's
storage overhead (5.88 KB per SM) is recomputed structure by structure.
"""

from conftest import run_once

from repro.analysis import format_series, storage_overhead
from repro.config import GPUConfig, LinebackerConfig
from repro.workloads import APP_SPECS, CACHE_INSENSITIVE, CACHE_SENSITIVE


def test_table1_gpu_configuration(benchmark):
    gpu = run_once(benchmark, GPUConfig)
    print()
    print(format_series("Table 1: baseline GPU configuration", {
        "# of SMs": gpu.num_sms,
        "clock (MHz)": gpu.clock_mhz,
        "SIMD width": gpu.simd_width,
        "max threads/warps/CTAs per SM":
            f"{gpu.max_threads_per_sm}/{gpu.max_warps_per_sm}/{gpu.max_ctas_per_sm}",
        "schedulers per SM (GTO)": gpu.num_schedulers,
        "register file per SM (KB)": gpu.register_file_bytes // 1024,
        "shared memory per SM (KB)": gpu.shared_memory_bytes // 1024,
        "L1 per SM (KB, 8-way, 128B)": gpu.l1_size_bytes // 1024,
        "L1 MSHRs": gpu.l1_mshrs,
        "L2 (KB, 8-way)": gpu.l2_size_bytes // 1024,
        "DRAM bandwidth (GB/s)": gpu.dram_bandwidth_gbps,
    }))
    assert gpu.num_sms == 16
    assert gpu.l1_num_sets == 48
    assert gpu.num_warp_registers == 2048


def test_table2_applications(benchmark):
    specs = run_once(benchmark, lambda: APP_SPECS)
    print()
    print("== Table 2: benchmark applications ==")
    print("cache-sensitive:")
    for name in CACHE_SENSITIVE:
        print(f"  {name:4s} {specs[name].description}")
    print("cache-insensitive:")
    for name in CACHE_INSENSITIVE:
        print(f"  {name:4s} {specs[name].description}")
    assert len(specs) == 20


def test_table3_linebacker_configuration(benchmark):
    lb = run_once(benchmark, LinebackerConfig)
    print()
    print(format_series("Table 3: Linebacker configuration", {
        "monitoring period (cycles)": lb.window_cycles,
        "cache hit threshold": lb.hit_ratio_threshold,
        "IPC variation bounds": f"+{lb.ipc_upper_bound}/{lb.ipc_lower_bound}",
        "VTT configuration": f"{lb.vtt_ways}-way VP x {lb.max_vtt_partitions} VPs",
        "VP access latency (cycles)": lb.vp_access_latency,
    }))
    assert lb.window_cycles == 50_000
    assert lb.hit_ratio_threshold == 0.20
    assert lb.vtt_ways == 4 and lb.max_vtt_partitions == 8


def test_section42_storage_overhead(benchmark):
    overhead = run_once(benchmark, storage_overhead)
    print()
    print(format_series("Section 4.2: storage overhead (bytes/SM)", {
        "HPC fields (L1 lines)": overhead.hpc_fields,
        "Load Monitor": overhead.load_monitor,
        "IPC monitor": overhead.ipc_monitor,
        "CTA manager common info": overhead.cta_manager,
        "Per-CTA Info": overhead.per_cta_info,
        "Victim Tag Table": overhead.vtt,
        "backup buffer": overhead.buffer,
        "TOTAL (KB)": overhead.total_kb,
    }, precision=1))
    print("\npaper: 240 B + 392 B + 4608 B + 792 B + small structures "
          "= 5.88 KB")
    assert overhead.total_kb < 6.5
