"""Shared fixtures for the figure-reproduction benchmark harness.

All figure benchmarks share one :class:`ExperimentContext`, so common
simulations (baseline, Best-SWL oracle sweep, Linebacker, CERF, PCAL
per app) run once per pytest session regardless of how many figures
are regenerated — and, through the experiment runner's persistent
cache, once per *machine* until the sources change.

Environment knobs:

* ``REPRO_BENCH_SCALE``   — workload iteration scale (default 0.5; use
  1.0 for the full-length traces, 0.2 for a smoke run).
* ``REPRO_BENCH_APPS``    — comma-separated app subset (default: all 20).
* ``REPRO_BENCH_SMS``     — number of SMs simulated (default 4).
* ``REPRO_BENCH_WORKERS`` — simulation processes for the figure
  prefetch waves (default: ``$REPRO_WORKERS`` or 1).
* ``REPRO_NO_CACHE``      — disable the persistent result cache.
* ``REPRO_CACHE_DIR``     — result cache directory (default
  ``~/.cache/repro``).
"""

import os

import pytest

from repro.analysis import ExperimentContext
from repro.config import scaled_config
from repro.runner import ExperimentRunner, default_workers
from repro.workloads import ALL_APPS


def _apps() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_APPS", "")
    if not raw:
        return ALL_APPS
    apps = tuple(a.strip() for a in raw.split(",") if a.strip())
    unknown = set(apps) - set(ALL_APPS)
    if unknown:
        raise ValueError(f"unknown apps in REPRO_BENCH_APPS: {sorted(unknown)}")
    return apps


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
    num_sms = int(os.environ.get("REPRO_BENCH_SMS", "4"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", str(default_workers())))
    return ExperimentContext(
        config=scaled_config(num_sms=num_sms),
        scale=scale,
        apps=_apps(),
        runner=ExperimentRunner(workers=workers),
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
