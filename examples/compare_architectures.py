#!/usr/bin/env python3
"""Compare Linebacker against the paper's baselines on one application.

Reproduces a single column of the paper's Figure 12: baseline GPU,
Best-SWL (oracle static throttling), PCAL (throttling + bypassing),
CERF (unified register-file/L1), and Linebacker — all on the same
kernel, normalized to Best-SWL.

Run:
    python examples/compare_architectures.py [APP]

APP is one of the 20 Table 2 codes (default: S2).
"""

import sys

from repro.analysis import ExperimentContext, format_series
from repro.config import scaled_config
from repro.workloads import ALL_APPS


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "S2"
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}; choose one of {', '.join(ALL_APPS)}")

    ctx = ExperimentContext(config=scaled_config(), scale=0.5, apps=(app,))

    print(f"Running 5 architectures on {app} (this sweeps CTA limits "
          f"for the Best-SWL oracle; takes a minute or two)...")
    ctx.prefetch(("baseline", "best_swl", "pcal", "cerf", "linebacker"))
    best = ctx.run(app, "best_swl")
    results = {
        "baseline": ctx.run(app, "baseline").ipc,
        f"best_swl (limit={best.best_limit})": best.ipc,
        "pcal": ctx.run(app, "pcal").ipc,
        "cerf": ctx.run(app, "cerf").ipc,
        "linebacker": ctx.run(app, "linebacker").ipc,
    }

    print(format_series(f"{app}: IPC", results))
    normalized = {k: v / best.ipc for k, v in results.items()}
    print()
    print(format_series(f"{app}: normalized to Best-SWL (paper Fig. 12)", normalized))

    lb = ctx.run(app, "linebacker")
    print()
    print(format_series(f"{app}: Linebacker request breakdown (paper Fig. 13)",
                        lb.request_breakdown))


if __name__ == "__main__":
    main()
