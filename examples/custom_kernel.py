#!/usr/bin/env python3
"""Define a custom kernel model and watch Linebacker's mechanisms work.

This example builds a tiled stencil-style kernel from scratch with the
workload generator's primitives — a hot shared lookup table, per-CTA
tiles, and a streaming input — then inspects what Linebacker's Load
Monitor selected, how much idle register space became victim cache,
and what that did to the memory system.

Run:
    python examples/custom_kernel.py
"""

from repro.config import scaled_config
from repro.core import linebacker_factory
from repro.gpu import run_kernel
from repro.gpu.isa import hashed_pc
from repro.workloads import AppSpec, LoadSpec, Pattern, Scope, StoreSpec, build_kernel

LOOKUP_PC = 0x100   # hot shared table: high locality, should be selected
TILE_PC = 0x204     # per-CTA tile with reuse: should be selected
STREAM_PC = 0x308   # streaming input: must be filtered out
STORE_PC = 0x510


def main() -> None:
    spec = AppSpec(
        name="stencil",
        description="tiled stencil with a shared lookup table",
        cache_sensitive=True,
        num_ctas=96,
        warps_per_cta=8,
        regs_per_thread=16,   # leaves 128 KB of SUR for victim caching
        iterations=80,
        alu_per_iteration=3,
        loads=(
            LoadSpec(LOOKUP_PC, Pattern.DIVERGENT, working_set_lines=320,
                     scope=Scope.GLOBAL, lines_per_access=1),
            LoadSpec(TILE_PC, Pattern.DIVERGENT, working_set_lines=48,
                     scope=Scope.CTA, lines_per_access=1),
            LoadSpec(STREAM_PC, Pattern.STREAM),
        ),
        stores=(StoreSpec(STORE_PC, every_iterations=10),),
    )
    kernel = build_kernel(spec)
    config = scaled_config()

    baseline = run_kernel(config, kernel)
    result = run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(config.linebacker),
        keep_objects=True,
    )
    ext = result.extensions[0]

    print("== Load Monitor classification ==")
    names = {LOOKUP_PC: "lookup table", TILE_PC: "tile", STREAM_PC: "stream"}
    for pc, name in names.items():
        selected = ext.load_monitor.is_selected(hashed_pc(pc))
        print(f"  {name:14s} (pc={pc:#x}, hpc={hashed_pc(pc):2d}): "
              f"{'selected — victim cached' if selected else 'not selected'}")
    print(f"  monitoring took {ext.load_monitor.windows_elapsed} windows")

    print("\n== Victim cache ==")
    print(f"  active VTT partitions : {len(ext.vtt.active_partitions())} "
          f"({ext.vtt.active_capacity_lines() * 128 // 1024} KB of register file)")
    print(f"  victim inserts        : {ext.stats.victim_inserts}")
    print(f"  victim (Reg) hits     : {ext.stats.victim_hits}")
    print(f"  CTA throttle events   : {ext.stats.throttle_events}")

    print("\n== Memory system effect ==")
    print(f"  L1+victim hit ratio   : {baseline.l1_hit_ratio:.1%} -> "
          f"{result.l1_hit_ratio + result.victim_hit_ratio:.1%}")
    print(f"  off-chip traffic      : {baseline.traffic.total_lines} -> "
          f"{result.traffic.total_lines} lines "
          f"({result.traffic.register_overhead_lines} backup/restore)")
    print(f"  IPC                   : {baseline.ipc:.2f} -> {result.ipc:.2f} "
          f"({result.ipc / baseline.ipc:.2f}x)")


if __name__ == "__main__":
    main()
