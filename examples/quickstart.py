#!/usr/bin/env python3
"""Quickstart: simulate one kernel on the baseline GPU and under
Linebacker, and compare.

Run:
    python examples/quickstart.py
"""

from repro.config import scaled_config
from repro.core import linebacker_factory
from repro.gpu import run_kernel
from repro.workloads import kernel_for


def main() -> None:
    # A proportionally scaled 4-SM machine (per-SM structures at the
    # paper's Table 1 sizes; shared L2/DRAM scaled with the SM count).
    config = scaled_config()

    # KMeans from the 20-app suite: a cache-sensitive kernel whose
    # shared centroid array thrashes the 48 KB L1 at full occupancy.
    kernel = kernel_for("KM", scale=0.5)

    print(f"Simulating {kernel.name}: {kernel.num_ctas} CTAs x "
          f"{kernel.warps_per_cta} warps, {kernel.regs_per_thread} regs/thread")

    baseline = run_kernel(config, kernel)
    print("\n-- Baseline GPU --")
    print(f"cycles            {baseline.cycles}")
    print(f"IPC               {baseline.ipc:.2f}")
    print(f"L1 hit ratio      {baseline.l1_hit_ratio:.1%}")
    print(f"off-chip traffic  {baseline.traffic.total_bytes / 1024:.0f} KB")

    linebacker = run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(config.linebacker),
        keep_objects=True,
    )
    ext = linebacker.extensions[0]
    print("\n-- Linebacker --")
    print(f"cycles            {linebacker.cycles}")
    print(f"IPC               {linebacker.ipc:.2f}")
    print(f"L1 hit ratio      {linebacker.l1_hit_ratio:.1%}")
    print(f"victim (Reg) hits {linebacker.victim_hit_ratio:.1%} of requests")
    print(f"off-chip traffic  {linebacker.traffic.total_bytes / 1024:.0f} KB")
    print(f"monitor state     {ext.load_monitor.state.value}")
    print(f"CTA throttles     {ext.stats.throttle_events} "
          f"(reactivations {ext.stats.reactivate_events})")

    speedup = linebacker.ipc / baseline.ipc
    print(f"\nLinebacker speedup over baseline: {speedup:.2f}x")


if __name__ == "__main__":
    main()
