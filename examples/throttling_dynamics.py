#!/usr/bin/env python3
"""Visualize the CTA throttling ladder and victim space over time.

Instruments one SM's Linebacker extension to log, at every monitoring
window: IPC, active/inactive CTA counts, active victim partitions, and
the controller's search phase — the dynamics of the paper's Figure 6
workflow, on a real run.

Run:
    python examples/throttling_dynamics.py [APP]
"""

import sys

from repro.config import scaled_config
from repro.core.linebacker import LinebackerExtension, linebacker_factory
from repro.gpu import run_kernel
from repro.gpu.cta import CTAState
from repro.workloads import ALL_APPS, kernel_for


class TracingLinebacker(LinebackerExtension):
    """Linebacker that logs a row per monitoring window on SM 0."""

    log: list[dict] = []

    def _close_window(self, cycle: int) -> None:
        before = self._last_window_instructions
        super()._close_window(cycle)
        if self.sm.sm_id != 0:
            return
        instructions = self._last_window_instructions - before
        active = sum(
            1 for c in self.sm.ctas.values() if c.state is CTAState.ACTIVE
        )
        inactive = len(self.sm.ctas) - active
        TracingLinebacker.log.append(
            {
                "cycle": cycle,
                "ipc": instructions / self.config.window_cycles,
                "active": active,
                "inactive": inactive,
                "vps": len(self.vtt.active_partitions()),
                "state": self.load_monitor.state.value,
                "phase": self.controller.phase.value,
            }
        )


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "GE"
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}; choose one of {', '.join(ALL_APPS)}")

    TracingLinebacker.log.clear()
    config = scaled_config()
    kernel = kernel_for(app, scale=0.5)
    result = run_kernel(
        config, kernel, extension_factory=TracingLinebacker, keep_objects=True
    )

    print(f"{app}: per-window dynamics on SM0 "
          f"(window = {config.linebacker.window_cycles} cycles)\n")
    print(f"{'cycle':>8} {'IPC':>6} {'act':>4} {'inact':>6} {'VPs':>4} "
          f"{'monitor':>10} {'search':>11}  active-CTA bar")
    for row in TracingLinebacker.log:
        bar = "#" * row["active"] + "." * row["inactive"]
        print(f"{row['cycle']:>8} {row['ipc']:>6.2f} {row['active']:>4} "
              f"{row['inactive']:>6} {row['vps']:>4} {row['state']:>10} "
              f"{row['phase']:>11}  {bar}")

    ext = result.extensions[0]
    print(f"\nfinal: {ext.stats.throttle_events} throttles, "
          f"{ext.stats.reactivate_events} reactivations, "
          f"{ext.stats.victim_hits} victim hits, IPC {result.ipc:.2f}")


if __name__ == "__main__":
    main()
