#!/usr/bin/env python3
"""Visualize the CTA throttling ladder and victim space over time.

Runs one app under Linebacker with per-window timeseries recording on
(``run_kernel(..., timeseries=True)``) and prints SM0's window rows:
IPC, active/inactive CTA counts, active victim partitions, and the
controller's search phase — the dynamics of the paper's Figure 6
workflow, on a real run.

The same data is available from the CLI as
``python -m repro trace APP linebacker [--json]``.

Run:
    python examples/throttling_dynamics.py [APP]
"""

import sys

from repro.config import scaled_config
from repro.core.linebacker import linebacker_factory
from repro.gpu import run_kernel
from repro.workloads import ALL_APPS, kernel_for


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "GE"
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}; choose one of {', '.join(ALL_APPS)}")

    config = scaled_config()
    kernel = kernel_for(app, scale=0.5)
    result = run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(config.linebacker),
        keep_objects=True,
        timeseries=True,
    )
    series = result.timeseries[0]

    print(f"{app}: per-window dynamics on SM0 "
          f"(window = {series.window_cycles} cycles)\n")
    print(f"{'cycle':>8} {'IPC':>6} {'act':>4} {'inact':>6} {'VPs':>4} "
          f"{'monitor':>10} {'search':>11}  active-CTA bar")
    for row in series:
        bar = "#" * row["active"] + "." * row["inactive"]
        print(f"{row['cycle']:>8} {row['ipc']:>6.2f} {row['active']:>4} "
              f"{row['inactive']:>6} {row['vps']:>4} {row['state']:>10} "
              f"{row['phase']:>11}  {bar}")

    ext = result.extensions[0]
    print(f"\nfinal: {ext.stats.throttle_events} throttles, "
          f"{ext.stats.reactivate_events} reactivations, "
          f"{ext.stats.victim_hits} victim hits, IPC {result.ipc:.2f}")


if __name__ == "__main__":
    main()
