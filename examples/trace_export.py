#!/usr/bin/env python3
"""Export a workload to a JSON-lines trace, reload it, and verify the
simulation is bit-identical.

The trace format is the integration point for feeding *real* traces
(e.g. converted from a profiler dump) into the simulator: one header
line, then one record per warp with its instruction stream. See
``repro/workloads/traceio.py`` for the schema.

Run:
    python examples/trace_export.py [APP] [OUT.jsonl]
"""

import sys
import tempfile
from pathlib import Path

from repro.config import scaled_config
from repro.gpu import run_kernel
from repro.workloads import ALL_APPS, kernel_for
from repro.workloads.traceio import load_trace, save_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "2D"
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}; choose one of {', '.join(ALL_APPS)}")
    out = Path(sys.argv[2]) if len(sys.argv) > 2 else (
        Path(tempfile.gettempdir()) / f"{app.lower()}_trace.jsonl"
    )

    kernel = kernel_for(app, scale=0.2)
    count = save_trace(kernel, out)
    size_kb = out.stat().st_size / 1024
    print(f"exported {app}: {count} dynamic instructions across "
          f"{kernel.num_ctas * kernel.warps_per_cta} warps -> {out} ({size_kb:.0f} KB)")

    reloaded = load_trace(out)
    config = scaled_config(num_sms=2)
    original = run_kernel(config, kernel_for(app, scale=0.2))
    replayed = run_kernel(config, reloaded)

    print(f"original : {original.cycles} cycles, IPC {original.ipc:.2f}")
    print(f"replayed : {replayed.cycles} cycles, IPC {replayed.ipc:.2f}")
    if (original.cycles, original.instructions) == (replayed.cycles, replayed.instructions):
        print("bit-identical replay: OK")
    else:
        raise SystemExit("replay diverged from the generated kernel!")


if __name__ == "__main__":
    main()
