#!/usr/bin/env python3
"""Run a workload defined in a JSON spec file, end to end.

``victim_friendly.json`` (next to this script) describes a kernel in
the declarative workload DSL instead of Python: a reuse load whose
working set overflows the scaled L1, a streaming input, and a periodic
store. This example loads the file, checks it against the paper-rule
classifier, runs the fuzzer's gate battery on it, and then compares
baseline vs Linebacker through the same registry/runner path the
built-in Table-2 apps use.

Run:
    python examples/workload_spec_file.py
"""

from pathlib import Path

from repro.config import scaled_config
from repro.runner import JobSpec, execute_job
from repro.workloads import (
    check_gates,
    classify_workload,
    load_workload_file,
    workload_hash,
)

SPEC_FILE = Path(__file__).parent / "victim_friendly.json"


def main() -> None:
    # register=True makes the spec's name usable anywhere a built-in
    # app name is: JobSpec.build, Session.run, the HTTP job schema.
    spec = load_workload_file(SPEC_FILE, register=True)
    print(f"loaded {spec.name!r} (content hash {workload_hash(spec)[:12]})")

    print("\n== Paper-rule classification (Figs 1-3) ==")
    classification = classify_workload(spec)
    for lc in classification.loads:
        kind = "streaming" if lc.streaming else f"reuse x{lc.reuse_factor:.1f}"
        print(f"  pc {lc.pc:#6x}: {kind:<14} sharing={lc.sharing:<9} "
              f"unique_lines={lc.unique_lines}")

    print("\n== Fuzzer gate battery ==")
    problems, _ = check_gates(spec)
    print("  clean" if not problems else "\n".join(f"  {p}" for p in problems))

    print("\n== Baseline vs Linebacker ==")
    config = scaled_config(num_sms=1)
    results = {}
    for arch in ("baseline", "linebacker"):
        job = JobSpec.build(app=spec.name, arch=arch, config=config,
                            workload=spec)
        results[arch] = execute_job(job)[0]
    base, lb = results["baseline"], results["linebacker"]
    print(f"  baseline IPC   {base.ipc:7.3f}")
    print(f"  linebacker IPC {lb.ipc:7.3f}  "
          f"({lb.ipc / base.ipc - 1.0:+.1%})")
    print(f"  victim hits    {sum(s.victim_hits for s in lb.sm_stats)}")


if __name__ == "__main__":
    main()
