"""Legacy setup shim: the sandbox's setuptools lacks the wheel backend
needed for PEP 660 editable installs, so `pip install -e .` falls back
to this setup.py (configuration lives in pyproject.toml)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
