"""repro — a from-scratch reproduction of *Linebacker: Preserving
Victim Cache Lines in Idle Register Files of GPUs* (ISCA 2019).

Public API highlights:

* :mod:`repro.api` — the ``Session`` facade: ``Session.local()`` for
  in-process sweeps, ``Session.connect(url)`` for a running
  ``python -m repro serve`` coordinator; both return ``JobHandle``\\ s.
* :func:`repro.gpu.run_kernel` — simulate one kernel on the baseline GPU.
* :func:`repro.core.linebacker_factory` — attach Linebacker to the SMs.
* :mod:`repro.baselines` — Best-SWL, PCAL, CERF, CacheExt comparisons.
* :mod:`repro.workloads` — the 20-application synthetic suite.
* :mod:`repro.analysis` — one runner per paper table/figure.
* :mod:`repro.service` — the HTTP coordinator + persistent worker fleet.
"""

from repro.config import (
    GPUConfig,
    LinebackerConfig,
    SimulationConfig,
    paper_config,
    scaled_config,
)

__version__ = "1.0.0"

__all__ = [
    "GPUConfig",
    "LinebackerConfig",
    "SimulationConfig",
    "paper_config",
    "scaled_config",
    "__version__",
]
