"""Command-line interface: regenerate any paper figure from a shell.

Usage:
    python -m repro list
    python -m repro fig12 --apps S2,KM,LI --scale 0.3
    python -m repro fig14 --sms 2
    python -m repro overhead

Each figure command runs the same experiment code the benchmark
harness uses and prints the paper-style table.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    ExperimentContext,
    format_series,
    format_table,
    storage_overhead,
)
from repro.analysis import experiments as exp
from repro.config import scaled_config
from repro.workloads import ALL_APPS

#: figure name -> (runner, description)
FIGURES = {
    "fig1": (exp.run_fig1, "cold vs capacity/conflict miss breakdown"),
    "fig2": (exp.run_fig2, "top-4 load reused working set per window"),
    "fig3": (exp.run_fig3, "streaming data per window"),
    "fig4": (exp.run_fig4, "SUR/DUR under Best-SWL"),
    "fig5": (exp.run_fig5, "idealized CacheExt study"),
    "fig9": (exp.run_fig9, "Linebacker victim space + monitoring periods"),
    "fig10": (exp.run_fig10, "VTT partition associativity sweep"),
    "fig11": (exp.run_fig11, "Linebacker technique breakdown"),
    "fig12": (exp.run_fig12, "performance vs previous approaches"),
    "fig13": (exp.run_fig13, "request breakdown per architecture"),
    "fig14": (exp.run_fig14, "L1 size sweep"),
    "fig15": (exp.run_fig15, "combinations of previous works"),
    "fig16": (exp.run_fig16, "register file bank conflicts"),
    "fig17": (exp.run_fig17, "off-chip memory traffic"),
    "fig18": (exp.run_fig18, "energy consumption"),
}


def _print_result(name: str, data) -> None:
    if name == "fig13":
        for app, configs in data.items():
            print(format_table(f"{name} [{app}]", configs))
            print()
        return
    if isinstance(next(iter(data.values())), dict):
        rows = {str(k): v for k, v in data.items()}
        print(format_table(name, rows))
    else:
        print(format_series(name, data))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    parser.add_argument("command", help="'list', 'overhead', or a figure id (fig1..fig18)")
    parser.add_argument("--apps", default="", help="comma-separated app subset")
    parser.add_argument("--scale", type=float, default=0.5, help="workload scale")
    parser.add_argument("--sms", type=int, default=4, help="number of SMs")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (_, description) in FIGURES.items():
            print(f"{name:7s} {description}")
        return 0
    if args.command == "overhead":
        overhead = storage_overhead()
        print(format_series("Section 4.2 storage overhead (bytes)", {
            "HPC fields": overhead.hpc_fields,
            "Load Monitor": overhead.load_monitor,
            "IPC monitor": overhead.ipc_monitor,
            "CTA manager": overhead.cta_manager,
            "Per-CTA Info": overhead.per_cta_info,
            "VTT": overhead.vtt,
            "buffer": overhead.buffer,
            "total (KB)": overhead.total_kb,
        }, precision=1))
        return 0
    if args.command not in FIGURES:
        parser.error(f"unknown command {args.command!r}; try 'list'")

    apps = tuple(a for a in args.apps.split(",") if a) or ALL_APPS
    unknown = set(apps) - set(ALL_APPS)
    if unknown:
        parser.error(f"unknown apps: {sorted(unknown)}")

    ctx = ExperimentContext(
        config=scaled_config(num_sms=args.sms), scale=args.scale, apps=apps
    )
    runner, description = FIGURES[args.command]
    print(f"running {args.command} ({description}) on {len(apps)} apps "
          f"at scale {args.scale} with {args.sms} SMs...", file=sys.stderr)
    started = time.time()
    data = runner(ctx)
    _print_result(args.command, data)
    print(f"\n[{time.time() - started:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
