"""Command-line interface: regenerate any paper figure from a shell.

Usage:
    python -m repro list [--archs]
    python -m repro run fig12 --apps S2,KM,LI --scale 0.3 --workers 4
    python -m repro run fig14 --sms 2 --no-cache
    python -m repro run fig12 --executor remote --hosts a,b,c \\
        --worker-command "ssh {host} python -m repro worker"
    python -m repro worker --cache-dir /shared/cache --shared-cache
    python -m repro serve --port 8642 --workers 2
    python -m repro submit --url http://127.0.0.1:8642 --apps S2,LI \\
        --arch linebacker --scale 0.25
    python -m repro overhead
    python -m repro trace GE linebacker --json
    python -m repro run dynamics --timeseries
    python -m repro bench --reps 3 --output BENCH_sim.json
    python -m repro bench --check-against BENCH_sim.json
    python -m repro lint --strict
    python -m repro lint --json src/repro/gpu
    python -m repro fuzz --seed 2019 --count 25 --out corpus/
    python -m repro fuzz --seed 7 --count 5 --minimize --no-simulate
    python -m repro cache info
    python -m repro cache clear

``python -m repro fig12`` (the historical positional form) keeps
working as an alias for ``run fig12``.

Figure runs go through the parallel experiment runner: ``--workers N``
fans simulations out over N processes, and results are memoized in the
persistent cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) so a
repeat of the same figure is near-instant. ``--no-cache`` bypasses the
persistent layer for a guaranteed-fresh run.

``--executor`` picks where jobs run: ``inline`` (this process),
``pool`` (local process pool), ``remote`` (worker subprocesses from
``--worker-command``, one per ``--hosts`` entry — the template default
runs them locally, an ``ssh {host} ...`` template crosses machines),
or ``loopback`` (the remote wire protocol, round-tripped in-process —
deterministic, great for debugging). ``python -m repro worker`` is the
process on the other end of that wire.

``python -m repro serve`` promotes that machinery into an always-on
HTTP service: a coordinator with a persistent worker fleet and a
shared read-through result cache, deduplicating concurrent submissions
by content hash. ``python -m repro submit`` is the matching client
(programmatic callers use ``repro.api.Session.connect``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    ExperimentContext,
    format_series,
    format_table,
    storage_overhead,
)
from repro.analysis import experiments as exp
from repro.config import scaled_config
from repro.runner import ARCHITECTURES, ExperimentRunner, ResultCache, default_workers
from repro.workloads import ALL_APPS, kernel_for

#: figure name -> (runner, description)
FIGURES = {
    "fig1": (exp.run_fig1, "cold vs capacity/conflict miss breakdown"),
    "fig2": (exp.run_fig2, "top-4 load reused working set per window"),
    "fig3": (exp.run_fig3, "streaming data per window"),
    "fig4": (exp.run_fig4, "SUR/DUR under Best-SWL"),
    "fig5": (exp.run_fig5, "idealized CacheExt study"),
    "fig9": (exp.run_fig9, "Linebacker victim space + monitoring periods"),
    "fig10": (exp.run_fig10, "VTT partition associativity sweep"),
    "fig11": (exp.run_fig11, "Linebacker technique breakdown"),
    "fig12": (exp.run_fig12, "performance vs previous approaches"),
    "fig13": (exp.run_fig13, "request breakdown per architecture"),
    "fig14": (exp.run_fig14, "L1 size sweep"),
    "fig15": (exp.run_fig15, "combinations of previous works"),
    "fig16": (exp.run_fig16, "register file bank conflicts"),
    "fig17": (exp.run_fig17, "off-chip memory traffic"),
    "fig18": (exp.run_fig18, "energy consumption"),
    "dynamics": (exp.run_dynamics, "per-window timeseries summary (Fig 6 workflow)"),
}


def _print_result(name: str, data) -> None:
    if name == "fig13":
        for app, configs in data.items():
            print(format_table(f"{name} [{app}]", configs))
            print()
        return
    if isinstance(next(iter(data.values())), dict):
        rows = {str(k): v for k, v in data.items()}
        print(format_table(name, rows))
    else:
        print(format_series(name, data))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="regenerate one figure")
    run_p.add_argument("figure", help="a figure id (fig1..fig18); see 'list'")
    run_p.add_argument("--apps", default="", help="comma-separated app subset")
    run_p.add_argument("--scale", type=float, default=0.5, help="workload scale")
    run_p.add_argument("--sms", type=int, default=4, help="number of SMs")
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation processes (default: $REPRO_WORKERS or 1)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    run_p.add_argument(
        "--shared-cache",
        action="store_true",
        help="use the advisory-lock cache backend (safe for concurrent "
        "writers on a shared/network filesystem)",
    )
    run_p.add_argument(
        "--executor",
        choices=("inline", "pool", "remote", "loopback"),
        default=None,
        help="where jobs run (default: $REPRO_EXECUTOR, else pool iff "
        "--workers > 1)",
    )
    run_p.add_argument(
        "--hosts",
        default="",
        help="comma-separated host names for --executor remote "
        "(one worker each; default: --workers local workers)",
    )
    run_p.add_argument(
        "--worker-command",
        default=None,
        help="remote worker launch template; {python} and {host} are "
        'substituted (default: "{python} -u -m repro worker")',
    )
    run_p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="seconds before a dispatched remote job is killed and requeued",
    )
    run_p.add_argument(
        "--stats-report",
        default=None,
        help="write the RunnerStats JSON report to this path",
    )
    run_p.add_argument(
        "--timeseries",
        action="store_true",
        help="record per-window timeseries on every supporting "
        "architecture (distinct cache keys from scalar runs)",
    )
    run_p.add_argument(
        "--backend",
        choices=("object", "vector"),
        default=None,
        help="execution engine for every supporting architecture "
        "(distinct cache keys per backend; archs that cannot run it "
        "keep the default engine)",
    )

    trace_p = sub.add_parser(
        "trace", help="per-window timeseries of one (app, architecture) run"
    )
    trace_p.add_argument("app", help=f"one of {', '.join(ALL_APPS)}")
    trace_p.add_argument(
        "arch",
        nargs="?",
        default="linebacker",
        help="a registered architecture that supports timeseries "
        "(default: linebacker)",
    )
    trace_p.add_argument("--scale", type=float, default=0.5, help="workload scale")
    trace_p.add_argument("--sms", type=int, default=4, help="number of SMs")
    trace_p.add_argument(
        "--sm", type=int, default=0, help="which SM's series to print (default 0)"
    )
    trace_p.add_argument(
        "--json", action="store_true", help="emit the full series as JSON"
    )
    trace_p.add_argument(
        "--output", default=None, help="write the output to this path instead of stdout"
    )
    trace_p.add_argument(
        "--backend",
        choices=("object", "vector"),
        default=None,
        help="execution engine (timeseries recording is object-only "
        "today, so a vector request falls back loudly)",
    )

    worker_p = sub.add_parser(
        "worker",
        add_help=False,
        help="serve simulation jobs over stdin/stdout (wire protocol)",
    )
    worker_p.add_argument("rest", nargs=argparse.REMAINDER)

    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP coordinator with a persistent worker fleet",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1; the service "
                         "trusts its network — do not expose it publicly)")
    serve_p.add_argument("--port", type=int, default=None,
                         help="TCP port (default 8642; 0 picks a free port)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="persistent worker processes (default 2)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="shared result-cache directory (default: "
                         "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="serve without the shared result store")
    serve_p.add_argument("--job-timeout", type=float, default=None,
                         help="seconds before an in-flight job's worker is "
                         "recycled and the job requeued")
    serve_p.add_argument("--worker-command", default=None,
                         help="worker launch template; {python} and {host} "
                         "are substituted")

    submit_p = sub.add_parser(
        "submit", help="submit jobs to a running coordinator over HTTP"
    )
    submit_p.add_argument("--url", required=True,
                          help="coordinator endpoint, e.g. http://127.0.0.1:8642")
    submit_p.add_argument("--apps", default="S2",
                          help="comma-separated apps (default S2)")
    submit_p.add_argument("--arch", default="linebacker",
                          help="registered architecture (default linebacker)")
    submit_p.add_argument("--scale", type=float, default=0.5,
                          help="workload scale")
    submit_p.add_argument("--sms", type=int, default=4, help="number of SMs")
    submit_p.add_argument("--timeseries", action="store_true",
                          help="request per-window timeseries recording")
    submit_p.add_argument("--backend",
                          choices=("object", "vector"),
                          default=None,
                          help="execution engine (validated against the "
                          "architecture's supports_backends capability)")
    submit_p.add_argument("--no-wait", action="store_true",
                          help="print job ids and exit without polling")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait for results (default 600)")
    submit_p.add_argument("--json", dest="json_path", default=None,
                          help="write the submission/result report to this path")
    submit_p.add_argument("--fleet-report", default=None,
                          help="write the service's /v1/fleet JSON to this path")

    list_p = sub.add_parser("list", help="list figures (and architectures)")
    list_p.add_argument(
        "--archs", action="store_true", help="also list registered architectures"
    )

    sub.add_parser("overhead", help="Section 4.2 storage overhead inventory")

    bench_p = sub.add_parser(
        "bench", help="simulator throughput benchmark (cold runs, no cache)"
    )
    bench_p.add_argument("--apps", default="", help="comma-separated app subset")
    bench_p.add_argument("--scale", type=float, default=0.25, help="workload scale")
    bench_p.add_argument("--sms", type=int, default=2, help="number of SMs")
    bench_p.add_argument(
        "--reps", type=int, default=3, help="repetitions per app (min is kept)"
    )
    bench_p.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    bench_p.add_argument(
        "--check-against",
        default=None,
        help="baseline BENCH_sim.json; exit 1 on a throughput regression",
    )
    bench_p.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fractional regression allowed against the baseline (default 0.30)",
    )
    bench_p.add_argument(
        "--geomean-tolerance",
        type=float,
        default=None,
        help="also gate the geomean instructions/sec against the "
        "baseline at this fractional tolerance (e.g. 0.02)",
    )
    bench_p.add_argument(
        "--backend",
        choices=("object", "vector"),
        default=None,
        help="execution engine to benchmark (default: object)",
    )
    bench_p.add_argument(
        "--native",
        action="store_true",
        help="the paper's native configuration: 16 SMs, scale 1.0, "
        "50,000-cycle windows (overrides --scale/--sms)",
    )
    bench_p.add_argument(
        "--record",
        default=None,
        metavar="HISTORY",
        help="append this run as a new entry to the given history file "
        "(e.g. BENCH_sim.json); existing entries are never rewritten",
    )

    lint_p = sub.add_parser(
        "lint",
        add_help=False,
        help="static invariant checker (see `python -m repro lint --help`)",
    )
    lint_p.add_argument("rest", nargs=argparse.REMAINDER)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="generate seeded workload specs and check every paper-rule "
        "classification gate and engine invariant",
    )
    fuzz_p.add_argument("--seed", type=int, default=2019,
                        help="corpus seed (default 2019); every spec is "
                        "deterministic per (seed, index)")
    fuzz_p.add_argument("--count", type=int, default=25,
                        help="number of specs to generate (default 25)")
    fuzz_p.add_argument("--out", default=None,
                        help="write each spec as <name>.json into this "
                        "corpus directory")
    fuzz_p.add_argument("--scale", type=float, default=1.0,
                        help="workload scale for classification/simulation")
    fuzz_p.add_argument("--sms", type=int, default=1,
                        help="SMs for the differential simulation (default 1)")
    fuzz_p.add_argument("--no-simulate", action="store_true",
                        help="classification gates only; skip the "
                        "Linebacker/Best-SWL differential harness")
    fuzz_p.add_argument("--minimize", action="store_true",
                        help="greedily shrink each failing spec and write "
                        "<name>.min.json next to it (or print it)")
    fuzz_p.add_argument("--backend",
                        choices=("object", "vector"),
                        default=None,
                        help="execution engine for the differential "
                        "harness; non-default engines add a "
                        "backend-vs-object bit-identity gate")

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=("info", "clear"))
    cache_p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser


def _cmd_list(args) -> int:
    for name, (_, description) in FIGURES.items():
        print(f"{name:7s} {description}")
    if args.archs:
        print()
        for name, arch in sorted(ARCHITECTURES.items()):
            print(f"{name:24s} {arch.description}")
    return 0


def _cmd_overhead() -> int:
    overhead = storage_overhead()
    print(format_series("Section 4.2 storage overhead (bytes)", {
        "HPC fields": overhead.hpc_fields,
        "Load Monitor": overhead.load_monitor,
        "IPC monitor": overhead.ipc_monitor,
        "CTA manager": overhead.cta_manager,
        "Per-CTA Info": overhead.per_cta_info,
        "VTT": overhead.vtt,
        "buffer": overhead.buffer,
        "total (KB)": overhead.total_kb,
    }, precision=1))
    return 0


def _cmd_bench(args, parser: argparse.ArgumentParser) -> int:
    from repro.bench import (
        SimThroughput,
        append_history,
        compare_reports,
        latest_entry,
        load_history,
        write_report,
    )

    apps = tuple(a for a in args.apps.split(",") if a) or ALL_APPS
    unknown = set(apps) - set(ALL_APPS)
    if unknown:
        parser.error(f"unknown apps: {sorted(unknown)}")
    if args.reps < 1:
        parser.error("--reps must be at least 1")
    scale, sms, window_cycles = args.scale, args.sms, 2_000
    if args.native:
        # The paper's Table 1/3 machine: unscaled traces on 16 SMs
        # with the 50,000-cycle monitoring window.
        scale, sms, window_cycles = 1.0, 16, 50_000
    harness = SimThroughput(
        apps=apps, scale=scale, num_sms=sms, reps=args.reps,
        backend=args.backend, window_cycles=window_cycles,
    )
    print(
        f"benchmarking {len(apps)} apps at scale {scale}, {sms} SMs, "
        f"{args.reps} rep(s) per app on the {args.backend or 'object'} "
        "backend (cold runs, result cache bypassed)...",
        file=sys.stderr,
    )

    def progress(app, result):
        print(
            f"  {app:4s} {result.instructions:>8d} instr "
            f"{result.cpu_seconds:7.3f}s cpu  "
            f"{result.instructions_per_second:>10,.0f} instr/s  "
            f"{result.cycles_per_second:>10,.0f} cyc/s",
            file=sys.stderr,
        )

    report = harness.run(progress=progress)
    print(
        f"\ngeomean: {report.geomean_instructions_per_second:,.0f} instr/s, "
        f"{report.geomean_cycles_per_second:,.0f} cyc/s "
        f"over {len(report.apps)} apps "
        f"({report.total_cpu_seconds:.1f}s cpu total)"
    )
    if args.output:
        write_report(report, args.output)
        print(f"report written to {args.output}", file=sys.stderr)
    if args.record:
        entry = append_history(report, args.record)
        print(
            f"history entry appended to {args.record} "
            f"(backend {entry['backend']}, commit "
            f"{entry.get('commit', '?')})",
            file=sys.stderr,
        )
    if args.check_against:
        baseline = latest_entry(
            load_history(args.check_against), backend=report.backend
        )
        if baseline is None:
            print(
                f"no {report.backend!r} entry in {args.check_against} to "
                "gate against",
                file=sys.stderr,
            )
            return 1
        problems = compare_reports(
            report,
            baseline,
            tolerance=args.tolerance,
            geomean_tolerance=args.geomean_tolerance,
        )
        if problems:
            print(
                f"\nTHROUGHPUT REGRESSION vs {args.check_against}:", file=sys.stderr
            )
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(
            f"no regression vs {args.check_against} "
            f"(newest {report.backend} entry, tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args, parser: argparse.ArgumentParser) -> int:
    """Run one (app, arch) simulation with timeseries on and print the
    per-window rows — the observability entry point for the paper's
    Fig. 6 workflow dynamics. Always simulates fresh (no cache)."""
    from repro.runner.registry import resolve

    if args.app not in ALL_APPS:
        parser.error(f"unknown app {args.app!r}; choose one of {', '.join(ALL_APPS)}")
    try:
        arch = resolve(args.arch)
    except KeyError as exc:
        parser.error(str(exc))
    if not arch.supports_timeseries:
        parser.error(
            f"architecture {args.arch!r} does not support timeseries recording"
        )
    if args.sm < 0 or args.sm >= args.sms:
        parser.error(f"--sm must be in [0, {args.sms})")

    config = scaled_config(num_sms=args.sms)
    kernel = kernel_for(args.app, scale=args.scale)
    print(
        f"tracing {args.app} on {args.arch} at scale {args.scale} "
        f"({args.sms} SMs, window = {config.linebacker.window_cycles} cycles)...",
        file=sys.stderr,
    )
    result = arch.runner(config, kernel, timeseries=True, backend=args.backend)
    series = result.timeseries[args.sm]
    rows = list(series)

    out = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.json:
            import json

            json.dump(
                {
                    "version": series.version,
                    "app": args.app,
                    "arch": args.arch,
                    "scale": args.scale,
                    "sm": args.sm,
                    "window_cycles": series.window_cycles,
                    "dropped": series.dropped,
                    "rows": rows,
                },
                out,
                indent=2,
                sort_keys=True,
            )
            out.write("\n")
        else:
            print(
                f"{args.app}: per-window dynamics on SM{args.sm} "
                f"(window = {series.window_cycles} cycles)\n",
                file=out,
            )
            print(
                f"{'cycle':>8} {'IPC':>6} {'act':>4} {'inact':>6} {'VPs':>4} "
                f"{'monitor':>10} {'search':>11}  active-CTA bar",
                file=out,
            )
            for row in rows:
                bar = "#" * row["active"] + "." * row["inactive"]
                print(
                    f"{row['cycle']:>8} {row['ipc']:>6.2f} {row['active']:>4} "
                    f"{row['inactive']:>6} {row.get('vps', 0):>4} "
                    f"{row.get('state', '-'):>10} {row.get('phase', '-'):>11}  {bar}",
                    file=out,
                )
            if series.dropped:
                print(f"({series.dropped} oldest windows dropped)", file=out)
            print(
                f"\nfinal: IPC {result.ipc:.2f} over {result.cycles} cycles, "
                f"{len(rows)} windows",
                file=out,
            )
    finally:
        if args.output:
            out.close()
            print(f"trace written to {args.output}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro.service import DEFAULT_PORT
    from repro.service import serve as service_serve

    port = args.port if args.port is not None else DEFAULT_PORT
    server = service_serve(
        host=args.host,
        port=port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        worker_command=args.worker_command,
        job_timeout=args.job_timeout,
    )

    # Shells start background children with SIGINT ignored, and Python
    # keeps an inherited SIG_IGN — so `python -m repro serve &` would be
    # unstoppable short of SIGKILL (which orphans the fleet). Install
    # explicit handlers so Ctrl-C, `kill -INT` and `kill -TERM` all take
    # the same graceful teardown path.
    def _graceful(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGTERM, _graceful)

    host, bound_port = server.server_address[:2]
    print(
        f"serving on http://{host}:{bound_port} with {args.workers} "
        f"worker(s), cache {'off' if args.no_cache else 'on'} "
        "(Ctrl-C to stop)",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.coordinator.shutdown()
        print("coordinator stopped, fleet torn down", file=sys.stderr)
    return 0


def _cmd_submit(args, parser: argparse.ArgumentParser) -> int:
    import json

    from repro.api import Session
    from repro.runner.registry import ARCHITECTURES

    apps = tuple(a for a in args.apps.split(",") if a)
    unknown = set(apps) - set(ALL_APPS)
    if unknown:
        parser.error(f"unknown apps: {sorted(unknown)}")
    if args.arch not in ARCHITECTURES:
        parser.error(
            f"unknown architecture {args.arch!r}; known: "
            f"{', '.join(sorted(ARCHITECTURES))}"
        )

    from repro.options import RunOptions
    from repro.service import ServiceError

    if args.timeseries and not ARCHITECTURES[args.arch].supports_timeseries:
        parser.error(
            f"architecture {args.arch!r} does not support timeseries recording"
        )
    if (
        args.backend is not None
        and args.backend not in ARCHITECTURES[args.arch].supports_backends
    ):
        parser.error(
            f"architecture {args.arch!r} does not support the "
            f"{args.backend!r} backend (supported: "
            f"{', '.join(ARCHITECTURES[args.arch].supports_backends)})"
        )
    try:
        session = Session.connect(
            args.url,
            config=scaled_config(num_sms=args.sms),
            scale=args.scale,
        )
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    options = RunOptions(timeseries=args.timeseries, backend=args.backend)
    handles = session.run_many(
        [session.spec(app, args.arch, options=options) for app in apps]
    )
    report = {"url": args.url, "arch": args.arch, "scale": args.scale,
              "jobs": []}
    for app, handle in zip(apps, handles):
        entry = {"app": app, "job_id": handle.job_id}
        if args.no_wait:
            entry["status"] = handle.status()
        else:
            result = handle.result(timeout=args.timeout)
            status = session._client.status(handle.job_id)
            entry["status"] = status["status"]
            entry["source"] = status["source"]
            entry["ipc"] = getattr(result, "ipc", None)
            print(
                f"{app:4s} {args.arch:16s} {entry['status']:6s} "
                f"[{entry['source']:8s}] ipc={entry['ipc']:.4f}"
            )
        report["jobs"].append(entry)
    if args.no_wait:
        for entry in report["jobs"]:
            print(f"{entry['app']:4s} {entry['job_id']} {entry['status']}")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.json_path}", file=sys.stderr)
    if args.fleet_report:
        with open(args.fleet_report, "w") as fh:
            json.dump(session.stats, fh, indent=2, sort_keys=True)
        print(f"fleet report written to {args.fleet_report}", file=sys.stderr)
    return 0


def _cmd_fuzz(args, parser: argparse.ArgumentParser) -> int:
    """Generate a seeded corpus and hold every spec to the paper-rule
    classification gates (and, unless --no-simulate, the differential
    engine-invariant harness). Exit 1 if any spec fails."""
    import json
    from pathlib import Path

    from repro.workloads.fuzz import (
        check_gates,
        differential_check,
        fuzz_workload,
        minimize,
    )
    from repro.workloads.spec import encode_workload, save_workload_file

    if args.count < 1:
        parser.error("--count must be at least 1")
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    def all_problems(spec) -> list[str]:
        problems, _ = check_gates(spec, scale=args.scale)
        if not args.no_simulate:
            problems += differential_check(
                spec, scale=args.scale, sms=args.sms, backend=args.backend
            )
        return problems

    failures = 0
    started = time.time()
    for index in range(args.count):
        spec = fuzz_workload(args.seed, index)
        if out_dir is not None:
            save_workload_file(spec, out_dir / f"{spec.name}.json")
        problems = all_problems(spec)
        status = "ok" if not problems else "FAIL"
        print(f"[{index:3d}] {spec.name:32s} {status}")
        for p in problems:
            print(f"      {p}", file=sys.stderr)
        if problems:
            failures += 1
            if args.minimize:
                small = minimize(spec, lambda s: bool(all_problems(s)))
                doc = encode_workload(small)
                if out_dir is not None:
                    path = out_dir / f"{spec.name}.min.json"
                    with open(path, "w") as fh:
                        json.dump(doc, fh, indent=2, sort_keys=True)
                    print(f"      minimized repro -> {path}", file=sys.stderr)
                else:
                    print(json.dumps(doc, indent=2, sort_keys=True),
                          file=sys.stderr)
    gates = "gates" if args.no_simulate else "gates + engine invariants"
    print(
        f"\n{args.count - failures}/{args.count} specs passed {gates} "
        f"(seed {args.seed}, {time.time() - started:.0f}s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        info = cache.info()
        print(format_series("result cache", {
            "entries": info.entries,
            "size (KB)": info.total_bytes / 1024,
        }, precision=1))
        print(f"directory: {info.root}", file=sys.stderr)
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.root}")
    return 0


def _cmd_run(args, parser: argparse.ArgumentParser) -> int:
    if args.figure not in FIGURES:
        parser.error(f"unknown figure {args.figure!r}; try 'list'")
    apps = tuple(a for a in args.apps.split(",") if a) or ALL_APPS
    unknown = set(apps) - set(ALL_APPS)
    if unknown:
        parser.error(f"unknown apps: {sorted(unknown)}")

    workers = args.workers if args.workers is not None else default_workers()
    if args.no_cache:
        cache = None
    elif args.shared_cache:
        from repro.runner import SharedDirectoryBackend

        cache = ResultCache(backend=SharedDirectoryBackend(args.cache_dir))
    else:
        cache = ResultCache(args.cache_dir)
    hosts = [h for h in args.hosts.split(",") if h] or None
    runner = ExperimentRunner(
        workers=workers,
        cache=cache,
        use_cache=not args.no_cache,
        executor=args.executor,
        hosts=hosts,
        worker_command=args.worker_command,
        job_timeout=args.job_timeout,
    )
    ctx = ExperimentContext(
        config=scaled_config(num_sms=args.sms),
        scale=args.scale,
        apps=apps,
        runner=runner,
        default_overrides={
            **({"timeseries": True} if args.timeseries else {}),
            **({"backend": args.backend} if args.backend else {}),
        },
    )
    figure_runner, description = FIGURES[args.figure]
    print(
        f"running {args.figure} ({description}) on {len(apps)} apps "
        f"at scale {args.scale} with {args.sms} SMs, {workers} worker(s), "
        f"cache {'off' if args.no_cache else 'on'}...",
        file=sys.stderr,
    )
    started = time.time()
    data = figure_runner(ctx)
    _print_result(args.figure, data)
    print(
        f"\n[{time.time() - started:.0f}s; {runner.stats.summary()}]",
        file=sys.stderr,
    )
    if args.stats_report:
        import json

        with open(args.stats_report, "w") as fh:
            json.dump(runner.stats.to_dict(), fh, indent=2, sort_keys=True)
        print(f"runner stats written to {args.stats_report}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    # Historical alias: `python -m repro fig12 ...` == `run fig12 ...`.
    known = ("run", "list", "overhead", "bench", "lint", "cache", "worker",
             "trace", "serve", "submit", "fuzz")
    if argv and argv[0] not in known and not argv[0].startswith("-"):
        argv = ["run", *argv]
    if argv and argv[0] == "lint":
        # The lint CLI owns its own argument surface (including --help).
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "worker":
        # The worker CLI owns its own argument surface (including --help).
        from repro.runner.worker import main as worker_main

        return worker_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list(args)
    if args.command == "overhead":
        return _cmd_overhead()
    if args.command == "bench":
        return _cmd_bench(args, parser)
    if args.command == "trace":
        return _cmd_trace(args, parser)
    if args.command == "fuzz":
        return _cmd_fuzz(args, parser)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args, parser)
    return _cmd_run(args, parser)


if __name__ == "__main__":
    raise SystemExit(main())
