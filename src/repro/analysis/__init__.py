"""Experiment runners reproducing every data figure in the paper's
evaluation, plus the Section 4.2 overhead inventory."""

from repro.analysis.charts import bar_chart, grouped_bar_chart, timeseries_chart
from repro.analysis.context import ExperimentContext, geomean
from repro.analysis.experiments import (
    run_dynamics,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
)
from repro.analysis.overhead import OverheadBreakdown, storage_overhead
from repro.analysis.report import format_series, format_table

__all__ = [
    "ExperimentContext",
    "OverheadBreakdown",
    "bar_chart",
    "format_series",
    "format_table",
    "geomean",
    "grouped_bar_chart",
    "run_dynamics",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "storage_overhead",
    "timeseries_chart",
]
