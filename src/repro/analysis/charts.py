"""ASCII bar charts for experiment output.

The paper's figures are grouped bar charts; the CLI and benchmark
harness print text tables for exact values, and this module renders
the same data as horizontal bar charts for at-a-glance shape
comparison in a terminal.
"""

from __future__ import annotations

from typing import Mapping

FULL = "#"
REFERENCE = "|"


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 48,
    reference: float | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render ``{label: value}`` as horizontal bars.

    ``reference`` (e.g. 1.0 for normalized figures) draws a marker
    column so over/under-performing entries are visually separated.
    """
    if not values:
        return f"== {title} ==\n(no data)"
    vals = dict(values)
    peak = max(max(vals.values()), reference or 0.0, 1e-12)
    label_width = max(len(str(k)) for k in vals) + 1
    ref_col = int(round((reference / peak) * width)) if reference else None

    lines = [f"== {title} =="]
    for label, value in vals.items():
        filled = int(round((max(0.0, value) / peak) * width))
        bar = list(FULL * filled + " " * (width - filled))
        if ref_col is not None and 0 <= ref_col < width and bar[ref_col] == " ":
            bar[ref_col] = REFERENCE
        lines.append(
            f"{str(label).ljust(label_width)}{''.join(bar)} {fmt.format(value)}"
        )
    if reference is not None:
        lines.append(f"{' ' * label_width}{REFERENCE} = {fmt.format(reference)}")
    return "\n".join(lines)


def timeseries_chart(
    title: str,
    rows,
    key: str = "ipc",
    width: int = 48,
    fmt: str = "{:.2f}",
) -> str:
    """Render per-window timeseries rows (dicts with a ``cycle`` key,
    e.g. a :class:`~repro.metrics.WindowSeries`) as one bar per window
    of ``row[key]`` — the dynamics view of the old
    ``throttling_dynamics`` example, for any recorded metric."""
    values = {str(row["cycle"]): float(row.get(key, 0.0)) for row in rows}
    return bar_chart(title, values, width=width, fmt=fmt)


def grouped_bar_chart(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    series: tuple[str, ...] | None = None,
    width: int = 40,
    reference: float | None = None,
) -> str:
    """Render ``{group: {series: value}}`` as clustered bars."""
    if not rows:
        return f"== {title} ==\n(no data)"
    names = series or tuple(next(iter(rows.values())))
    lines = [f"== {title} =="]
    for group, values in rows.items():
        lines.append(f"{group}:")
        sub = {name: values.get(name, 0.0) for name in names}
        chart = bar_chart("", sub, width=width, reference=reference)
        lines.extend(chart.splitlines()[1:])
    return "\n".join(lines)
