"""Shared experiment context.

Every figure in the paper's evaluation normalizes against some common
set of runs (baseline, Best-SWL, Linebacker, CERF, PCAL). The context
memoizes each (app, architecture) simulation within a process so the
benchmark harness can regenerate all figures without re-simulating the
same configuration dozens of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.baselines.cache_ext import run_cache_ext, run_swl_cache_ext
from repro.baselines.cerf import cerf_factory
from repro.baselines.pcal import pcal_factory
from repro.baselines.swl import BestSWLResult, best_swl
from repro.config import LinebackerConfig, SimulationConfig, scaled_config
from repro.core.linebacker import linebacker_factory
from repro.gpu.gpu import SimulationResult, run_kernel
from repro.gpu.trace import KernelTrace
from repro.workloads.suite import ALL_APPS, kernel_for


@dataclass
class ExperimentContext:
    """Memoized simulation runs for one (config, workload-scale) pair."""

    config: SimulationConfig = field(default_factory=scaled_config)
    scale: float = 1.0
    apps: tuple[str, ...] = ALL_APPS
    _kernels: dict[str, KernelTrace] = field(default_factory=dict)
    _results: dict[tuple, SimulationResult] = field(default_factory=dict)
    _best_swl: dict[tuple, BestSWLResult] = field(default_factory=dict)

    def kernel(self, app: str) -> KernelTrace:
        if app not in self._kernels:
            self._kernels[app] = kernel_for(app, self.scale)
        return self._kernels[app]

    def _memo(self, key: tuple, run: Callable[[], SimulationResult]) -> SimulationResult:
        if key not in self._results:
            self._results[key] = run()
        return self._results[key]

    # -- architectures ------------------------------------------------------
    def baseline(self, app: str, track_loads: bool = False) -> SimulationResult:
        key = ("baseline", app, track_loads)
        return self._memo(
            key, lambda: run_kernel(self.config, self.kernel(app), track_loads=track_loads)
        )

    def best_swl(self, app: str) -> BestSWLResult:
        key = (app, self.scale, id(self.config))
        if key not in self._best_swl:
            self._best_swl[key] = best_swl(self.config, self.kernel(app))
        return self._best_swl[key]

    def linebacker(
        self, app: str, lb_config: Optional[LinebackerConfig] = None
    ) -> SimulationResult:
        lb = lb_config or self.config.linebacker
        key = ("lb", app, lb)
        return self._memo(
            key,
            lambda: run_kernel(
                self.config, self.kernel(app), extension_factory=linebacker_factory(lb)
            ),
        )

    def victim_caching(self, app: str) -> SimulationResult:
        """Figure 11's 'Victim Caching': keep everything, no throttling."""
        lb = replace(
            self.config.linebacker, enable_selective=False, enable_throttling=False
        )
        return self.linebacker(app, lb)

    def selective_victim_caching(self, app: str) -> SimulationResult:
        """Figure 11's 'Selective Victim Caching': SUR space only."""
        lb = replace(self.config.linebacker, enable_throttling=False)
        return self.linebacker(app, lb)

    def pcal(self, app: str) -> SimulationResult:
        key = ("pcal", app)
        return self._memo(
            key,
            lambda: run_kernel(
                self.config,
                self.kernel(app),
                extension_factory=pcal_factory(self.config.linebacker),
            ),
        )

    def cerf(self, app: str) -> SimulationResult:
        key = ("cerf", app)
        return self._memo(
            key,
            lambda: run_kernel(
                self.config,
                self.kernel(app),
                extension_factory=cerf_factory(self.config.linebacker),
            ),
        )

    def pcal_svc(self, app: str) -> SimulationResult:
        """Figure 15's PCAL+SVC: bypass throttling + SUR victim cache."""
        lb = replace(self.config.linebacker, enable_throttling=False)
        key = ("pcal_svc", app)
        return self._memo(
            key,
            lambda: run_kernel(
                self.config,
                self.kernel(app),
                extension_factory=linebacker_factory(lb, enable_bypass_throttling=True),
            ),
        )

    def pcal_cerf(self, app: str) -> SimulationResult:
        """Figure 15's PCAL+CERF: bypass throttling over a CERF cache."""
        key = ("pcal_cerf", app)

        def run() -> SimulationResult:
            from repro.baselines.cerf import CERFExtension

            def factory():
                ext = CERFExtension(self.config.linebacker)
                # Graft PCAL's bypass throttler onto CERF.
                from repro.core.linebacker import BypassThrottler

                ext.enable_bypass = True
                ext.bypass = BypassThrottler(
                    self.config.linebacker.ipc_upper_bound,
                    self.config.linebacker.ipc_lower_bound,
                )
                return ext

            return run_kernel(self.config, self.kernel(app), extension_factory=factory)

        return self._memo(key, run)

    def cache_ext(self, app: str) -> SimulationResult:
        key = ("cache_ext", app)
        return self._memo(key, lambda: run_cache_ext(self.config, self.kernel(app)))

    def best_swl_cache_ext(self, app: str) -> SimulationResult:
        key = ("bswl_cache_ext", app)
        limit = self.best_swl(app).best_limit
        return self._memo(
            key, lambda: run_swl_cache_ext(self.config, self.kernel(app), limit)
        )

    def lb_cache_ext(self, app: str) -> SimulationResult:
        """Figure 15's LB+CacheExt: Linebacker over the idealized cache."""
        from repro.baselines.cache_ext import config_with_cache_ext

        key = ("lb_cache_ext", app)

        def run() -> SimulationResult:
            cfg = config_with_cache_ext(self.config, self.kernel(app))
            return run_kernel(
                cfg,
                self.kernel(app),
                extension_factory=linebacker_factory(cfg.linebacker),
            )

        return self._memo(key, run)


def geomean(values) -> float:
    """Geometric mean (the paper's GM bars)."""
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
