"""Shared experiment context, fronted by the architecture registry.

Every figure in the paper's evaluation normalizes against some common
set of runs (baseline, Best-SWL, Linebacker, CERF, PCAL). The context
names those runs through the string-keyed
:data:`~repro.runner.registry.ARCHITECTURES` registry —
``ctx.run(app, arch, **overrides)`` — and delegates all execution and
memoization to a :class:`~repro.runner.engine.ExperimentRunner`, which
layers an in-process memo over the persistent on-disk result cache and
(optionally) a process pool. Regenerating all figures therefore
simulates each configuration at most once per process, and a warm
cache makes repeat runs near-instant.

The pre-registry one-method-per-architecture API (``ctx.baseline(app)``,
``ctx.pcal(app)``, ...) was deprecated in PR 1 and has been removed;
``ctx.run(app, arch)`` is the only spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.config import SimulationConfig, scaled_config
from repro.runner import ExperimentRunner, JobSpec
from repro.runner.registry import resolve
from repro.workloads.suite import ALL_APPS, kernel_for


@dataclass
class ExperimentContext:
    """Registry-driven simulation runs for one (config, scale) pair."""

    config: SimulationConfig = field(default_factory=scaled_config)
    scale: float = 1.0
    apps: tuple[str, ...] = ALL_APPS
    runner: ExperimentRunner = field(default_factory=ExperimentRunner)
    #: Overrides folded into every spec (``run --timeseries`` sets
    #: ``{"timeseries": True}`` here). Keys an architecture does not
    #: support are dropped per-spec, so e.g. ``best_swl`` jobs keep
    #: their plain cache keys.
    default_overrides: dict = field(default_factory=dict)
    _kernels: dict = field(default_factory=dict)

    def kernel(self, app: str):
        if app not in self._kernels:
            self._kernels[app] = kernel_for(app, self.scale)
        return self._kernels[app]

    # -- registry API --------------------------------------------------------
    def spec(self, app: str, arch: str, **overrides: Any) -> JobSpec:
        """The content-hashed job naming one (app, arch) simulation."""
        if self.default_overrides:
            merged = dict(self.default_overrides)
            spec = resolve(arch)
            if "timeseries" in merged and not spec.supports_timeseries:
                del merged["timeseries"]
            if (
                "backend" in merged
                and merged["backend"] not in spec.supports_backends
            ):
                # An arch that can't run the requested engine keeps its
                # plain cache key instead of warning-and-falling-back
                # on every job of a figure sweep.
                del merged["backend"]
            merged.update(overrides)
            overrides = merged
        return JobSpec.build(
            app=app,
            arch=arch,
            config=self.config,
            scale=self.scale,
            overrides=overrides,
        )

    def run(self, app: str, arch: str, **overrides: Any):
        """Run (or recall) one architecture on one app.

        ``arch`` is a key of :data:`repro.runner.ARCHITECTURES`;
        ``overrides`` are forwarded to the architecture's run function
        (e.g. ``track_loads=True`` or ``lb_config=...``) and are part
        of the memo/cache key.
        """
        return self.runner.run(self.spec(app, arch, **overrides))

    def run_many(self, jobs: Iterable) -> list:
        """Resolve a batch of ``(app, arch)`` or ``(app, arch, overrides)``
        tuples at once — the fan-out point for parallel execution."""
        specs = []
        for job in jobs:
            app, arch, *rest = job
            overrides = rest[0] if rest else {}
            specs.append(self.spec(app, arch, **overrides))
        return self.runner.run_many(specs)

    def prefetch(self, archs: Iterable[str], apps: Optional[Iterable[str]] = None) -> None:
        """Warm the memo for ``archs`` x ``apps`` in one parallel wave."""
        targets = tuple(apps) if apps is not None else self.apps
        self.run_many([(app, arch) for app in targets for arch in archs])

def geomean(values) -> float:
    """Geometric mean (the paper's GM bars)."""
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
