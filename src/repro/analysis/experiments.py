"""One runner per paper table/figure.

Each ``run_figN`` function returns a plain data structure (rows the
paper's chart plots) and is wrapped by a benchmark target in
``benchmarks/``. Everything is driven through a shared
:class:`~repro.analysis.context.ExperimentContext` so common runs
(baseline, Best-SWL, Linebacker) are simulated once per process.
"""

from __future__ import annotations

from dataclasses import replace
from repro.analysis.context import ExperimentContext, geomean
from repro.config import KB
from repro.gpu.gpu import (
    dynamically_unused_register_bytes,
    statically_unused_register_bytes,
)
from repro.power.energy import estimate_energy

# ---------------------------------------------------------------------------
# Figure 1: cold vs capacity/conflict miss breakdown (baseline)
# ---------------------------------------------------------------------------
def run_fig1(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    """Per app: cold-miss ratio and capacity/conflict (2C) miss ratio."""
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        result = ctx.baseline(app)
        out[app] = {
            "cold": result.cold_miss_ratio,
            "capacity_conflict": result.capacity_conflict_miss_ratio,
            "total": result.cold_miss_ratio + result.capacity_conflict_miss_ratio,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 2: reused working set of top-4 non-streaming loads (KB per window)
# ---------------------------------------------------------------------------
def run_fig2(ctx: ExperimentContext) -> dict[str, float]:
    out: dict[str, float] = {}
    for app in ctx.apps:
        result = ctx.baseline(app, track_loads=True)
        per_sm = [
            sm.load_tracker.top_loads_reused_working_set(4)
            for sm in result.sms
            if sm.load_tracker is not None
        ]
        out[app] = max(per_sm) / KB if per_sm else 0.0
    return out


# ---------------------------------------------------------------------------
# Figure 3: streaming data size per window (KB)
# ---------------------------------------------------------------------------
def run_fig3(ctx: ExperimentContext) -> dict[str, float]:
    out: dict[str, float] = {}
    for app in ctx.apps:
        result = ctx.baseline(app, track_loads=True)
        per_sm = [
            sm.load_tracker.mean_streaming_bytes()
            for sm in result.sms
            if sm.load_tracker is not None
        ]
        out[app] = max(per_sm) / KB if per_sm else 0.0
    return out


# ---------------------------------------------------------------------------
# Figure 4: statically and dynamically unused register file (KB)
# ---------------------------------------------------------------------------
def run_fig4(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        kernel = ctx.kernel(app)
        sur = statically_unused_register_bytes(ctx.config.gpu, kernel)
        best = ctx.best_swl(app)
        dur = dynamically_unused_register_bytes(
            ctx.config.gpu, kernel, active_ctas=best.best_limit
        )
        out[app] = {"sur_kb": sur / KB, "dur_kb": dur / KB, "swl_limit": best.best_limit}
    return out


# ---------------------------------------------------------------------------
# Figure 5: CacheExt / Best-SWL / Best-SWL+CacheExt (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig5(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = ctx.baseline(app).ipc
        out[app] = {
            "best_swl": ctx.best_swl(app).ipc / base,
            "cache_ext": ctx.cache_ext(app).ipc / base,
            "best_swl_cache_ext": ctx.best_swl_cache_ext(app).ipc / base,
        }
    out["GM"] = {
        key: geomean(out[a][key] for a in ctx.apps)
        for key in ("best_swl", "cache_ext", "best_swl_cache_ext")
    }
    return out


# ---------------------------------------------------------------------------
# Figure 9: Linebacker's victim space and monitoring periods
# ---------------------------------------------------------------------------
def run_fig9(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        result = ctx.linebacker(app)
        kernel = ctx.kernel(app)
        sur = statically_unused_register_bytes(ctx.config.gpu, kernel)
        dyn = geomean(
            max(ext.stats.mean_dynamic_unused_bytes, 1.0) for ext in result.extensions
        )
        periods = max(ext.load_monitor.windows_elapsed for ext in result.extensions)
        out[app] = {
            "sur_kb": sur / KB,
            "dur_kb": dyn / KB if dyn > 1.0 else 0.0,
            "monitoring_periods": periods,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 10: VTT partition set-associativity sweep
# ---------------------------------------------------------------------------
def run_fig10(ctx: ExperimentContext, ways_sweep=(1, 4, 16)) -> dict[int, dict[str, float]]:
    out: dict[int, dict[str, float]] = {}
    for ways in ways_sweep:
        lb = ctx.config.linebacker.with_ways(ways)
        speeds = []
        utils = []
        for app in ctx.apps:
            swl = ctx.best_swl(app).ipc
            result = ctx.linebacker(app, lb)
            speeds.append(result.ipc / swl)
            utils.append(
                geomean(
                    max(ext.stats.register_utilization, 1e-3)
                    for ext in result.extensions
                )
            )
        out[ways] = {
            "speedup_vs_best_swl": geomean(speeds),
            "rf_utilization": sum(utils) / len(utils),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 11: Linebacker technique breakdown (normalized to Best-SWL)
# ---------------------------------------------------------------------------
def run_fig11(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        swl = ctx.best_swl(app).ipc
        out[app] = {
            "victim_caching": ctx.victim_caching(app).ipc / swl,
            "selective_victim_caching": ctx.selective_victim_caching(app).ipc / swl,
            "throttling_selective_victim_caching": ctx.linebacker(app).ipc / swl,
        }
    keys = (
        "victim_caching",
        "selective_victim_caching",
        "throttling_selective_victim_caching",
    )
    out["GM"] = {k: geomean(out[a][k] for a in ctx.apps) for k in keys}
    return out


# ---------------------------------------------------------------------------
# Figure 12: performance versus previous approaches (normalized to Best-SWL)
# ---------------------------------------------------------------------------
def run_fig12(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        swl = ctx.best_swl(app).ipc
        out[app] = {
            "baseline": ctx.baseline(app).ipc / swl,
            "pcal": ctx.pcal(app).ipc / swl,
            "cerf": ctx.cerf(app).ipc / swl,
            "linebacker": ctx.linebacker(app).ipc / swl,
        }
    keys = ("baseline", "pcal", "cerf", "linebacker")
    out["GM"] = {k: geomean(out[a][k] for a in ctx.apps) for k in keys}
    return out


# ---------------------------------------------------------------------------
# Figure 13: request breakdown (hit / miss / bypass / reg hit)
# ---------------------------------------------------------------------------
def run_fig13(ctx: ExperimentContext) -> dict[str, dict[str, dict[str, float]]]:
    out: dict[str, dict[str, dict[str, float]]] = {}
    for app in ctx.apps:
        out[app] = {
            "B": ctx.baseline(app).request_breakdown,
            "S": ctx.best_swl(app).best_result.request_breakdown,
            "P": ctx.pcal(app).request_breakdown,
            "C": ctx.cerf(app).request_breakdown,
            "L": ctx.linebacker(app).request_breakdown,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 14: L1 cache size sweep (LB and CERF speedup over the baseline)
# ---------------------------------------------------------------------------
def run_fig14(
    ctx: ExperimentContext, sizes_kb=(16, 48, 64, 96, 128)
) -> dict[int, dict[str, float]]:
    out: dict[int, dict[str, float]] = {}
    for size_kb in sizes_kb:
        sub = ExperimentContext(
            config=replace(
                ctx.config, gpu=ctx.config.gpu.with_l1_size(size_kb * KB)
            ),
            scale=ctx.scale,
            apps=ctx.apps,
        )
        lb_speed = []
        cerf_speed = []
        for app in ctx.apps:
            base = sub.baseline(app).ipc
            lb_speed.append(sub.linebacker(app).ipc / base)
            cerf_speed.append(sub.cerf(app).ipc / base)
        out[size_kb] = {
            "linebacker": geomean(lb_speed),
            "cerf": geomean(cerf_speed),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 15: combinations of previous works (normalized to Best-SWL)
# ---------------------------------------------------------------------------
def run_fig15(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        swl = ctx.best_swl(app).ipc
        out[app] = {
            "baseline_svc": ctx.victim_caching(app).ipc / swl,
            "pcal_cerf": ctx.pcal_cerf(app).ipc / swl,
            "pcal_svc": ctx.pcal_svc(app).ipc / swl,
            "linebacker": ctx.linebacker(app).ipc / swl,
            "lb_cache_ext": ctx.lb_cache_ext(app).ipc / swl,
        }
    keys = ("baseline_svc", "pcal_cerf", "pcal_svc", "linebacker", "lb_cache_ext")
    out["GM"] = {k: geomean(out[a][k] for a in ctx.apps) for k in keys}
    return out


# ---------------------------------------------------------------------------
# Figure 16: register file bank conflicts (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig16(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = max(1, ctx.baseline(app).bank_conflicts)
        out[app] = {
            "cerf": ctx.cerf(app).bank_conflicts / base,
            "linebacker": ctx.linebacker(app).bank_conflicts / base,
        }
    out["GM"] = {
        k: geomean(out[a][k] for a in ctx.apps if out[a][k] > 0)
        for k in ("cerf", "linebacker")
    }
    return out


# ---------------------------------------------------------------------------
# Figure 17: off-chip memory traffic (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig17(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = max(1, ctx.baseline(app).traffic.total_lines)
        lb = ctx.linebacker(app)
        out[app] = {
            "cerf": ctx.cerf(app).traffic.total_lines / base,
            "linebacker": lb.traffic.total_lines / base,
            "lb_register_overhead": lb.traffic.register_overhead_lines / base,
        }
    out["GM"] = {
        k: geomean(max(out[a][k], 1e-6) for a in ctx.apps)
        for k in ("cerf", "linebacker")
    }
    return out


# ---------------------------------------------------------------------------
# Figure 18: energy consumption (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig18(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = estimate_energy(ctx.baseline(app)).total
        out[app] = {
            "cerf": estimate_energy(ctx.cerf(app)).total / base,
            "linebacker": estimate_energy(ctx.linebacker(app)).total / base,
        }
    out["GM"] = {
        k: geomean(out[a][k] for a in ctx.apps) for k in ("cerf", "linebacker")
    }
    return out
