"""One runner per paper table/figure.

Each ``run_figN`` function returns a plain data structure (rows the
paper's chart plots) and is wrapped by a benchmark target in
``benchmarks/``. Everything is driven through a shared
:class:`~repro.analysis.context.ExperimentContext`, whose registry API
(``ctx.run(app, arch)``) memoizes through the experiment runner — so
common runs (baseline, Best-SWL, Linebacker) are simulated once per
process and recalled from the persistent cache across processes.

Every figure opens with a ``ctx.run_many``/``ctx.prefetch`` wave
naming all (app, architecture) pairs it needs: with ``workers > 1``
the wave fans out over the process pool; the per-app loops below it
then resolve instantly from the memo.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.context import ExperimentContext, geomean
from repro.config import KB
from repro.gpu.gpu import (
    dynamically_unused_register_bytes,
    statically_unused_register_bytes,
)
from repro.power.energy import estimate_energy

# ---------------------------------------------------------------------------
# Figure 1: cold vs capacity/conflict miss breakdown (baseline)
# ---------------------------------------------------------------------------
def run_fig1(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    """Per app: cold-miss ratio and capacity/conflict (2C) miss ratio."""
    ctx.prefetch(["baseline"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        result = ctx.run(app, "baseline")
        out[app] = {
            "cold": result.cold_miss_ratio,
            "capacity_conflict": result.capacity_conflict_miss_ratio,
            "total": result.cold_miss_ratio + result.capacity_conflict_miss_ratio,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 2: reused working set of top-4 non-streaming loads (KB per window)
# ---------------------------------------------------------------------------
def run_fig2(ctx: ExperimentContext) -> dict[str, float]:
    ctx.run_many([(app, "baseline", {"track_loads": True}) for app in ctx.apps])
    out: dict[str, float] = {}
    for app in ctx.apps:
        result = ctx.run(app, "baseline", track_loads=True)
        per_sm = [
            sm.load_tracker.top_loads_reused_working_set(4)
            for sm in result.sms
            if sm.load_tracker is not None
        ]
        out[app] = max(per_sm) / KB if per_sm else 0.0
    return out


# ---------------------------------------------------------------------------
# Figure 3: streaming data size per window (KB)
# ---------------------------------------------------------------------------
def run_fig3(ctx: ExperimentContext) -> dict[str, float]:
    ctx.run_many([(app, "baseline", {"track_loads": True}) for app in ctx.apps])
    out: dict[str, float] = {}
    for app in ctx.apps:
        result = ctx.run(app, "baseline", track_loads=True)
        per_sm = [
            sm.load_tracker.mean_streaming_bytes()
            for sm in result.sms
            if sm.load_tracker is not None
        ]
        out[app] = max(per_sm) / KB if per_sm else 0.0
    return out


# ---------------------------------------------------------------------------
# Figure 4: statically and dynamically unused register file (KB)
# ---------------------------------------------------------------------------
def run_fig4(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["best_swl"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        kernel = ctx.kernel(app)
        sur = statically_unused_register_bytes(ctx.config.gpu, kernel)
        best = ctx.run(app, "best_swl")
        dur = dynamically_unused_register_bytes(
            ctx.config.gpu, kernel, active_ctas=best.best_limit
        )
        out[app] = {"sur_kb": sur / KB, "dur_kb": dur / KB, "swl_limit": best.best_limit}
    return out


# ---------------------------------------------------------------------------
# Figure 5: CacheExt / Best-SWL / Best-SWL+CacheExt (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig5(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["baseline", "best_swl", "cache_ext"])
    # The (SUR+DUR)-enlarged L1 needs each app's oracle limit, so this
    # second wave depends on the Best-SWL results above.
    ctx.run_many(
        [
            (
                app,
                "best_swl_cache_ext",
                {"cta_limit": ctx.run(app, "best_swl").best_limit},
            )
            for app in ctx.apps
        ]
    )
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = ctx.run(app, "baseline").ipc
        limit = ctx.run(app, "best_swl").best_limit
        out[app] = {
            "best_swl": ctx.run(app, "best_swl").ipc / base,
            "cache_ext": ctx.run(app, "cache_ext").ipc / base,
            "best_swl_cache_ext": ctx.run(
                app, "best_swl_cache_ext", cta_limit=limit
            ).ipc
            / base,
        }
    out["GM"] = {
        key: geomean(out[a][key] for a in ctx.apps)
        for key in ("best_swl", "cache_ext", "best_swl_cache_ext")
    }
    return out


# ---------------------------------------------------------------------------
# Figure 9: Linebacker's victim space and monitoring periods
# ---------------------------------------------------------------------------
def run_fig9(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["linebacker"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        result = ctx.run(app, "linebacker")
        kernel = ctx.kernel(app)
        sur = statically_unused_register_bytes(ctx.config.gpu, kernel)
        dyn = geomean(
            max(ext.stats.mean_dynamic_unused_bytes, 1.0) for ext in result.extensions
        )
        periods = max(ext.load_monitor.windows_elapsed for ext in result.extensions)
        out[app] = {
            "sur_kb": sur / KB,
            "dur_kb": dyn / KB if dyn > 1.0 else 0.0,
            "monitoring_periods": periods,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 10: VTT partition set-associativity sweep
# ---------------------------------------------------------------------------
def run_fig10(ctx: ExperimentContext, ways_sweep=(1, 4, 16)) -> dict[int, dict[str, float]]:
    lb_variants = {ways: ctx.config.linebacker.with_ways(ways) for ways in ways_sweep}
    ctx.run_many(
        [(app, "best_swl") for app in ctx.apps]
        + [
            (app, "linebacker", {"lb_config": lb})
            for app in ctx.apps
            for lb in lb_variants.values()
        ]
    )
    out: dict[int, dict[str, float]] = {}
    for ways, lb in lb_variants.items():
        speeds = []
        utils = []
        for app in ctx.apps:
            swl = ctx.run(app, "best_swl").ipc
            result = ctx.run(app, "linebacker", lb_config=lb)
            speeds.append(result.ipc / swl)
            utils.append(
                geomean(
                    max(ext.stats.register_utilization, 1e-3)
                    for ext in result.extensions
                )
            )
        out[ways] = {
            "speedup_vs_best_swl": geomean(speeds),
            "rf_utilization": sum(utils) / len(utils),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 11: Linebacker technique breakdown (normalized to Best-SWL)
# ---------------------------------------------------------------------------
def run_fig11(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(
        ["best_swl", "victim_caching", "selective_victim_caching", "linebacker"]
    )
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        swl = ctx.run(app, "best_swl").ipc
        out[app] = {
            "victim_caching": ctx.run(app, "victim_caching").ipc / swl,
            "selective_victim_caching": ctx.run(app, "selective_victim_caching").ipc
            / swl,
            "throttling_selective_victim_caching": ctx.run(app, "linebacker").ipc
            / swl,
        }
    keys = (
        "victim_caching",
        "selective_victim_caching",
        "throttling_selective_victim_caching",
    )
    out["GM"] = {k: geomean(out[a][k] for a in ctx.apps) for k in keys}
    return out


# ---------------------------------------------------------------------------
# Figure 12: performance versus previous approaches (normalized to Best-SWL)
# ---------------------------------------------------------------------------
def run_fig12(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["baseline", "best_swl", "pcal", "cerf", "linebacker"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        swl = ctx.run(app, "best_swl").ipc
        out[app] = {
            "baseline": ctx.run(app, "baseline").ipc / swl,
            "pcal": ctx.run(app, "pcal").ipc / swl,
            "cerf": ctx.run(app, "cerf").ipc / swl,
            "linebacker": ctx.run(app, "linebacker").ipc / swl,
        }
    keys = ("baseline", "pcal", "cerf", "linebacker")
    out["GM"] = {k: geomean(out[a][k] for a in ctx.apps) for k in keys}
    return out


# ---------------------------------------------------------------------------
# Figure 13: request breakdown (hit / miss / bypass / reg hit)
# ---------------------------------------------------------------------------
def run_fig13(ctx: ExperimentContext) -> dict[str, dict[str, dict[str, float]]]:
    ctx.prefetch(["baseline", "best_swl", "pcal", "cerf", "linebacker"])
    out: dict[str, dict[str, dict[str, float]]] = {}
    for app in ctx.apps:
        out[app] = {
            "B": ctx.run(app, "baseline").request_breakdown,
            "S": ctx.run(app, "best_swl").best_result.request_breakdown,
            "P": ctx.run(app, "pcal").request_breakdown,
            "C": ctx.run(app, "cerf").request_breakdown,
            "L": ctx.run(app, "linebacker").request_breakdown,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 14: L1 cache size sweep (LB and CERF speedup over the baseline)
# ---------------------------------------------------------------------------
def run_fig14(
    ctx: ExperimentContext, sizes_kb=(16, 48, 64, 96, 128)
) -> dict[int, dict[str, float]]:
    subs = {
        size_kb: ExperimentContext(
            config=replace(
                ctx.config, gpu=ctx.config.gpu.with_l1_size(size_kb * KB)
            ),
            scale=ctx.scale,
            apps=ctx.apps,
            runner=ctx.runner,  # share the memo/cache/pool across the sweep
        )
        for size_kb in sizes_kb
    }
    ctx.runner.run_many(
        [
            sub.spec(app, arch)
            for sub in subs.values()
            for app in ctx.apps
            for arch in ("baseline", "linebacker", "cerf")
        ]
    )
    out: dict[int, dict[str, float]] = {}
    for size_kb, sub in subs.items():
        lb_speed = []
        cerf_speed = []
        for app in ctx.apps:
            base = sub.run(app, "baseline").ipc
            lb_speed.append(sub.run(app, "linebacker").ipc / base)
            cerf_speed.append(sub.run(app, "cerf").ipc / base)
        out[size_kb] = {
            "linebacker": geomean(lb_speed),
            "cerf": geomean(cerf_speed),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 15: combinations of previous works (normalized to Best-SWL)
# ---------------------------------------------------------------------------
def run_fig15(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(
        [
            "best_swl",
            "victim_caching",
            "pcal_cerf",
            "pcal_svc",
            "linebacker",
            "lb_cache_ext",
        ]
    )
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        swl = ctx.run(app, "best_swl").ipc
        out[app] = {
            "baseline_svc": ctx.run(app, "victim_caching").ipc / swl,
            "pcal_cerf": ctx.run(app, "pcal_cerf").ipc / swl,
            "pcal_svc": ctx.run(app, "pcal_svc").ipc / swl,
            "linebacker": ctx.run(app, "linebacker").ipc / swl,
            "lb_cache_ext": ctx.run(app, "lb_cache_ext").ipc / swl,
        }
    keys = ("baseline_svc", "pcal_cerf", "pcal_svc", "linebacker", "lb_cache_ext")
    out["GM"] = {k: geomean(out[a][k] for a in ctx.apps) for k in keys}
    return out


# ---------------------------------------------------------------------------
# Figure 16: register file bank conflicts (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig16(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["baseline", "cerf", "linebacker"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = max(1, ctx.run(app, "baseline").bank_conflicts)
        out[app] = {
            "cerf": ctx.run(app, "cerf").bank_conflicts / base,
            "linebacker": ctx.run(app, "linebacker").bank_conflicts / base,
        }
    out["GM"] = {
        k: geomean(out[a][k] for a in ctx.apps if out[a][k] > 0)
        for k in ("cerf", "linebacker")
    }
    return out


# ---------------------------------------------------------------------------
# Figure 17: off-chip memory traffic (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig17(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["baseline", "cerf", "linebacker"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = max(1, ctx.run(app, "baseline").traffic.total_lines)
        lb = ctx.run(app, "linebacker")
        out[app] = {
            "cerf": ctx.run(app, "cerf").traffic.total_lines / base,
            "linebacker": lb.traffic.total_lines / base,
            "lb_register_overhead": lb.traffic.register_overhead_lines / base,
        }
    out["GM"] = {
        k: geomean(max(out[a][k], 1e-6) for a in ctx.apps)
        for k in ("cerf", "linebacker")
    }
    return out


# ---------------------------------------------------------------------------
# Figure 18: energy consumption (normalized to baseline)
# ---------------------------------------------------------------------------
def run_fig18(ctx: ExperimentContext) -> dict[str, dict[str, float]]:
    ctx.prefetch(["baseline", "cerf", "linebacker"])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        base = estimate_energy(ctx.run(app, "baseline")).total
        out[app] = {
            "cerf": estimate_energy(ctx.run(app, "cerf")).total / base,
            "linebacker": estimate_energy(ctx.run(app, "linebacker")).total / base,
        }
    out["GM"] = {
        k: geomean(out[a][k] for a in ctx.apps) for k in ("cerf", "linebacker")
    }
    return out


# ---------------------------------------------------------------------------
# Dynamics: per-window timeseries summary (Fig. 6 workflow over time)
# ---------------------------------------------------------------------------
def run_dynamics(ctx: ExperimentContext, arch: str = "linebacker") -> dict[str, dict[str, float]]:
    """Summarize each app's per-window dynamics under ``arch``.

    Runs with timeseries recording on (a distinct cache key from the
    scalar runs) and folds SM0's window rows into scalars: window
    count, mean per-window IPC, mean active CTAs, total throttled
    windows, and the final number of active victim partitions.
    """
    ctx.run_many([(app, arch, {"timeseries": True}) for app in ctx.apps])
    out: dict[str, dict[str, float]] = {}
    for app in ctx.apps:
        result = ctx.run(app, arch, timeseries=True)
        series = (result.timeseries or [None])[0]
        if series is None or len(series) == 0:
            out[app] = {
                "windows": 0.0,
                "mean_ipc": 0.0,
                "mean_active_ctas": 0.0,
                "throttled_windows": 0.0,
                "final_vps": 0.0,
            }
            continue
        rows = list(series)
        out[app] = {
            "windows": float(len(rows)),
            "mean_ipc": sum(r["ipc"] for r in rows) / len(rows),
            "mean_active_ctas": sum(r["active"] for r in rows) / len(rows),
            "throttled_windows": float(sum(1 for r in rows if r["inactive"] > 0)),
            "final_vps": float(rows[-1].get("vps", 0)),
        }
    return out
