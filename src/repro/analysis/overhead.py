"""Storage overhead accounting (paper Section 4.2).

The paper tallies each new structure's storage and arrives at 5.88 KB
per SM (about 0.9% of an SM's area). This module recomputes the same
inventory from the configuration so the benchmark harness can print
the table and tests can pin the total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig, LinebackerConfig


@dataclass(frozen=True)
class OverheadBreakdown:
    """Per-structure storage cost in bytes."""

    hpc_fields: float
    load_monitor: float
    ipc_monitor: float
    cta_manager: float
    per_cta_info: float
    vtt: float
    buffer: float

    @property
    def total_bytes(self) -> float:
        return (
            self.hpc_fields
            + self.load_monitor
            + self.ipc_monitor
            + self.cta_manager
            + self.per_cta_info
            + self.vtt
            + self.buffer
        )

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024


def storage_overhead(
    gpu: GPUConfig | None = None, lb: LinebackerConfig | None = None
) -> OverheadBreakdown:
    """Recompute Section 4.2's storage inventory."""
    gpu = gpu or GPUConfig()
    lb = lb or LinebackerConfig()

    # 5-bit hashed-PC field per L1 line (240 B for a 48 KB cache).
    num_l1_lines = gpu.l1_size_bytes // gpu.l1_line_bytes
    hpc_fields = num_l1_lines * lb.hpc_bits / 8

    # LM: 32 entries x (2-bit valid + three 4-byte registers) = 392 B.
    load_monitor = lb.lm_entries * (2 / 8 + 3 * 4)

    # IPC monitor: three 32-bit fields.
    ipc_monitor = 3 * 4

    # CTA manager common info: two 11-bit (#reg, LRN) + one 32-bit (BP).
    cta_manager = (2 * 11 + 32) / 8

    # Per-CTA Info: 32 entries x (ACT 1b + C 1b + FRN 11b + BA 32b).
    per_cta_info = gpu.max_ctas_per_sm * (1 + 1 + 11 + 32) / 8

    # VTT: 1536 entries x (1-bit valid + 18-bit tag + 5-bit meta) = 4608 B.
    vtt_entries = lb.max_vtt_partitions * (gpu.l1_num_sets * lb.vtt_ways)
    vtt = vtt_entries * (1 + 18 + 5) / 8

    # 6-entry backup buffer: (4 B address + 128 B line) each = 792 B.
    buffer = lb.backup_buffer_entries * (4 + gpu.l1_line_bytes)

    return OverheadBreakdown(
        hpc_fields=hpc_fields,
        load_monitor=load_monitor,
        ipc_monitor=ipc_monitor,
        cta_manager=cta_manager,
        per_cta_info=per_cta_info,
        vtt=vtt,
        buffer=buffer,
    )
