"""Plain-text table rendering for the benchmark harness.

The paper reports figures as grouped bar charts; the harness prints
the same data as aligned text tables so "the rows/series the paper
reports" appear directly in benchmark output.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Iterable[str] | None = None,
    precision: int = 3,
) -> str:
    """Render {row: {column: value}} as an aligned text table."""
    rows = dict(rows)
    if not rows:
        return f"== {title} ==\n(no data)"
    cols = list(columns) if columns is not None else list(next(iter(rows.values())))
    name_width = max(len(r) for r in rows) + 2
    col_width = max(12, max(len(c) for c in cols) + 2)

    lines = [f"== {title} =="]
    header = " " * name_width + "".join(c.rjust(col_width) for c in cols)
    lines.append(header)
    for name, values in rows.items():
        cells = []
        for col in cols:
            value = values.get(col, float("nan"))
            if isinstance(value, float):
                cells.append(f"{value:.{precision}f}".rjust(col_width))
            else:
                cells.append(str(value).rjust(col_width))
        lines.append(name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def format_series(title: str, series: Mapping, precision: int = 3) -> str:
    """Render a flat {key: value} mapping."""
    lines = [f"== {title} =="]
    width = max(len(str(k)) for k in series) + 2
    for key, value in series.items():
        if isinstance(value, float):
            lines.append(f"{str(key).ljust(width)}{value:.{precision}f}")
        else:
            lines.append(f"{str(key).ljust(width)}{value}")
    return "\n".join(lines)
