"""The public programmatic surface: one ``Session``, two transports.

Historically the repo exposed three overlapping entry points —
``run_kernel(...)`` kwargs for one-off simulations,
:class:`~repro.runner.engine.ExperimentRunner` for batched sweeps, and
:class:`~repro.analysis.context.ExperimentContext` for figure
workflows. :class:`Session` folds them into a single facade that is
*transport-agnostic*:

* ``Session.local(...)`` executes through an in-process
  :class:`ExperimentRunner` (memo → persistent cache → executor);
* ``Session.connect(url)`` submits the identical content-hashed specs
  to a running coordinator (``python -m repro serve``) over HTTP.

Either way, ``run`` / ``run_many`` / ``trace`` return typed
:class:`JobHandle`\\ s with the same three methods (``status()``,
``result()``, ``stream_timeseries()``), and — because identity is the
spec's content hash end to end — the same submission yields
bit-identical results on both transports, deduplicated through the
same shared cache.

Example::

    from repro.api import Session, RunOptions

    with Session.local(workers=4) as s:
        ipc = s.run("S2", "linebacker", scale=0.25).result().ipc

    with Session.connect("http://127.0.0.1:8642") as s:
        handles = s.run_many([("S2", "linebacker"), ("LI", "baseline")])
        results = [h.result(timeout=300) for h in handles]
        for row in s.trace("GE", "linebacker").stream_timeseries():
            print(row["cycle"], row["ipc"])
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.config import SimulationConfig, scaled_config
from repro.options import RunOptions
from repro.runner.engine import ExperimentRunner
from repro.runner.registry import resolve
from repro.runner.spec import JobSpec

__all__ = ["JobHandle", "RunOptions", "Session"]


class JobHandle:
    """One submitted job: poll it, block on it, stream its windows."""

    def __init__(self, session: "Session", spec: JobSpec, job_id: str) -> None:
        self._session = session
        self.spec = spec
        self.job_id = job_id

    def __repr__(self) -> str:
        return f"JobHandle({self.spec.label}, {self.job_id[:12]}...)"

    def status(self) -> str:
        """``"queued" | "running" | "done" | "failed"``."""
        return self._session._status(self)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until done; returns the portable simulation result.

        Raises :class:`~repro.runner.executors.RemoteJobError` when the
        simulation failed, ``TimeoutError`` when ``timeout`` elapses.
        """
        return self._session._result(self, timeout)

    def stream_timeseries(
        self,
        sm: int = 0,
        poll: float = 0.1,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield per-window rows of a ``timeseries=True`` run."""
        return self._session._stream_timeseries(self, sm, poll, timeout)


#: A ``run_many`` item: (app, arch) or (app, arch, overrides-dict).
JobLike = Union[tuple, JobSpec]


class Session:
    """A connection to simulation capacity — local or served.

    Construct through :meth:`local` or :meth:`connect`, not directly.
    Sessions are context managers; ``close()`` releases executors /
    sockets.
    """

    def __init__(
        self,
        *,
        runner: Optional[ExperimentRunner] = None,
        client=None,
        config: Optional[SimulationConfig] = None,
        scale: float = 1.0,
    ) -> None:
        if (runner is None) == (client is None):
            raise ValueError("Session needs exactly one of runner/client")
        self._runner = runner
        self._client = client
        self.config = config if config is not None else scaled_config()
        self.scale = scale

    # -- constructors ----------------------------------------------------
    @classmethod
    def local(
        cls,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        cache_dir: "str | None" = None,
        use_cache: Optional[bool] = None,
        config: Optional[SimulationConfig] = None,
        scale: float = 1.0,
        **runner_kwargs: Any,
    ) -> "Session":
        """An in-process session over an :class:`ExperimentRunner`."""
        from repro.runner.cache import ResultCache

        cache = ResultCache(cache_dir) if cache_dir else None
        runner = ExperimentRunner(
            workers=workers,
            cache=cache,
            use_cache=use_cache,
            executor=executor,
            **runner_kwargs,
        )
        return cls(runner=runner, config=config, scale=scale)

    @classmethod
    def connect(
        cls,
        url: str,
        timeout: float = 30.0,
        config: Optional[SimulationConfig] = None,
        scale: float = 1.0,
    ) -> "Session":
        """A session against a running ``python -m repro serve``.

        Verifies liveness and schema compatibility up front
        (``/v1/healthz``), so version skew fails at connect time with
        an actionable message rather than on the first submission.
        """
        from repro.service.client import ServiceClient

        client = ServiceClient(url, timeout=timeout)
        client.healthz()
        return cls(client=client, config=config, scale=scale)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the session's transport.

        Local engines build and shut down executors per batch and the
        HTTP client is connectionless, so this only drops references —
        but callers should still treat a closed session as dead; the
        context-manager form makes that structural.
        """
        self._runner = None
        self._client = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- spec construction ----------------------------------------------
    def spec(
        self,
        app: str,
        arch: str,
        config: Optional[SimulationConfig] = None,
        scale: Optional[float] = None,
        options: Optional[RunOptions] = None,
        backend: Optional[str] = None,
        **overrides: Any,
    ) -> JobSpec:
        """The content-hashed spec this session would submit.

        ``backend`` folds into the options (and therefore the content
        hash): the same job on different engines never aliases in any
        cache. Architectures that cannot run the requested engine are
        rejected here, mirroring the ``supports_timeseries`` check in
        :meth:`trace`.
        """
        if backend is not None:
            supported = resolve(arch).supports_backends
            if backend not in supported:
                raise ValueError(
                    f"architecture {arch!r} does not support the "
                    f"{backend!r} backend (supported: {', '.join(supported)})"
                )
            options = (options or RunOptions()).replace(backend=backend)
        return JobSpec.build(
            app=app,
            arch=arch,
            config=config if config is not None else self.config,
            scale=scale if scale is not None else self.scale,
            overrides=overrides,
            options=options,
        )

    # -- public verbs ----------------------------------------------------
    def run(
        self,
        app: str,
        arch: str,
        *,
        config: Optional[SimulationConfig] = None,
        scale: Optional[float] = None,
        options: Optional[RunOptions] = None,
        backend: Optional[str] = None,
        **overrides: Any,
    ) -> JobHandle:
        """Submit one (app, arch) simulation; returns its handle."""
        return self.submit(self.spec(app, arch, config, scale, options,
                                     backend, **overrides))

    def run_many(self, jobs: Iterable[JobLike]) -> list[JobHandle]:
        """Submit a batch; the fan-out / dedup point for sweeps.

        Items are :class:`JobSpec`\\ s, ``(app, arch)`` or
        ``(app, arch, overrides)`` tuples. Local sessions resolve the
        whole batch through the engine at once (parallel executors,
        coalesced duplicates); connected sessions submit each spec and
        let the coordinator dedup by content hash.
        """
        specs = [self._as_spec(job) for job in jobs]
        if self._runner is not None:
            self._runner.run_many(specs)  # resolve eagerly, in parallel
            return [JobHandle(self, spec, spec.key) for spec in specs]
        handles = []
        for spec in specs:
            doc = self._client.submit(spec)
            handles.append(JobHandle(self, spec, doc["job_id"]))
        return handles

    def trace(
        self,
        app: str,
        arch: str = "linebacker",
        *,
        config: Optional[SimulationConfig] = None,
        scale: Optional[float] = None,
        options: Optional[RunOptions] = None,
        backend: Optional[str] = None,
        **overrides: Any,
    ) -> JobHandle:
        """A ``run`` with per-window timeseries recording forced on."""
        if not resolve(arch).supports_timeseries:
            raise ValueError(
                f"architecture {arch!r} does not support timeseries recording"
            )
        options = (options or RunOptions()).replace(timeseries=True)
        return self.run(app, arch, config=config, scale=scale,
                        options=options, backend=backend, **overrides)

    def submit(self, spec: JobSpec) -> JobHandle:
        """Submit one pre-built spec."""
        if self._runner is not None:
            self._runner.run(spec)
            return JobHandle(self, spec, spec.key)
        doc = self._client.submit(spec)
        return JobHandle(self, spec, doc["job_id"])

    # -- handle backends -------------------------------------------------
    def _as_spec(self, job: JobLike) -> JobSpec:
        if isinstance(job, JobSpec):
            return job
        app, arch, *rest = job
        overrides = rest[0] if rest else {}
        return self.spec(app, arch, **overrides)

    def _status(self, handle: JobHandle) -> str:
        if self._runner is not None:
            # Local submissions resolve eagerly; reaching the handle
            # means the run (or a raise) already happened.
            return "done"
        return self._client.status(handle.job_id)["status"]

    def _result(self, handle: JobHandle, timeout: Optional[float]) -> Any:
        if self._runner is not None:
            return self._runner.run(handle.spec)  # memo hit: same object
        return self._client.result(handle.job_id, timeout=timeout)

    def _stream_timeseries(
        self,
        handle: JobHandle,
        sm: int,
        poll: float,
        timeout: Optional[float],
    ) -> Iterator[dict]:
        if handle.spec.options.timeseries is False:
            raise ValueError(
                "this job was not submitted with timeseries recording; "
                "use Session.trace or RunOptions(timeseries=True)"
            )
        if self._runner is not None:
            result = self._result(handle, timeout)
            series = (result.timeseries or [])
            if not series:
                return iter(())
            return iter(list(series[sm]))
        return self._client.stream_timeseries(
            handle.job_id, sm=sm, poll=poll, timeout=timeout
        )

    # -- observability ---------------------------------------------------
    @property
    def stats(self):
        """Local: the engine's :class:`RunnerStats`. Connected: the
        service's ``/v1/fleet`` report (a dict)."""
        if self._runner is not None:
            return self._runner.stats
        return self._client.fleet()


def run_many_results(
    session: Session,
    jobs: Sequence[JobLike],
    timeout: Optional[float] = None,
) -> list:
    """Convenience: submit a batch and block for every result, in order."""
    return [h.result(timeout=timeout) for h in session.run_many(jobs)]
