"""Comparison architectures from the paper's evaluation: Best-SWL
(idealized warp throttling), PCAL (throttling + bypassing), CERF
(unified register-file/cache) and the idealized CacheExt study."""

from repro.baselines.cache_ext import (
    config_with_cache_ext,
    extended_l1_bytes,
    run_cache_ext,
    run_swl_cache_ext,
)
from repro.baselines.ccws import CCWSExtension, ccws_factory, run_ccws
from repro.baselines.cerf import CERFExtension, cerf_factory, run_cerf
from repro.baselines.pcal import PCALExtension, pcal_factory, run_pcal
from repro.baselines.swl import BestSWLResult, best_swl, run_swl, sweep_limits

__all__ = [
    "BestSWLResult",
    "CCWSExtension",
    "CERFExtension",
    "ccws_factory",
    "run_ccws",
    "PCALExtension",
    "best_swl",
    "cerf_factory",
    "config_with_cache_ext",
    "extended_l1_bytes",
    "pcal_factory",
    "run_cache_ext",
    "run_cerf",
    "run_pcal",
    "run_swl",
    "run_swl_cache_ext",
    "sweep_limits",
]
