"""CacheExt: the idealized enhanced-L1 study of paper Section 2.4.

The motivational experiment assumes a design that magically reassigns
unused register space as a direct extension of the L1 data cache:

* ``CacheExt``            — baseline scheduling, L1 enlarged by the
  statically unused register space (SUR).
* ``Best-SWL + CacheExt`` — oracle static throttling, L1 enlarged by
  SUR plus the dynamically unused register space (DUR) the throttling
  leaves behind.
* ``LB + CacheExt``       — Figure 15's final bar: Linebacker running
  on top of the idealized enlarged cache.

The enlarged size is rounded down to a whole number of sets so the
8-way geometry stays valid.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config import SimulationConfig
from repro.gpu.gpu import (
    SimulationResult,
    dynamically_unused_register_bytes,
    run_kernel,
    statically_unused_register_bytes,
)
from repro.gpu.trace import KernelTrace
from repro.options import RunOptions


def extended_l1_bytes(config: SimulationConfig, kernel: KernelTrace, extra_bytes: int) -> int:
    """L1 size grown by ``extra_bytes``, aligned to the set geometry."""
    gpu = config.gpu
    set_bytes = gpu.l1_assoc * gpu.l1_line_bytes
    total = gpu.l1_size_bytes + max(0, extra_bytes)
    return max(set_bytes, (total // set_bytes) * set_bytes)


def config_with_cache_ext(
    config: SimulationConfig,
    kernel: KernelTrace,
    include_dur_for_limit: Optional[int] = None,
) -> SimulationConfig:
    """Config whose L1 absorbs SUR (and DUR at a given CTA limit)."""
    extra = statically_unused_register_bytes(config.gpu, kernel)
    if include_dur_for_limit is not None:
        extra += dynamically_unused_register_bytes(
            config.gpu, kernel, active_ctas=include_dur_for_limit
        )
    new_size = extended_l1_bytes(config, kernel, extra)
    return replace(config, gpu=config.gpu.with_l1_size(new_size))


def run_cache_ext(
    config: SimulationConfig,
    kernel: KernelTrace,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Baseline scheduling with an SUR-enlarged L1."""
    return run_kernel(
        config_with_cache_ext(config, kernel), kernel,
        options=RunOptions(backend=backend),
    )


def run_swl_cache_ext(
    config: SimulationConfig,
    kernel: KernelTrace,
    cta_limit: int,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Static CTA limit with an (SUR+DUR)-enlarged L1."""
    ext_config = config_with_cache_ext(config, kernel, include_dur_for_limit=cta_limit)
    return run_kernel(
        ext_config, kernel,
        options=RunOptions(max_concurrent_ctas=cta_limit, backend=backend),
    )
