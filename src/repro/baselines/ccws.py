"""CCWS: Cache-Conscious Wavefront Scheduling (Rogers et al., MICRO
2012), the dynamic warp-throttling scheme the paper's Best-SWL oracle
is calibrated against (Section 2.4: Best-SWL "has been shown to
provide better performance than dynamic warp throttling techniques
such as CCWS").

The mechanism, reproduced at the level this substrate models:

* A **victim tag array** (VTA, tag-only) records lines evicted from
  L1 together with the warp that owned them.
* When a warp misses in L1 and finds its *own* tag in the VTA, it
  "lost locality" — the line would have hit had fewer warps shared the
  cache. Its lost-locality score jumps.
* Scores decay linearly over time. The aggregate score above a
  threshold determines how many of the *lowest-scoring* warps are
  descheduled: warps that lost locality get the cache to themselves
  until their scores recover.

The original prioritizes at issue granularity; here throttled warps
are deactivated between monitoring windows, the same mechanism the
CTA-level throttler uses, which preserves the feedback loop.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.config import LinebackerConfig, SimulationConfig
from repro.gpu.extension import SMExtension
from repro.gpu.gpu import SimulationResult, run_kernel
from repro.gpu.trace import KernelTrace
from repro.memory.cache import SetAssociativeCache

#: Score added when a warp re-references a line it lost (the paper's
#: "base locality score" KTHROTTLE analog).
LOST_LOCALITY_SCORE = 64.0
#: Linear decay per monitoring window, as a fraction of the score.
SCORE_DECAY = 0.5
#: Aggregate score that blocks one warp from scheduling.
SCORE_PER_BLOCKED_WARP = 192.0
#: Never block below this many schedulable warps per SM.
MIN_ACTIVE_WARPS = 8


class CCWSExtension(SMExtension):
    """CCWS attached to one SM."""

    def __init__(self, config: Optional[LinebackerConfig] = None) -> None:
        self.config = config or LinebackerConfig()
        self.scores: dict[int, float] = defaultdict(float)
        self._window_end = 0
        self.lost_locality_events = 0
        self.max_blocked = 0
        self._blocked: set[int] = set()

    def attach(self, sm) -> None:
        super().attach(sm)
        # VTA: same sets as L1, half the ways, tag-only.
        self.vta = SetAssociativeCache(
            sm.l1.num_sets * (sm.l1.assoc // 2) * sm.l1.line_bytes,
            max(1, sm.l1.assoc // 2),
            sm.l1.line_bytes,
        )
        self._window_end = self.config.window_cycles

    # -- lost-locality detection -------------------------------------------
    def on_l1_eviction(self, line_addr, line, cycle) -> None:
        self.vta.fill(line_addr, token=line.owner)

    def on_load_outcome(self, pc, hpc, line_addr, hit, cycle, warp=None) -> None:
        if hit or warp is None:
            return
        tag = self.vta.probe(line_addr)
        if tag is not None and tag.token == warp.warp_id:
            self.scores[warp.warp_id] += LOST_LOCALITY_SCORE
            self.lost_locality_events += 1
            self.vta.invalidate(line_addr)

    # -- windowed throttling -------------------------------------------------
    def on_tick(self, cycle: int) -> None:
        while cycle >= self._window_end:
            self._close_window(cycle)
            self._window_end += self.config.window_cycles

    def _close_window(self, cycle: int) -> None:
        total = sum(self.scores.values())
        resident = [w for cta in self.sm.ctas.values() for w in cta.warps
                    if not w.finished]
        max_blockable = max(0, len(resident) - MIN_ACTIVE_WARPS)
        n_block = min(max_blockable, int(total / SCORE_PER_BLOCKED_WARP))
        self.max_blocked = max(self.max_blocked, n_block)

        # Block the lowest-scoring warps: the ones that lost locality
        # keep running with more cache to themselves.
        by_score = sorted(resident, key=lambda w: self.scores[w.warp_id])
        to_block = {w.warp_id for w in by_score[:n_block]}
        for warp in resident:
            if warp.warp_id in to_block and warp.warp_id not in self._blocked:
                warp.deactivate()
            elif warp.warp_id not in to_block and warp.warp_id in self._blocked:
                warp.reactivate(cycle)
        self._blocked = to_block

        for warp_id in list(self.scores):
            self.scores[warp_id] *= 1.0 - SCORE_DECAY
            if self.scores[warp_id] < 1.0:
                del self.scores[warp_id]

    def on_cta_finished(self, slot: int, cycle: int) -> None:
        # Warps of the finished CTA disappear; drop their state.
        live = {
            w.warp_id for cta in self.sm.ctas.values() for w in cta.warps
        }
        self._blocked &= live

    def finalize(self, cycle: int) -> None:
        # Release any warps still blocked so nothing dangles.
        for cta in self.sm.ctas.values():
            for warp in cta.warps:
                if warp.warp_id in self._blocked:
                    warp.reactivate(cycle)
        self._blocked.clear()


@dataclass(frozen=True)
class CCWSFactory:
    """Picklable ExtensionFactory (constructible from a JobSpec)."""

    config: Optional[LinebackerConfig] = None

    def __call__(self) -> CCWSExtension:
        return CCWSExtension(self.config)


def ccws_factory(config: Optional[LinebackerConfig] = None) -> CCWSFactory:
    return CCWSFactory(config)


def run_ccws(
    config: SimulationConfig, kernel: KernelTrace, keep_objects: bool = False
) -> SimulationResult:
    """Run a kernel under CCWS warp throttling."""
    return run_kernel(
        config,
        kernel,
        extension_factory=ccws_factory(config.linebacker),
        keep_objects=keep_objects,
    )
