"""CERF: Cache-Emulated Register File (Jing et al., MICRO 2016).

CERF unifies the register file and the L1 data cache into one on-chip
local memory (304 KB in the paper's comparison: 256 KB RF + 48 KB L1)
and lets rarely-reused register file space hold cache lines.

Our model captures the three behaviours the paper's evaluation leans
on when comparing against Linebacker:

* CERF caches *every* evicted line (no per-load selectivity), so
  streaming data pollutes the register-file cache space — the reason
  Linebacker wins on BI/BC/BG/BR (Sections 5.2-5.3).
* CERF can use not only statically unused registers but also the
  rarely-accessed tail of each CTA's live register allocation — a
  bigger pool than selective victim caching over SUR alone, which is
  why CERF beats PCAL.
* Because cached lines share banks with live warp operands, CERF
  suffers noticeably more register-file bank conflicts (Figure 16);
  the extra conflicts emerge from the larger volume of register-file
  cache writes and an extra contention probe per cached-line access
  into the operand bank range.

CERF does no CTA throttling and no register backup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.config import LinebackerConfig, SimulationConfig
from repro.core.linebacker import LinebackerExtension
from repro.core.load_monitor import MonitorState
from repro.gpu.gpu import SimulationResult, run_kernel
from repro.gpu.trace import KernelTrace

#: Fraction of each CTA's live register allocation that CERF treats as
#: rarely accessed and therefore usable as cache space.
RARELY_USED_FRACTION = 0.25


class CERFExtension(LinebackerExtension):
    """CERF as an SM extension: unselective register-file caching."""

    def __init__(self, config: Optional[LinebackerConfig] = None) -> None:
        base = config or LinebackerConfig()
        cerf_config = replace(
            base,
            enable_victim_cache=True,
            enable_selective=False,
            enable_throttling=False,
        )
        super().__init__(config=cerf_config)

    def attach(self, sm) -> None:
        super().attach(sm)
        # CERF has no monitoring phase: caching in register space is
        # active from the first cycle over whatever space is usable.
        self.load_monitor.state = MonitorState.SELECTED
        self.load_monitor.selected_hpcs = frozenset(range(self.config.lm_entries))
        self._sync_partitions()

    def _sync_partitions(self) -> None:
        """Partitions may cover free registers *or* the rarely-used
        tail of a CTA allocation (the unified-memory property)."""
        rf = self.sm.register_file
        regs_per_cta = max(1, self.sm.kernel.warp_registers_per_cta)
        live_prefix = int(regs_per_cta * (1.0 - RARELY_USED_FRACTION))
        bases = {
            cta.slot: cta.register_range.start
            for cta in self.sm.ctas.values()
            if cta.register_range is not None
        }

        def usable(rn: int) -> bool:
            owner = rf.owner_of(rn)
            if owner is None:
                return True
            base = bases.get(owner)
            if base is None:
                return False
            return (rn - base) >= live_prefix

        self.vtt.sync_with_free_registers(usable)

    def lookup_victim(self, line_addr: int, hpc: int, cycle: int) -> Optional[int]:
        hit = self.vtt.lookup(line_addr)
        if hit is None:
            return None
        register_number, search_latency = hit
        value = self.sm.register_file.read(register_number, cycle)
        if value != line_addr:
            # The register was reclaimed by live operand data (the
            # unified design races cache lines against registers);
            # treat as a miss and drop the stale tag.
            self.vtt.invalidate(line_addr)
            return None
        self.stats.victim_hits += 1
        # Extra contention probe: a cached-line access in the unified
        # space collides with operand traffic in the same banks.
        self.sm.register_file.account_operand_traffic(1, register_number, cycle)
        arbitration = 2
        return self.sm.config.l1_hit_latency + search_latency + arbitration

    def on_l1_eviction(self, line_addr: int, line, cycle: int) -> None:
        register_number = self.vtt.insert(line_addr)
        if register_number is None:
            return
        rf = self.sm.register_file
        rf.write(register_number, line_addr, cycle)
        # Unified-space contention: the line write also arbitrates
        # against operand reads of the owning CTA's bank group.
        rf.account_operand_traffic(1, register_number + 1, cycle)
        self.stats.victim_inserts += 1


@dataclass(frozen=True)
class CERFFactory:
    """Picklable ExtensionFactory (constructible from a JobSpec)."""

    config: Optional[LinebackerConfig] = None

    def __call__(self) -> CERFExtension:
        return CERFExtension(self.config)


@dataclass(frozen=True)
class PCALCERFFactory:
    """Figure 15's PCAL+CERF: PCAL's bypass throttler grafted onto a
    CERF register-file cache. A module-level factory (not a closure)
    so the combination is picklable for the parallel runner."""

    config: Optional[LinebackerConfig] = None

    def __call__(self) -> CERFExtension:
        from repro.core.linebacker import BypassThrottler

        base = self.config or LinebackerConfig()
        ext = CERFExtension(base)
        ext.enable_bypass = True
        ext.bypass = BypassThrottler(base.ipc_upper_bound, base.ipc_lower_bound)
        return ext


def cerf_factory(config: Optional[LinebackerConfig] = None) -> CERFFactory:
    return CERFFactory(config)


def run_cerf(
    config: SimulationConfig, kernel: KernelTrace, keep_objects: bool = False
) -> SimulationResult:
    """Run a kernel under CERF."""
    return run_kernel(
        config,
        kernel,
        extension_factory=cerf_factory(config.linebacker),
        keep_objects=keep_objects,
    )
