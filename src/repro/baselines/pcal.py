"""PCAL: Priority-based Cache ALlocation (Li et al., HPCA 2015).

PCAL couples warp throttling with cache bypassing: only a subset of
warps ("token holders") may allocate lines in the L1; the rest bypass
it, fetching straight from L2/DRAM without polluting the cache. The
token count is tuned at runtime by monitoring performance variation
across time windows.

We reuse Linebacker's :class:`~repro.core.linebacker.BypassThrottler`
(the same fractional-IPC feedback loop the paper applies) as the
token-tuning policy, with the victim cache disabled — this is the
"combination of dynamic warp throttling and cache bypassing" the paper
evaluates in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.config import LinebackerConfig, SimulationConfig
from repro.core.linebacker import LinebackerExtension
from repro.gpu.gpu import SimulationResult, run_kernel
from repro.gpu.trace import KernelTrace


class PCALExtension(LinebackerExtension):
    """PCAL = bypass-token throttling, no victim caching, no CTA
    throttling, no backup/restore."""

    def __init__(self, config: Optional[LinebackerConfig] = None) -> None:
        base = config or LinebackerConfig()
        pcal_config = replace(
            base,
            enable_victim_cache=False,
            enable_selective=False,
            enable_throttling=False,
        )
        super().__init__(config=pcal_config, enable_bypass_throttling=True)


@dataclass(frozen=True)
class PCALFactory:
    """Picklable ExtensionFactory (constructible from a JobSpec)."""

    config: Optional[LinebackerConfig] = None

    def __call__(self) -> PCALExtension:
        return PCALExtension(self.config)


def pcal_factory(config: Optional[LinebackerConfig] = None) -> PCALFactory:
    return PCALFactory(config)


def run_pcal(
    config: SimulationConfig, kernel: KernelTrace, keep_objects: bool = False
) -> SimulationResult:
    """Run a kernel under PCAL."""
    return run_kernel(
        config,
        kernel,
        extension_factory=pcal_factory(config.linebacker),
        keep_objects=keep_objects,
    )
