"""Static Warp Limiting (SWL) and the Best-SWL oracle.

The paper's main comparison point is Best-SWL (Section 2.4): for each
application, an oracle picks the static CTA limit that maximizes
performance; this idealized static throttling was shown to beat
dynamic schemes like CCWS. We reproduce it as a sweep over concurrent
CTA limits per SM, memoized per (kernel, config) within a process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SimulationConfig
from repro.gpu.gpu import SimulationResult, run_kernel
from repro.options import RunOptions
from repro.gpu.sm import SM
from repro.gpu.trace import KernelTrace

_best_swl_cache: dict[tuple, "BestSWLResult"] = {}


@dataclass
class BestSWLResult:
    """Outcome of the Best-SWL oracle sweep."""

    best_limit: int
    best_result: SimulationResult
    sweep_ipc: dict[int, float]

    @property
    def ipc(self) -> float:
        return self.best_result.ipc


def run_swl(
    config: SimulationConfig,
    kernel: KernelTrace,
    cta_limit: int,
    keep_objects: bool = False,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Run with a static per-SM concurrent-CTA limit."""
    if cta_limit < 1:
        raise ValueError("CTA limit must be at least 1")
    return run_kernel(
        config, kernel,
        options=RunOptions(
            max_concurrent_ctas=cta_limit,
            keep_objects=keep_objects,
            backend=backend,
        ),
    )


def sweep_limits(max_occupancy: int) -> list[int]:
    """Candidate static limits: dense at the low end where throttling
    matters, sparse above."""
    candidates = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, max_occupancy}
    return sorted(c for c in candidates if 1 <= c <= max_occupancy)


def best_swl(
    config: SimulationConfig,
    kernel: KernelTrace,
    cache_key: Optional[tuple] = None,
    backend: Optional[str] = None,
) -> BestSWLResult:
    """The Best-SWL oracle: try every candidate limit, keep the best.

    ``cache_key`` (when given) memoizes the sweep — the oracle is by
    far the most expensive baseline, and several experiments normalize
    against it.
    """
    if cache_key is not None:
        # Different engines must never alias in the sweep memo, same
        # rule as the persistent result cache.
        cache_key = cache_key + (backend,)
        if cache_key in _best_swl_cache:
            return _best_swl_cache[cache_key]

    max_occ = SM.hardware_occupancy(config.gpu, kernel)
    sweep: dict[int, float] = {}
    best_limit = max_occ
    best_result: Optional[SimulationResult] = None
    for limit in sweep_limits(max_occ):
        result = run_swl(config, kernel, limit, backend=backend)
        sweep[limit] = result.ipc
        if best_result is None or result.ipc > best_result.ipc:
            best_result = result
            best_limit = limit
    assert best_result is not None
    outcome = BestSWLResult(best_limit=best_limit, best_result=best_result, sweep_ipc=sweep)
    if cache_key is not None:
        _best_swl_cache[cache_key] = outcome
    return outcome


def clear_cache() -> None:
    _best_swl_cache.clear()
