"""Simulator throughput benchmarking.

This package measures how fast the *simulator itself* runs — host
instructions-per-second and cycles-per-second over the paper's 20-app
workload suite — as opposed to ``benchmarks/``, which reproduces the
paper's figures. The harness always runs cold (straight through
:func:`repro.gpu.gpu.run_kernel`, never the persistent result cache)
so the numbers reflect the cycle engine, not memoization.
"""

from repro.bench.sim_throughput import (
    AppThroughput,
    BenchReport,
    SimThroughput,
    append_history,
    compare_reports,
    latest_entry,
    load_history,
    load_report,
    write_report,
)

__all__ = [
    "AppThroughput",
    "BenchReport",
    "SimThroughput",
    "append_history",
    "compare_reports",
    "latest_entry",
    "load_history",
    "load_report",
    "write_report",
]
