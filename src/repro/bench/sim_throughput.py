"""Cold-run simulator throughput harness.

Runs each suite application through :func:`repro.gpu.gpu.run_kernel`
with a stopwatch around the call and reports simulated instructions
per host-CPU second and simulated cycles per host-CPU second, plus the
geometric means across apps. CPU time (``time.process_time``) is the
primary metric — it is far less sensitive to background load than wall
clock — and each app takes the *minimum* over ``reps`` repetitions,
since contention only ever slows a run down.

The report is JSON-serializable; ``BENCH_sim.json`` at the repo root
is the committed reference produced by ``python -m repro bench``. The
file is an **append-only history** (``{"history": [entry, ...]}``):
every recorded run appends one entry tagged with its backend, scale,
SM count and commit, so throughput trends stay plottable across the
project's life. The regression gate compares against the *newest*
entry for the same backend. CI re-runs the harness at a reduced scale
and fails when an app's throughput regresses more than the tolerance
against that reference.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import time
from dataclasses import asdict, dataclass, field

from typing import Optional

from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.options import RunOptions
from repro.workloads import ALL_APPS
from repro.workloads.suite import kernel_for

#: Schema version of one report entry, bumped on incompatible changes.
#: v2: entries carry ``backend``/``window_cycles``/``recorded``/
#: ``commit`` and live inside an append-only ``{"history": [...]}``
#: envelope.
REPORT_VERSION = 2


@dataclass
class AppThroughput:
    """Throughput of one application's cold simulation."""

    app: str
    instructions: int
    cycles: int
    cpu_seconds: float
    wall_seconds: float
    reps: int

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.cpu_seconds if self.cpu_seconds else 0.0

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.cpu_seconds if self.cpu_seconds else 0.0

    def to_json(self) -> dict:
        d = asdict(self)
        d["instructions_per_second"] = round(self.instructions_per_second, 1)
        d["cycles_per_second"] = round(self.cycles_per_second, 1)
        return d


@dataclass
class BenchReport:
    """One harness invocation over a set of apps."""

    scale: float
    num_sms: int
    reps: int
    apps: list[AppThroughput] = field(default_factory=list)
    python: str = ""
    platform: str = ""
    backend: str = "object"
    window_cycles: int = 2_000

    @property
    def geomean_instructions_per_second(self) -> float:
        return _geomean([a.instructions_per_second for a in self.apps])

    @property
    def geomean_cycles_per_second(self) -> float:
        return _geomean([a.cycles_per_second for a in self.apps])

    @property
    def total_cpu_seconds(self) -> float:
        return sum(a.cpu_seconds for a in self.apps)

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "backend": self.backend,
            "scale": self.scale,
            "num_sms": self.num_sms,
            "window_cycles": self.window_cycles,
            "reps": self.reps,
            "python": self.python,
            "platform": self.platform,
            "geomean_instructions_per_second": round(
                self.geomean_instructions_per_second, 1
            ),
            "geomean_cycles_per_second": round(self.geomean_cycles_per_second, 1),
            "total_cpu_seconds": round(self.total_cpu_seconds, 3),
            "apps": [a.to_json() for a in self.apps],
        }


def _geomean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


class SimThroughput:
    """Cold-run throughput harness over the workload suite.

    Every measured run constructs the kernel trace fresh and goes
    straight through ``run_kernel`` (which never consults the
    persistent result cache), so repeated invocations measure the
    cycle engine, not memoization. The generational GC is collected
    before each timed run so one app's garbage is not charged to the
    next.
    """

    def __init__(
        self,
        apps: tuple[str, ...] = ALL_APPS,
        scale: float = 0.25,
        num_sms: int = 2,
        reps: int = 1,
        backend: Optional[str] = None,
        window_cycles: int = 2_000,
    ) -> None:
        if reps < 1:
            raise ValueError("reps must be at least 1")
        unknown = set(apps) - set(ALL_APPS)
        if unknown:
            raise ValueError(f"unknown apps: {sorted(unknown)}")
        if backend is not None:
            from repro.engine import backend_names

            if backend not in backend_names():
                raise ValueError(
                    f"unknown backend {backend!r}; known: "
                    f"{', '.join(backend_names())}"
                )
        self.apps = tuple(apps)
        self.scale = scale
        self.num_sms = num_sms
        self.reps = reps
        self.backend = backend
        self.window_cycles = window_cycles

    def run_app(self, app: str) -> AppThroughput:
        config = scaled_config(
            num_sms=self.num_sms, window_cycles=self.window_cycles
        )
        best_cpu = best_wall = float("inf")
        instructions = cycles = 0
        for _ in range(self.reps):
            kernel = kernel_for(app, self.scale)
            gc.collect()
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            result = run_kernel(
                config, kernel, options=RunOptions(backend=self.backend)
            )
            cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
            instructions = result.instructions
            cycles = result.cycles
            if cpu < best_cpu:
                best_cpu = cpu
            if wall < best_wall:
                best_wall = wall
        return AppThroughput(
            app=app,
            instructions=instructions,
            cycles=cycles,
            cpu_seconds=best_cpu,
            wall_seconds=best_wall,
            reps=self.reps,
        )

    def run(self, progress=None) -> BenchReport:
        """Benchmark every app; ``progress(app, result)`` is called
        after each app completes (used by the CLI for live output)."""
        report = BenchReport(
            scale=self.scale,
            num_sms=self.num_sms,
            reps=self.reps,
            python=platform.python_version(),
            platform=platform.platform(),
            backend=self.backend or "object",
            window_cycles=self.window_cycles,
        )
        for app in self.apps:
            result = self.run_app(app)
            report.apps.append(result)
            if progress is not None:
                progress(app, result)
        return report


# -- persistence and regression gating --------------------------------
def write_report(report: BenchReport, path: str) -> None:
    """Write one standalone report document (a CI artifact)."""
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _current_commit() -> str:
    """Best-effort short commit hash for history provenance."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def load_history(path: str) -> list[dict]:
    """The entry list of a history file, oldest first.

    Accepts both the ``{"history": [...]}`` envelope and the legacy
    v1 single-report document (treated as a one-entry history), so a
    gate pointed at an old committed reference keeps working.
    """
    doc = load_report(path)
    if isinstance(doc, dict) and isinstance(doc.get("history"), list):
        return doc["history"]
    return [doc]


def latest_entry(history: list[dict], backend: Optional[str] = None) -> Optional[dict]:
    """The newest entry, optionally restricted to one backend.

    Entries predating the ``backend`` field (v1) were all produced by
    the object engine and match ``backend="object"``.
    """
    for entry in reversed(history):
        if backend is None or entry.get("backend", "object") == backend:
            return entry
    return None


def append_history(report: BenchReport, path: str) -> dict:
    """Append ``report`` to the history file at ``path`` (append-only:
    existing entries are never rewritten). Returns the new entry."""
    import os

    history = load_history(path) if os.path.exists(path) else []
    entry = report.to_json()
    entry["recorded"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    commit = _current_commit()
    if commit:
        entry["commit"] = commit
    history.append(entry)
    with open(path, "w") as fh:
        json.dump({"history": history}, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return entry


def compare_reports(
    current: BenchReport,
    baseline: dict,
    tolerance: float = 0.30,
    geomean_tolerance: "float | None" = None,
) -> list[str]:
    """Regressions of ``current`` against a saved ``baseline`` report.

    Returns one message per app whose instructions-per-second dropped
    by more than ``tolerance`` (fractional), comparing only apps
    present in both reports. Absolute throughput depends on the host,
    so the tolerance must absorb machine-to-machine variance as well
    as noise; 30% is the CI gate from the issue.

    ``geomean_tolerance``, when given, additionally gates the suite
    geomean instructions-per-second — a much tighter aggregate check
    (per-app noise averages out across the suite), used to hold the
    engine's overhead budget (e.g. 2% for timeseries-off recording).
    """
    base_by_app = {a["app"]: a for a in baseline.get("apps", [])}
    problems = []
    for result in current.apps:
        base = base_by_app.get(result.app)
        if base is None:
            continue
        base_ips = base.get("instructions_per_second", 0.0)
        if base_ips <= 0:
            continue
        ratio = result.instructions_per_second / base_ips
        if ratio < 1.0 - tolerance:
            problems.append(
                f"{result.app}: {result.instructions_per_second:,.0f} instr/s "
                f"vs baseline {base_ips:,.0f} ({ratio:.2f}x, "
                f"tolerance {1.0 - tolerance:.2f}x)"
            )
    if geomean_tolerance is not None:
        base_gm = baseline.get("geomean_instructions_per_second", 0.0)
        if base_gm > 0:
            gm = current.geomean_instructions_per_second
            gm_ratio = gm / base_gm
            if gm_ratio < 1.0 - geomean_tolerance:
                problems.append(
                    f"geomean: {gm:,.0f} instr/s vs baseline {base_gm:,.0f} "
                    f"({gm_ratio:.3f}x, tolerance "
                    f"{1.0 - geomean_tolerance:.3f}x)"
                )
    return problems
