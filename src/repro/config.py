"""Simulation configuration for the Linebacker reproduction.

Two dataclasses mirror the paper's configuration tables:

* :class:`GPUConfig` reproduces Table 1 (the baseline GPU: 16 SMs at
  1126 MHz, 64 warps / 32 CTAs / 2048 threads per SM, a 256 KB register
  file, a 48 KB 8-way L1 with 128-byte lines and 64 MSHRs, a 2 MB shared
  L2 and 352.5 GB/s of DRAM bandwidth).
* :class:`LinebackerConfig` reproduces Table 3 (the Linebacker
  microarchitecture: 50 000-cycle monitoring windows, a 20% cache-hit
  threshold, +/-10% IPC variation bounds, 4-way VTT partitions with up
  to 8 partitions and a 3-cycle partition access latency).

Because a pure-Python simulator is several orders of magnitude slower
than GPGPU-Sim, :func:`scaled_config` provides a proportionally scaled
configuration (fewer SMs, shorter windows) that preserves the ratios
the mechanisms depend on: windows per kernel, working set to cache
size, and victim-space to L1 size.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field, replace

#: Bytes in one cache line and in one warp register (32 threads x 4 B).
LINE_SIZE = 128

#: Bytes in one warp-wide register; equal to LINE_SIZE by design (the
#: equality is what lets a victim line live in a single warp register).
WARP_REGISTER_BYTES = 128

KB = 1024


@dataclass(frozen=True)
class GPUConfig:
    """Baseline GPU configuration (paper Table 1)."""

    num_sms: int = 16
    clock_mhz: float = 1126.0
    simd_width: int = 32
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    max_ctas_per_sm: int = 32
    num_schedulers: int = 4
    register_file_bytes: int = 256 * KB
    register_banks: int = 16
    register_bank_ports: int = 1
    shared_memory_bytes: int = 96 * KB

    # L1 data cache.
    l1_size_bytes: int = 48 * KB
    l1_assoc: int = 8
    l1_line_bytes: int = LINE_SIZE
    l1_mshrs: int = 64
    l1_hit_latency: int = 28

    # Shared L2. The port bandwidth (in 128 B lines per core cycle)
    # bounds total L2 throughput; requests queue behind it, which is
    # what makes thrashing expensive (Section 2.2's congestion stalls).
    l2_size_bytes: int = 2048 * KB
    l2_assoc: int = 8
    l2_latency: int = 200
    l2_lines_per_cycle: float = 4.9

    # Off-chip DRAM: 352.5 GB/s at 1126 MHz. "simple" folds Table 1's
    # timing row into latency + bandwidth; "timing" models banks and
    # row buffers with the RCD/RP/RC/RRD/CL/WR/RAS parameters.
    dram_bandwidth_gbps: float = 352.5
    dram_latency: int = 220
    dram_model: str = "simple"
    dram_channels: int = 8
    dram_banks_per_channel: int = 16

    # SM-to-L2 interconnect (off by default; the L2 port server is the
    # primary congestion signal — the NoC adds per-SM injection limits).
    noc_enable: bool = False
    noc_latency: int = 12
    noc_injection_interval: float = 1.0
    noc_crossbar_lines_per_cycle: float = 8.0

    # Execution-model latencies (cycle-approximate).
    alu_latency: int = 4
    issue_width: int = 1
    #: Outstanding load lines per warp before it blocks (scoreboarded
    #: loads: the value is consumed some instructions later).
    max_outstanding_loads: int = 4

    @property
    def l1_num_sets(self) -> int:
        return self.l1_size_bytes // (self.l1_assoc * self.l1_line_bytes)

    @property
    def l2_num_sets(self) -> int:
        return self.l2_size_bytes // (self.l2_assoc * self.l1_line_bytes)

    @property
    def num_warp_registers(self) -> int:
        """Total warp-wide registers in the register file (2048 at 256 KB)."""
        return self.register_file_bytes // WARP_REGISTER_BYTES

    @property
    def dram_lines_per_cycle(self) -> float:
        """DRAM bandwidth expressed in 128 B lines per core cycle."""
        bytes_per_cycle = (self.dram_bandwidth_gbps * 1e9) / (self.clock_mhz * 1e6)
        return bytes_per_cycle / self.l1_line_bytes

    def with_l1_size(self, size_bytes: int) -> "GPUConfig":
        """Return a copy with a different L1 size (paper Figure 14 sweep)."""
        return replace(self, l1_size_bytes=size_bytes)


@dataclass(frozen=True)
class LinebackerConfig:
    """Linebacker microarchitecture configuration (paper Table 3)."""

    window_cycles: int = 50_000
    hit_ratio_threshold: float = 0.20
    ipc_upper_bound: float = 0.10
    ipc_lower_bound: float = -0.10
    vtt_ways: int = 4
    max_vtt_partitions: int = 8
    vp_access_latency: int = 3
    vp_granularity_bytes: int = 24 * KB
    #: First register number usable as victim storage (paper Eq. 2 uses
    #: Offset=511 but states RN 512-2047; we use 512 and note the
    #: off-by-one in DESIGN.md).
    register_offset: int = 512
    lm_entries: int = 32
    hpc_bits: int = 5
    backup_buffer_entries: int = 6
    #: Minimum accesses within a window before a load is classified at
    #: all (avoids classifying loads seen once or twice).
    min_accesses: int = 8

    # Feature flags for the paper's Figure 11 ablation.
    enable_throttling: bool = True
    enable_selective: bool = True
    enable_victim_cache: bool = True

    @property
    def lines_per_partition(self) -> int:
        return self.vp_granularity_bytes // LINE_SIZE

    def with_ways(self, ways: int) -> "LinebackerConfig":
        """Return a copy with a different VTT partition associativity.

        The partition granularity scales with associativity so that a
        1-way partition needs only 6 KB of idle register space while a
        16-way partition needs 96 KB, matching the paper's Figure 10
        utilization trade-off.
        """
        scale = ways / self.vtt_ways
        return replace(
            self,
            vtt_ways=ways,
            vp_granularity_bytes=int(self.vp_granularity_bytes * scale),
            max_vtt_partitions=max(1, int(self.max_vtt_partitions / scale)),
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level knobs for one simulation run."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    linebacker: LinebackerConfig = field(default_factory=LinebackerConfig)
    max_cycles: int = 2_000_000
    seed: int = 2019


def canonical_tokens(obj) -> str:
    """Deterministic, content-based encoding of configuration values.

    Unlike ``hash()`` or ``id()``, the encoding depends only on *values*
    (dataclass fields, dict items sorted by key, float ``repr``), never
    on object identity or interpreter state, so it is stable across
    processes and interpreter restarts. This is the foundation of the
    experiment runner's persistent cache keys: two configs that compare
    equal always encode identically, and any field change — however
    deep — changes the encoding.

    Supported values: frozen/plain dataclasses, mappings, sequences,
    sets, enums, primitives, and ``None``. Anything else raises
    ``TypeError`` so unhashable state can never silently alias.
    """
    if obj is None:
        return "none"
    if isinstance(obj, bool):
        return f"b:{obj}"
    if isinstance(obj, int):
        return f"i:{obj}"
    if isinstance(obj, float):
        return f"f:{obj!r}"
    if isinstance(obj, str):
        return f"s:{len(obj)}:{obj}"
    if isinstance(obj, bytes):
        return f"y:{obj.hex()}"
    if isinstance(obj, enum.Enum):
        return f"e:{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical_tokens(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"dc:{type(obj).__name__}({fields})"
    if isinstance(obj, dict):
        items = ",".join(
            f"{canonical_tokens(k)}:{canonical_tokens(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: canonical_tokens(kv[0]))
        )
        return f"d{{{items}}}"
    if isinstance(obj, (list, tuple)):
        items = ",".join(canonical_tokens(v) for v in obj)
        return f"l[{items}]"
    if isinstance(obj, (set, frozenset)):
        items = ",".join(sorted(canonical_tokens(v) for v in obj))
        return f"S{{{items}}}"
    raise TypeError(
        f"cannot canonically encode {type(obj).__name__!r} for content hashing"
    )


def stable_hash(*objs) -> str:
    """SHA-256 content hash over :func:`canonical_tokens` encodings.

    Stable across processes (unlike ``PYTHONHASHSEED``-dependent
    ``hash()``) and across garbage collection (unlike ``id()``-based
    keys, which can alias when an old config is collected and a new one
    reuses its address)."""
    digest = hashlib.sha256()
    for obj in objs:
        digest.update(canonical_tokens(obj).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def paper_config() -> SimulationConfig:
    """The full-size configuration from Tables 1 and 3."""
    return SimulationConfig()


def scaled_config(
    num_sms: int = 4,
    window_cycles: int = 2_000,
    l1_size_bytes: int = 48 * KB,
) -> SimulationConfig:
    """A proportionally scaled configuration for tractable Python runs.

    The scale factor applies to the number of SMs, the monitoring
    window, and the *shared* resources (L2 capacity, DRAM bandwidth),
    which scale with the SM count so per-SM pressure on them matches
    the paper's 16-SM machine. Per-SM structures (L1, register file,
    scheduler count) stay at paper size so the mechanisms see the same
    per-SM behaviour.
    """
    base = GPUConfig()
    share = num_sms / base.num_sms
    gpu = replace(
        base,
        num_sms=num_sms,
        l1_size_bytes=l1_size_bytes,
        l2_size_bytes=max(64 * KB, int(base.l2_size_bytes * share)),
        l2_lines_per_cycle=base.l2_lines_per_cycle * share,
        dram_bandwidth_gbps=base.dram_bandwidth_gbps * share,
    )
    lb = replace(LinebackerConfig(), window_cycles=window_cycles)
    return SimulationConfig(gpu=gpu, linebacker=lb, max_cycles=400_000)
