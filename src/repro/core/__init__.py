"""Linebacker: the paper's primary contribution.

Load Monitor, Victim Tag Table, CTA Throttling Logic, register
backup/restore engine, and the SM extension orchestrating them.
"""

from repro.core.backup import BackupRecord, RegisterBackupEngine
from repro.core.cta_throttle import (
    CTAManager,
    CTAThrottleController,
    IPCMonitor,
    PerCTAInfo,
    ThrottleDecision,
)
from repro.core.linebacker import (
    BypassThrottler,
    LinebackerExtension,
    LinebackerStats,
    linebacker_factory,
)
from repro.core.load_monitor import LMEntry, LoadMonitor, MonitorState
from repro.core.victim_tag_table import VictimTagTable, VTTEntry, VTTPartition

__all__ = [
    "BackupRecord",
    "BypassThrottler",
    "CTAManager",
    "CTAThrottleController",
    "IPCMonitor",
    "LMEntry",
    "LinebackerExtension",
    "LinebackerStats",
    "LoadMonitor",
    "MonitorState",
    "PerCTAInfo",
    "RegisterBackupEngine",
    "ThrottleDecision",
    "VTTEntry",
    "VTTPartition",
    "VictimTagTable",
    "linebacker_factory",
]
