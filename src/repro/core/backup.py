"""Register backup/restore engine with the 6-entry staging buffer.

When the CTA Throttling Logic deactivates a CTA, every warp register of
that CTA must be written to a dedicated off-chip backup region before
the register file space may be reused as victim-cache storage (the C
bit in the Per-CTA Info table turns true only when the last write
completes). Restores run the reverse path with high priority.

The paper uses a 6-entry buffer (each entry: 32-bit address + 128-byte
line) so register reads and DRAM writes overlap; we model the buffer's
effect as pipelined draining at DRAM bandwidth and account the traffic
(the "Linebacker overhead" series of Figure 17).

Register *values* round-trip through a backup store keyed by backup
address, so tests can prove a restored CTA observes exactly the tokens
it backed up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import WARP_REGISTER_BYTES
from repro.gpu.register_file import RegisterFile
from repro.memory.subsystem import MemorySubsystem


@dataclass
class BackupRecord:
    """What was saved for one throttled CTA."""

    backup_address: int
    first_register: int
    values: list[Optional[int]]
    complete: bool = False  # the C bit


@dataclass
class BackupStats:
    backups: int = 0
    restores: int = 0
    lines_written: int = 0
    lines_read: int = 0


class RegisterBackupEngine:
    """Backs up and restores CTA register state through DRAM."""

    def __init__(self, memory: MemorySubsystem, buffer_entries: int = 6) -> None:
        self.memory = memory
        self.buffer_entries = buffer_entries
        #: Backup Pointer: next free off-chip backup address. The paper
        #: initializes BP to a constant address and bumps it by
        #: #reg x 128 per backup.
        self.backup_pointer = 0x8000_0000
        self._store: dict[int, BackupRecord] = {}
        self.stats = BackupStats()

    def backup(
        self,
        register_file: RegisterFile,
        registers: range,
        cycle: int,
        on_complete: Callable[[int], None],
        schedule: Callable[[int, Callable[[int], None]], None],
    ) -> BackupRecord:
        """Start backing up ``registers``; ``on_complete(cycle)`` fires
        when the last line reaches memory (the C bit turning true).

        ``schedule(ready_cycle, callback)`` defers the completion into
        the SM's event loop.
        """
        values = [register_file.peek(r) for r in registers]
        record = BackupRecord(
            backup_address=self.backup_pointer,
            first_register=registers.start,
            values=values,
        )
        self._store[record.backup_address] = record
        self.backup_pointer += len(values) * WARP_REGISTER_BYTES

        num_lines = len(values)
        # The 6-entry buffer pipelines register reads with DRAM writes,
        # so total time is dominated by the DRAM bandwidth component.
        ready = self.memory.backup_registers(num_lines, cycle)
        self.stats.backups += 1
        self.stats.lines_written += num_lines

        def _complete(done_cycle: int) -> None:
            record.complete = True
            on_complete(done_cycle)

        schedule(ready, _complete)
        return record

    def restore(
        self,
        record: BackupRecord,
        register_file: RegisterFile,
        registers: range,
        cycle: int,
        on_complete: Callable[[int], None],
        schedule: Callable[[int, Callable[[int], None]], None],
    ) -> None:
        """Restore a backed-up CTA into ``registers``.

        The register writes land when the DRAM reads return; victim
        data occupying those registers is simply overwritten (victim
        lines are never dirty, per the store-handling policy).
        """
        if not record.complete:
            raise RuntimeError("restore before backup completed (C bit false)")
        if len(registers) != len(record.values):
            raise ValueError("restore register range size mismatch")
        num_lines = len(record.values)
        ready = self.memory.restore_registers(num_lines, cycle)
        self.stats.restores += 1
        self.stats.lines_read += num_lines

        def _complete(done_cycle: int) -> None:
            for reg, value in zip(registers, record.values):
                register_file.write(reg, value, cycle=done_cycle)
            self._store.pop(record.backup_address, None)
            record.complete = False
            on_complete(done_cycle)

        schedule(ready, _complete)

    def stored_record(self, backup_address: int) -> Optional[BackupRecord]:
        return self._store.get(backup_address)

    @property
    def outstanding_backups(self) -> int:
        return len(self._store)
