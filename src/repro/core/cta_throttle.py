"""CTA Throttling Logic (CTL): IPC monitor + CTA manager.

The CTL decides, once per monitoring window, whether to throttle one
more CTA, hold, or re-activate a throttled CTA, based on the fractional
IPC variation between consecutive windows:

    IPC_Var(prev, cur) = (IPC_cur - IPC_prev) / IPC_prev        (Eq. 1)

* IPC_Var > +10%  -> throttling is paying off; throttle one more CTA.
* IPC_Var < -10%  -> throttling hurt (DRAM/core underutilization);
                     re-activate one inactive CTA.
* otherwise       -> hold.

The CTA manager mirrors the paper's Figure 8 structures: a Common Info
block (#reg, LRN, Backup Pointer) and a Per-CTA Info table (ACT bit,
First Register Number, Backup Address, backup-complete C bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ThrottleDecision(enum.Enum):
    THROTTLE = "throttle"
    HOLD = "hold"
    REACTIVATE = "reactivate"


@dataclass
class IPCMonitor:
    """The IPC monitor block: previous/current IPC and live counters."""

    previous_ipc: float = 0.0
    current_ipc: float = 0.0
    instructions: int = 0
    start_cycle: int = 0

    def record_window(self, instructions_retired: int, window_cycles: int) -> float:
        """Close a window: compute IPC and return IPC_Var(prev, cur)."""
        self.previous_ipc = self.current_ipc
        self.current_ipc = instructions_retired / max(1, window_cycles)
        if self.previous_ipc <= 0.0:
            return 0.0
        return (self.current_ipc - self.previous_ipc) / self.previous_ipc


@dataclass
class PerCTAInfo:
    """One row of the Per-CTA Info table (Figure 8)."""

    act: bool = True                    # ACT: scheduling status
    frn: Optional[int] = None           # First Register Number
    backup_address: Optional[int] = None  # BA
    backup_complete: bool = False       # C bit


class CTAManager:
    """Tracks per-CTA register/backup bookkeeping."""

    def __init__(self, regs_per_cta: int) -> None:
        self.regs_per_cta = regs_per_cta  # Common Info: #reg
        self.largest_register_number = 0  # Common Info: LRN
        self.table: dict[int, PerCTAInfo] = {}

    def register_launch(self, slot: int, first_register: int) -> None:
        self.table[slot] = PerCTAInfo(act=True, frn=first_register)
        self._refresh_lrn()

    def register_finish(self, slot: int) -> None:
        self.table.pop(slot, None)
        self._refresh_lrn()

    def mark_throttled(self, slot: int, backup_address: int) -> None:
        info = self.table[slot]
        info.act = False
        info.backup_address = backup_address
        info.backup_complete = False

    def mark_backup_complete(self, slot: int) -> None:
        info = self.table[slot]
        info.backup_complete = True
        info.frn = None
        self._refresh_lrn()

    def mark_reactivated(self, slot: int, first_register: int) -> None:
        info = self.table[slot]
        info.act = True
        info.frn = first_register
        info.backup_address = None
        info.backup_complete = False
        self._refresh_lrn()

    def _refresh_lrn(self) -> None:
        """LRN: the largest register number held by an active CTA."""
        lrn = 0
        for info in self.table.values():
            if info.act and info.frn is not None:
                lrn = max(lrn, info.frn + self.regs_per_cta - 1)
        self.largest_register_number = lrn

    # -- queries -------------------------------------------------------------
    def active_slots(self) -> list[int]:
        return [slot for slot, info in self.table.items() if info.act]

    def inactive_slots(self) -> list[int]:
        return [slot for slot, info in self.table.items() if not info.act]

    def restorable_slots(self) -> list[int]:
        return [
            slot
            for slot, info in self.table.items()
            if not info.act and info.backup_complete
        ]

    def throttle_candidate(self) -> Optional[int]:
        """Paper: throttle the active CTA with the largest hardware id."""
        active = self.active_slots()
        return max(active) if active else None


class SearchPhase(enum.Enum):
    SEARCHING = "searching"      # descending one CTA per window
    RECOVERING = "recovering"    # climbing back to the best-known count
    SETTLED = "settled"          # steady state, hysteresis thresholds


class CTAThrottleController:
    """The decision layer combining the IPC monitor and bounds.

    The paper's raw rule ("IPC_Var above +10% -> throttle one more;
    below -10% -> reactivate one") assumes each single-CTA step moves
    IPC by more than the bounds. On finer-grained machines a profitable
    descent of many small steps never clears +10% per step, and a CTA
    *completing* (which re-schedules a throttled CTA outside the
    controller) produces IPC jumps the raw rule misreads as throttle
    success. This controller keeps the paper's window/threshold
    machinery but runs it as a hill-climb with memory:

    * SEARCHING — after monitoring classifies the kernel as cache
      sensitive, throttle one CTA per window while the window IPC stays
      within ``lower_bound`` of the best IPC observed so far (the
      paper's proactive-throttling assumption, applied repeatedly).
    * RECOVERING — IPC fell below the tolerance: reactivate one CTA per
      window until back at the best-known active count.
    * SETTLED — hold; only a drop below the tolerance re-opens
      recovery (a throttled CTA handed back by a completion already
      re-enters through the scheduler, not the controller).
    """

    def __init__(
        self,
        upper_bound: float = 0.10,
        lower_bound: float = -0.10,
        min_active_ctas: int = 1,
    ) -> None:
        if lower_bound >= upper_bound:
            raise ValueError("lower bound must be below upper bound")
        self.upper_bound = upper_bound
        self.lower_bound = lower_bound
        self.min_active_ctas = min_active_ctas
        self.monitor = IPCMonitor()
        self.decisions: list[ThrottleDecision] = []
        self.phase = SearchPhase.SEARCHING
        self.best_ipc = 0.0
        self.best_active = 0
        self._last_judged_ipc: Optional[float] = None

    def decide(
        self,
        instructions_retired: int,
        window_cycles: int,
        active_ctas: int,
        inactive_ctas: int,
        record_only: bool = False,
    ) -> ThrottleDecision:
        """Close a window and decide the next throttling action.

        ``record_only`` windows (a CTA completed, so CTA counts moved
        for reasons unrelated to throttling) update the IPC history but
        never act on it.
        """
        self.monitor.record_window(instructions_retired, window_cycles)
        ipc = self.monitor.current_ipc
        if ipc > self.best_ipc:
            self.best_ipc = ipc
            self.best_active = active_ctas
        decision = ThrottleDecision.HOLD
        if not record_only:
            decision = self._act(ipc, active_ctas, inactive_ctas)
        self.decisions.append(decision)
        return decision

    def _act(self, ipc: float, active_ctas: int, inactive_ctas: int) -> ThrottleDecision:
        tolerated = self.best_ipc * (1.0 + self.lower_bound)
        previous = self._last_judged_ipc
        self._last_judged_ipc = ipc
        if self.phase is SearchPhase.SEARCHING:
            # Descend only while within tolerance of the best IPC AND
            # the last step did not clearly regress — without the
            # progress check a string of small losses bleeds all the
            # way to the -10% bound before recovery kicks in.
            making_progress = previous is None or ipc >= 0.98 * previous
            if ipc >= tolerated and making_progress and active_ctas > self.min_active_ctas:
                return ThrottleDecision.THROTTLE
            self.phase = SearchPhase.RECOVERING
        if self.phase is SearchPhase.RECOVERING:
            if active_ctas < self.best_active and inactive_ctas > 0:
                return ThrottleDecision.REACTIVATE
            self.phase = SearchPhase.SETTLED
            return ThrottleDecision.HOLD
        # SETTLED: re-open recovery only on a sustained drop.
        if ipc < tolerated and active_ctas < self.best_active and inactive_ctas > 0:
            self.phase = SearchPhase.RECOVERING
            return ThrottleDecision.REACTIVATE
        return ThrottleDecision.HOLD
