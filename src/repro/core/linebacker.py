"""The Linebacker SM extension: the paper's primary contribution.

Wires together the Load Monitor (per-load locality classification),
the Victim Tag Table (victim line tracking over idle register space),
the CTA Throttling Logic (IPC-driven throttling with register
backup/restore) and the backup engine, behind the SM extension hooks.

Feature flags reproduce the paper's Figure 11 ablation:

* ``enable_victim_cache=False``              -> plain CTA throttling.
* ``enable_selective=False``                 -> "Victim Caching"
  (preserve every evicted line, streaming data included).
* ``enable_throttling=False``                -> "Selective Victim
  Caching" over statically unused register space only.
* all three enabled                          -> full Linebacker.

An optional PCAL-style bypass throttler supports the paper's
Figure 15 combinations (PCAL+SVC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import WARP_REGISTER_BYTES, LinebackerConfig
from repro.core.backup import BackupRecord, RegisterBackupEngine
from repro.core.cta_throttle import (
    CTAManager,
    CTAThrottleController,
    ThrottleDecision,
)
from repro.core.load_monitor import LoadMonitor, MonitorState
from repro.core.victim_tag_table import VictimTagTable
from repro.gpu.extension import SMExtension
from repro.memory.cache import CacheLine
from repro.metrics import Metric, MetricSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.sm import SM
    from repro.gpu.warp import Warp


class BypassThrottler:
    """PCAL-style token pool: warps beyond the token count bypass L1.

    The token count starts at "everyone allocates" and is tuned by the
    same fractional-IPC feedback loop as CTA throttling: if shrinking
    the allocating set improved IPC by more than the upper bound,
    shrink further; if IPC regressed below the lower bound, grow it.
    """

    def __init__(self, upper_bound: float = 0.10, lower_bound: float = -0.10) -> None:
        self.controller = CTAThrottleController(upper_bound, lower_bound)
        self.tokens: Optional[int] = None
        self._warmup_windows = 2

    def should_bypass(self, warp: "Warp") -> bool:
        if self.tokens is None:
            return False
        return warp.launch_order >= self.tokens

    def on_window(self, instructions: int, window_cycles: int, resident_warps: int) -> None:
        if self._warmup_windows > 0:
            self._warmup_windows -= 1
            self.controller.monitor.record_window(instructions, window_cycles)
            if self._warmup_windows == 0:
                self.tokens = max(1, resident_warps - 2)
            return
        assert self.tokens is not None
        decision = self.controller.decide(
            instructions, window_cycles, active_ctas=self.tokens, inactive_ctas=1
        )
        if decision is ThrottleDecision.THROTTLE:
            self.tokens = max(1, self.tokens - 2)
        elif decision is ThrottleDecision.REACTIVATE:
            self.tokens = min(resident_warps, self.tokens + 2)


#: Per-SM Linebacker mechanism accounting (Figures 9, 10 and 17).
#: None participate in the golden fingerprint — it pins the SM-level
#: victim_hits and the subsystem backup/restore traffic instead.
LINEBACKER_STATS = MetricSet(
    "LinebackerStats",
    owner="core.linebacker",
    metrics=(
        Metric("victim_inserts", description="lines preserved into victim registers"),
        Metric("victim_hits", description="loads served from victim registers"),
        Metric("victim_reads_corrupt", description="victim entries dropped on value mismatch"),
        Metric("throttle_events", description="CTAs throttled by the IPC ladder"),
        Metric("reactivate_events", description="CTAs reactivated by the IPC ladder"),
        Metric("monitoring_windows", description="windows spent in the monitoring phase"),
        Metric("windows_sampled", description="windows with register-space samples"),
        Metric("idle_register_bytes_sum", description="summed idle register bytes"),
        Metric("victim_capacity_bytes_sum", description="summed active VP capacity bytes"),
        Metric("dynamic_unused_bytes_sum", description="summed backed-up register bytes"),
    ),
)

_LinebackerStatsBase = LINEBACKER_STATS.build()


class LinebackerStats(_LinebackerStatsBase):
    """Per-SM Linebacker accounting used by Figures 9, 10 and 17."""

    __slots__ = ()

    @property
    def mean_idle_register_bytes(self) -> float:
        return self.idle_register_bytes_sum / max(1, self.windows_sampled)

    @property
    def mean_victim_capacity_bytes(self) -> float:
        return self.victim_capacity_bytes_sum / max(1, self.windows_sampled)

    @property
    def mean_dynamic_unused_bytes(self) -> float:
        return self.dynamic_unused_bytes_sum / max(1, self.windows_sampled)

    @property
    def register_utilization(self) -> float:
        """Fraction of idle register space covered by active VPs (Fig 10)."""
        if self.idle_register_bytes_sum == 0:
            return 0.0
        return self.victim_capacity_bytes_sum / self.idle_register_bytes_sum


class LinebackerExtension(SMExtension):
    """Linebacker attached to one SM."""

    def __init__(
        self,
        config: Optional[LinebackerConfig] = None,
        enable_bypass_throttling: bool = False,
    ) -> None:
        self.config = config or LinebackerConfig()
        self.enable_bypass = enable_bypass_throttling
        self.bypass = BypassThrottler(
            self.config.ipc_upper_bound, self.config.ipc_lower_bound
        ) if enable_bypass_throttling else None
        self.stats = LinebackerStats()
        self._window_end = 0
        self._last_window_instructions = 0
        self._pending_reactivations = 0
        self._cta_turnover_this_window = False
        self._transition_window = False
        self._last_l1_occupancy = 0
        self._restoring: set[int] = set()
        self._backup_records: dict[int, BackupRecord] = {}
        self._throttle_order: list[int] = []
        self._last_vtt_tag_hit = False

    # ------------------------------------------------------------------
    def attach(self, sm: "SM") -> None:
        super().attach(sm)
        cfg = self.config
        self.load_monitor = LoadMonitor(
            num_entries=cfg.lm_entries,
            hpc_bits=cfg.hpc_bits,
            hit_ratio_threshold=cfg.hit_ratio_threshold,
            min_accesses=cfg.min_accesses,
        )
        self.vtt = VictimTagTable(
            num_sets=sm.l1.num_sets,
            ways=cfg.vtt_ways,
            max_partitions=cfg.max_vtt_partitions,
            register_offset=cfg.register_offset,
            vp_access_latency=cfg.vp_access_latency,
            total_registers=sm.register_file.num_registers,
        )
        self.controller = CTAThrottleController(
            cfg.ipc_upper_bound, cfg.ipc_lower_bound
        )
        self.manager = CTAManager(regs_per_cta=sm.kernel.warp_registers_per_cta)
        self.engine = RegisterBackupEngine(
            sm.memory, buffer_entries=cfg.backup_buffer_entries
        )
        self._window_end = cfg.window_cycles
        # During the monitoring period the VTT only tracks tags (no
        # data), so every partition participates regardless of idle
        # register space.
        if cfg.enable_victim_cache:
            for vp in self.vtt.partitions:
                self.vtt.activate(vp.index)
        # Capability flags for the SM's hot load path: ablation
        # variants with the victim cache disabled skip the
        # lookup_victim/on_store hooks entirely, and only the PCAL
        # combination ever bypasses.
        self.has_victim_cache = cfg.enable_victim_cache
        self.wants_store_events = cfg.enable_victim_cache
        self.may_bypass = self.bypass is not None

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def on_tick(self, cycle: int) -> None:
        while cycle >= self._window_end:
            self._close_window(self._window_end)
            self._window_end += self.config.window_cycles

    def timeseries_sample(self, cycle: int) -> dict:
        """Mechanism state folded into each timeseries window row."""
        return {
            "vps": len(self.vtt.active_partitions()),
            "state": self.load_monitor.state.value,
            "phase": self.controller.phase.value,
            "vp_hits": [vp.hits for vp in self.vtt.partitions],
            "backup_write_lines": self.sm.memory.traffic.backup_write_lines,
            "restore_read_lines": self.sm.memory.traffic.restore_read_lines,
        }

    def _close_window(self, cycle: int) -> None:
        cfg = self.config
        instructions = self.sm.stats.instructions - self._last_window_instructions
        self._last_window_instructions = self.sm.stats.instructions
        self._sample_space()

        if self.bypass is not None:
            resident = sum(len(c.warps) for c in self.sm.ctas.values())
            self.bypass.on_window(instructions, cfg.window_cycles, resident)

        if self.load_monitor.monitoring:
            self.stats.monitoring_windows += 1
            if self._still_warming():
                # Cold caches produce nothing but cold misses; deciding
                # cache-insensitivity from them would be wrong. The
                # paper's 50k-cycle windows absorb warmup; the scaled
                # config must skip warmup windows explicitly.
                self.load_monitor.discard_window()
                return
            state = self.load_monitor.close_window()
            if state is MonitorState.SELECTED:
                self._enter_victim_mode()
                # Paper: Linebacker proactively throttles one CTA
                # immediately after the monitoring period ends. The
                # monitoring window's IPC seeds the search reference.
                self.controller.monitor.record_window(instructions, cfg.window_cycles)
                self.controller.best_ipc = self.controller.monitor.current_ipc
                self.controller.best_active = len(self.manager.active_slots())
                if cfg.enable_throttling:
                    self._throttle_one(cycle)
                    self._transition_window = True
            elif state is MonitorState.DISABLED:
                # Cache-insensitive kernel: turn victim tracking off.
                for vp in self.vtt.partitions:
                    self.vtt.deactivate(vp.index)
            return

        if self.load_monitor.state is MonitorState.SELECTED and cfg.enable_throttling:
            # The first window after a throttle/reactivate is a
            # transition (register backup traffic, warp drain); judging
            # the action on it would read noise as signal.
            record_only = self._cta_turnover_this_window or self._transition_window
            decision = self.controller.decide(
                instructions,
                cfg.window_cycles,
                active_ctas=len(self.manager.active_slots()),
                inactive_ctas=len(self.manager.inactive_slots()),
                record_only=record_only,
            )
            self._cta_turnover_this_window = False
            self._transition_window = False
            if decision is ThrottleDecision.THROTTLE:
                self._throttle_one(cycle)
                self._transition_window = True
            elif decision is ThrottleDecision.REACTIVATE:
                self._reactivate_one(cycle)
                self._transition_window = True

    def _still_warming(self) -> bool:
        """True while the L1 is still filling (bounded to 10 windows).

        Warm means the resident footprint stopped growing — either the
        cache filled or the kernel's working set fit entirely. Cold
        windows are all cold misses and would misclassify every load.
        """
        if self.stats.monitoring_windows > 10:
            return False
        l1 = self.sm.l1
        occupancy = l1.occupancy()
        grew = occupancy - self._last_l1_occupancy
        self._last_l1_occupancy = occupancy
        if occupancy == 0:
            # Nothing has filled yet (first misses still in flight).
            return True
        # Warm once the resident footprint growth is small relative to
        # the footprint itself (steady state), whether that footprint
        # is the full cache or a small working set that fits.
        return grew > 0.1 * occupancy

    def _sample_space(self) -> None:
        self.stats.windows_sampled += 1
        idle = self.sm.register_file.unused_bytes()
        self.stats.idle_register_bytes_sum += idle
        self.stats.victim_capacity_bytes_sum += (
            self.vtt.active_capacity_lines() * WARP_REGISTER_BYTES
            if not self.load_monitor.monitoring
            else 0
        )
        dyn = sum(
            len(rec.values) * WARP_REGISTER_BYTES
            for rec in self._backup_records.values()
            if rec.complete
        )
        self.stats.dynamic_unused_bytes_sum += dyn

    def _enter_victim_mode(self) -> None:
        """Monitoring done: switch the VTT from tag-only tracking to
        real victim caching over genuinely idle registers.

        Every partition is invalidated first — monitoring-phase tags
        have no data behind them, so carrying them over would alias
        stale register contents."""
        for vp in self.vtt.partitions:
            vp.invalidate_all()
        self._sync_partitions()

    def _sync_partitions(self) -> None:
        if not self.config.enable_victim_cache or self.load_monitor.monitoring:
            return
        rf = self.sm.register_file
        self.vtt.sync_with_free_registers(lambda rn: rf.owner_of(rn) is None)

    # ------------------------------------------------------------------
    # Memory-path hooks
    # ------------------------------------------------------------------
    def should_bypass(self, warp: "Warp", line_addr: int, cycle: int) -> bool:
        return self.bypass is not None and self.bypass.should_bypass(warp)

    def lookup_victim(self, line_addr: int, hpc: int, cycle: int) -> Optional[int]:
        if not self.config.enable_victim_cache:
            return None
        self._last_vtt_tag_hit = False
        if self.load_monitor.monitoring:
            # Tag-only phase: a VTT hit counts as a hit for the Load
            # Monitor but the data is not present, so the load still
            # fetches from L2/DRAM. Tags are recorded at L1 eviction.
            if self.vtt.lookup(line_addr) is not None:
                self._last_vtt_tag_hit = True
            return None
        if self.load_monitor.state is not MonitorState.SELECTED:
            return None
        hit = self.vtt.lookup(line_addr)
        if hit is None:
            return None
        register_number, search_latency = hit
        value = self.sm.register_file.read(register_number, cycle)
        if value != line_addr:
            # Never expected: a victim entry must map to the register
            # holding exactly the preserved line. Drop the stale entry.
            self.stats.victim_reads_corrupt += 1
            self.vtt.invalidate(line_addr)
            return None
        self.stats.victim_hits += 1
        # Reg hit latency: L1 tag check happened already; add the
        # sequential VTT search, arbitration and the register read.
        arbitration = 2
        return self.sm.config.l1_hit_latency + search_latency + arbitration

    def on_load_outcome(self, pc, hpc, line_addr, hit, cycle, warp=None) -> None:
        lm_hit = hit or self._last_vtt_tag_hit
        self._last_vtt_tag_hit = False
        self.load_monitor.record_access(pc, lm_hit)

    def on_l1_eviction(self, line_addr: int, line: CacheLine, cycle: int) -> None:
        if not self.config.enable_victim_cache:
            return
        if self.load_monitor.monitoring:
            # Keep only the tag of the evicted line (no data) so the
            # Load Monitor can credit re-accesses to it as hits.
            self.vtt.insert(line_addr)
            return
        if self.load_monitor.state is not MonitorState.SELECTED:
            return
        if self.config.enable_selective and not self.load_monitor.is_selected(line.hpc):
            return
        register_number = self.vtt.insert(line_addr)
        if register_number is None:
            return
        # Register-register move of the evicted line into victim space.
        self.sm.register_file.write(register_number, line_addr, cycle)
        self.stats.victim_inserts += 1

    def on_store(self, line_addr: int, cycle: int) -> None:
        if not self.config.enable_victim_cache:
            return
        register_number = self.vtt.invalidate(line_addr)
        if register_number is not None and not self.load_monitor.monitoring:
            self.sm.register_file.write(register_number, None, cycle)

    # ------------------------------------------------------------------
    # CTA lifecycle
    # ------------------------------------------------------------------
    def on_cta_launched(self, slot: int, cycle: int) -> None:
        cta = self.sm.ctas[slot]
        assert cta.register_range is not None
        self.manager.register_launch(slot, cta.register_range.start)
        self._sync_partitions()

    def on_cta_finished(self, slot: int, cycle: int) -> None:
        self.manager.register_finish(slot)
        # CTA turnover moves IPC for reasons unrelated to throttling;
        # the controller must not credit/blame its last action for it.
        self._cta_turnover_this_window = True

    def try_reactivate_cta(self, cycle: int) -> bool:
        """A CTA finished: re-schedule a throttled CTA in priority."""
        if not self._throttle_order:
            return False
        self._reactivate_one(cycle)
        return True

    # ------------------------------------------------------------------
    # Throttle / reactivate mechanics
    # ------------------------------------------------------------------
    def _throttle_one(self, cycle: int) -> None:
        candidates = [
            slot
            for slot in self.manager.active_slots()
            if slot in self.sm.ctas and slot not in self._restoring
        ]
        if len(candidates) <= 1:
            return
        slot = max(candidates)
        cta = self.sm.ctas[slot]
        if cta.register_range is None:
            return
        cta.deactivate()
        self.stats.throttle_events += 1
        self._throttle_order.append(slot)
        registers = cta.register_range

        def on_backup_done(done_cycle: int) -> None:
            # C bit set: the register space becomes victim storage.
            if slot not in self.manager.table:
                return
            self.manager.mark_backup_complete(slot)
            live = self.sm.ctas.get(slot)
            if live is not None and live.register_range is not None:
                self.sm.register_file.free(live.register_range)
                live.register_range = None
            self._sync_partitions()
            if self._pending_reactivations > 0:
                self._pending_reactivations -= 1
                self._reactivate_one(done_cycle)

        record = self.engine.backup(
            self.sm.register_file,
            registers,
            cycle,
            on_complete=on_backup_done,
            schedule=self._schedule_callback,
        )
        self._backup_records[slot] = record
        self.manager.mark_throttled(slot, record.backup_address)

    def _reactivate_one(self, cycle: int) -> None:
        while self._throttle_order:
            slot = self._throttle_order[-1]
            if slot in self.sm.ctas and slot not in self._restoring:
                break
            self._throttle_order.pop()
        else:
            return
        record = self._backup_records.get(slot)
        if record is None:
            return
        if not record.complete:
            # Backup still in flight; restore as soon as the C bit
            # sets (the slot stays queued in _throttle_order).
            self._pending_reactivations += 1
            return
        self._throttle_order.pop()
        self._restoring.add(slot)
        cta = self.sm.ctas[slot]
        num_regs = len(record.values)
        # Give the partitions back before reallocating registers.
        registers = self.sm.register_file.allocate(num_regs, owner=slot)
        if registers is None:
            # Should not happen: the backed-up space is at least as
            # large as the allocation we need.
            self._restoring.discard(slot)
            self._throttle_order.append(slot)
            return
        self._sync_partitions()

        def on_restore_done(done_cycle: int) -> None:
            self._restoring.discard(slot)
            self._backup_records.pop(slot, None)
            live = self.sm.ctas.get(slot)
            if live is None:
                self.sm.register_file.free(registers)
                self._sync_partitions()
                return
            live.register_range = registers
            for w, warp in enumerate(live.warps):
                warp.base_register = (
                    registers.start + w * self.sm.kernel.warp_registers_per_warp
                )
            live.reactivate(done_cycle)
            self.manager.mark_reactivated(slot, registers.start)
            self.stats.reactivate_events += 1

        self.engine.restore(
            record,
            self.sm.register_file,
            registers,
            cycle,
            on_complete=on_restore_done,
            schedule=self._schedule_callback,
        )

    def _schedule_callback(self, ready_cycle: int, callback) -> None:
        from repro.gpu.sm import EV_CALLBACK

        self.sm.schedule_event(ready_cycle, EV_CALLBACK, callback)

    # ------------------------------------------------------------------
    def finalize(self, cycle: int) -> None:
        if self.stats.windows_sampled == 0:
            self._sample_space()


@dataclass(frozen=True)
class LinebackerFactory:
    """Picklable ExtensionFactory for :func:`repro.gpu.gpu.run_kernel`.

    A frozen dataclass (not a closure) so the parallel experiment
    runner can reconstruct it from a :class:`~repro.runner.JobSpec` in
    a worker process and hash it into stable cache keys.
    """

    config: Optional[LinebackerConfig] = None
    enable_bypass_throttling: bool = False

    def __call__(self) -> LinebackerExtension:
        return LinebackerExtension(
            config=self.config,
            enable_bypass_throttling=self.enable_bypass_throttling,
        )


def linebacker_factory(
    config: Optional[LinebackerConfig] = None,
    enable_bypass_throttling: bool = False,
) -> LinebackerFactory:
    """ExtensionFactory for :func:`repro.gpu.gpu.run_kernel`."""
    return LinebackerFactory(
        config=config, enable_bypass_throttling=enable_bypass_throttling
    )
