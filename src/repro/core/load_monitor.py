"""Load Monitor (LM) — per-static-load locality classification.

The LM is a 32-entry table indexed by a 5-bit hashed PC (HPC). Each
entry stores the full PC of the first load to claim it, hit and miss
counters for the current monitoring window, and a 2-bit valid field.
Hits count accesses that found their line in either the L1 cache or
the Victim Tag Table; misses are the rest.

Classification follows the paper's two-consecutive-window protocol
(Sections 3.2 and 4):

* At the end of each window, entries whose hit ratio exceeds the
  threshold (20%) are marked high-locality; the valid field shifts so
  bit 1 remembers the previous window's verdict and bit 0 holds the
  current one.
* Loads are *selected* only when the non-empty set of high-locality
  loads is identical across two consecutive windows. If the second
  window's set is a proper subset (or otherwise differs), nothing is
  selected and monitoring continues.
* If the first two windows produce no high-locality load at all,
  Linebacker is disabled — the application is deemed cache-insensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpu.isa import hashed_pc


class MonitorState(enum.Enum):
    MONITORING = "monitoring"
    SELECTED = "selected"    # high-locality loads chosen; LM frozen
    DISABLED = "disabled"    # application judged cache-insensitive


@dataclass
class LMEntry:
    """One Load Monitor row: PC, hit/miss counters, 2-bit valid field."""

    pc: int = -1
    hits: int = 0
    misses: int = 0
    valid: int = 0  # 2-bit: bit0 = current window, bit1 = previous

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


class LoadMonitor:
    """The LM table plus the window-to-window selection protocol."""

    def __init__(
        self,
        num_entries: int = 32,
        hpc_bits: int = 5,
        hit_ratio_threshold: float = 0.20,
        min_accesses: int = 8,
    ) -> None:
        if num_entries != (1 << hpc_bits):
            raise ValueError("LM entry count must match the HPC index width")
        self.hpc_bits = hpc_bits
        self.threshold = hit_ratio_threshold
        self.min_accesses = min_accesses
        self.entries = [LMEntry() for _ in range(num_entries)]
        self.state = MonitorState.MONITORING
        self.selected_hpcs: frozenset[int] = frozenset()
        self.windows_elapsed = 0
        self._previous_set: frozenset[int] = frozenset()

    # -- access-time behaviour ---------------------------------------------
    def record_access(self, pc: int, hit: bool) -> None:
        """Count one load access (called on every load while monitoring)."""
        if self.state is not MonitorState.MONITORING:
            return
        entry = self.entries[hashed_pc(pc, self.hpc_bits)]
        if entry.pc < 0:
            entry.pc = pc
        if hit:
            entry.hits += 1
        else:
            entry.misses += 1

    def discard_window(self) -> None:
        """Drop the current window's counters without advancing the
        protocol — used while the L1 is still warming up, when every
        access is a cold miss and classification would be meaningless."""
        for entry in self.entries:
            entry.reset_counters()

    # -- window boundary -----------------------------------------------------
    def close_window(self) -> MonitorState:
        """End the current monitoring window and apply the protocol."""
        if self.state is not MonitorState.MONITORING:
            return self.state
        self.windows_elapsed += 1

        current = frozenset(
            idx
            for idx, e in enumerate(self.entries)
            if e.accesses >= self.min_accesses and e.hit_ratio() >= self.threshold
        )
        # Shift the 2-bit valid fields: previous <- current verdict.
        for idx, entry in enumerate(self.entries):
            verdict = 1 if idx in current else 0
            entry.valid = ((entry.valid << 1) | verdict) & 0b11
            entry.reset_counters()

        if self.windows_elapsed >= 2:
            if current and current == self._previous_set:
                self.selected_hpcs = current
                self.state = MonitorState.SELECTED
            elif not current and not self._previous_set:
                # No high-locality load in two consecutive windows:
                # the kernel is cache-insensitive, disable Linebacker.
                self.state = MonitorState.DISABLED
        self._previous_set = current
        return self.state

    # -- queries --------------------------------------------------------------
    def is_selected(self, hpc: int) -> bool:
        return self.state is MonitorState.SELECTED and hpc in self.selected_hpcs

    @property
    def monitoring(self) -> bool:
        return self.state is MonitorState.MONITORING

    def storage_bits(self) -> int:
        """Storage cost in bits (paper Section 4.2: 392 bytes total)."""
        # Per entry: 2-bit valid + three 4-byte registers (PC, hits, misses).
        return len(self.entries) * (2 + 3 * 32)
