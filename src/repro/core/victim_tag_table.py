"""Victim Tag Table (VTT) and its partitions (VPs).

The VTT keeps the tags of victim lines preserved in idle register file
space. It has the same number of sets as the L1 cache (48 in the
baseline), organized as up to 8 partitions of 4 ways each (the paper's
preferred design). Each partition corresponds to a 24 KB chunk of idle
register space: 48 sets x 4 ways x 128 B = 24 KB.

A hit at (partition N, set X, way Y) maps to a register number through
the paper's Equation (2):

    RN = Offset + N * entries_per_partition + X * ways + Y

Partitions activate only when every register they map to is idle, and
searching them is sequential (3 cycles per partition, Table 3), which
is the latency/associativity trade-off Figure 10 explores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics import Metric, MetricSet


@dataclass(slots=True)
class VTTEntry:
    """One tag-array entry: valid, tag, LRU timestamp, and an
    invalidated-by-store flag (invalidated entries are reused in
    priority when a new victim line arrives)."""

    valid: bool = False
    tag: int = -1
    lru: int = 0


VTT_STATS = MetricSet(
    "VTTStats",
    owner="core.victim_tag_table",
    metrics=(
        Metric("lookups", description="tag searches across active VPs"),
        Metric("hits", description="tag matches"),
        Metric("inserts", description="victim tags inserted"),
        Metric("store_invalidations", description="entries killed by stores"),
        Metric("partition_activations", description="VPs switched on"),
        Metric("partition_deactivations", description="VPs switched off"),
    ),
)

_VTTStatsBase = VTT_STATS.build()


class VTTStats(_VTTStatsBase):
    __slots__ = ()


class VTTPartition:
    """One VP: a ``num_sets`` x ``ways`` tag array over a fixed RN range."""

    def __init__(self, index: int, num_sets: int, ways: int, base_rn: int) -> None:
        self.index = index
        self.num_sets = num_sets
        self.ways = ways
        self.base_rn = base_rn
        self.entries = [[VTTEntry() for _ in range(ways)] for _ in range(num_sets)]
        self.active = False
        #: Per-partition hit count — the timeseries layer reports it so
        #: dynamics traces show *which* VPs serve the victim hits.
        self.hits = 0

    @property
    def num_entries(self) -> int:
        return self.num_sets * self.ways

    def register_number(self, set_idx: int, way: int) -> int:
        """Paper Equation (2)."""
        return self.base_rn + set_idx * self.ways + way

    @property
    def register_range(self) -> range:
        return range(self.base_rn, self.base_rn + self.num_entries)

    def invalidate_all(self) -> None:
        for ways in self.entries:
            for entry in ways:
                entry.valid = False
                entry.tag = -1


class VictimTagTable:
    """All partitions plus lookup/insert/invalidate across them."""

    def __init__(
        self,
        num_sets: int,
        ways: int = 4,
        max_partitions: int = 8,
        register_offset: int = 512,
        vp_access_latency: int = 3,
        total_registers: int = 2048,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.vp_access_latency = vp_access_latency
        self.register_offset = register_offset
        self.stats = VTTStats()
        self._clock = 0
        self.partitions: list[VTTPartition] = []
        entries_per_vp = num_sets * ways
        for n in range(max_partitions):
            base = register_offset + n * entries_per_vp
            if base + entries_per_vp > total_registers:
                break
            self.partitions.append(VTTPartition(n, num_sets, ways, base))

    # -- partition (de)activation ------------------------------------------
    def active_partitions(self) -> list[VTTPartition]:
        return [p for p in self.partitions if p.active]

    def activate(self, index: int) -> None:
        vp = self.partitions[index]
        if not vp.active:
            vp.active = True
            vp.invalidate_all()
            self.stats.partition_activations += 1

    def deactivate(self, index: int) -> None:
        vp = self.partitions[index]
        if vp.active:
            vp.active = False
            vp.invalidate_all()
            self.stats.partition_deactivations += 1

    def sync_with_free_registers(self, is_register_free) -> None:
        """(De)activate partitions so that active ones cover only idle
        registers. ``is_register_free(rn) -> bool``."""
        for vp in self.partitions:
            free = all(is_register_free(rn) for rn in vp.register_range)
            if free and not vp.active:
                self.activate(vp.index)
            elif not free and vp.active:
                self.deactivate(vp.index)

    # -- set mapping -----------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        """Same set index as the L1 cache (the paper reuses it)."""
        return line_addr % self.num_sets

    def _tag(self, line_addr: int) -> int:
        return line_addr // self.num_sets

    # -- cache operations -------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[tuple[int, int]]:
        """Search active partitions sequentially.

        Returns ``(register_number, search_latency)`` on hit, or None.
        The latency is ``vp_access_latency`` per partition searched,
        reflecting the sequential probe order of Section 4.
        """
        self.stats.lookups += 1
        set_idx = self.set_index(line_addr)
        tag = self._tag(line_addr)
        searched = 0
        self._clock += 1
        for vp in self.partitions:
            if not vp.active:
                continue
            searched += 1
            for way, entry in enumerate(vp.entries[set_idx]):
                if entry.valid and entry.tag == tag:
                    entry.lru = self._clock
                    self.stats.hits += 1
                    vp.hits += 1
                    return vp.register_number(set_idx, way), searched * self.vp_access_latency
        return None

    def insert(self, line_addr: int) -> Optional[int]:
        """Insert a victim line tag; returns the register number to
        write the line data to, or None when no partition is active.

        Victim selection order within the set: an invalid entry first
        (store-invalidated entries are reclaimed in priority, per the
        paper's store-handling policy), else the LRU entry across all
        active partitions.
        """
        active = self.active_partitions()
        if not active:
            return None
        set_idx = self.set_index(line_addr)
        tag = self._tag(line_addr)
        self._clock += 1

        # Already present? Refresh it.
        for vp in active:
            for way, entry in enumerate(vp.entries[set_idx]):
                if entry.valid and entry.tag == tag:
                    entry.lru = self._clock
                    return vp.register_number(set_idx, way)

        victim_vp: Optional[VTTPartition] = None
        victim_way = -1
        best_lru: Optional[int] = None
        for vp in active:
            for way, entry in enumerate(vp.entries[set_idx]):
                if not entry.valid:
                    victim_vp, victim_way = vp, way
                    best_lru = None
                    break
                if best_lru is None and victim_vp is not None:
                    continue
                if best_lru is None or entry.lru < best_lru:
                    victim_vp, victim_way, best_lru = vp, way, entry.lru
            if victim_vp is not None and best_lru is None:
                break

        assert victim_vp is not None
        entry = victim_vp.entries[set_idx][victim_way]
        entry.valid = True
        entry.tag = tag
        entry.lru = self._clock
        self.stats.inserts += 1
        return victim_vp.register_number(set_idx, victim_way)

    def invalidate(self, line_addr: int) -> Optional[int]:
        """Store hit in the victim space: invalidate the entry and
        return the register number it occupied (or None)."""
        set_idx = self.set_index(line_addr)
        tag = self._tag(line_addr)
        for vp in self.active_partitions():
            for way, entry in enumerate(vp.entries[set_idx]):
                if entry.valid and entry.tag == tag:
                    entry.valid = False
                    entry.tag = -1
                    self.stats.store_invalidations += 1
                    return vp.register_number(set_idx, way)
        return None

    # -- capacity/introspection ---------------------------------------------
    def active_capacity_lines(self) -> int:
        return sum(vp.num_entries for vp in self.active_partitions())

    def valid_entries(self) -> int:
        return sum(
            1
            for vp in self.active_partitions()
            for ways in vp.entries
            for e in ways
            if e.valid
        )

    def storage_bits(self) -> int:
        """Tag storage cost: 1 valid + 18 tag + 5 meta bits per entry
        (paper Section 4.2: 4608 bytes for 1536 entries)."""
        total_entries = sum(vp.num_entries for vp in self.partitions)
        return total_entries * (1 + 18 + 5)
