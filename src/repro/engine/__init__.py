"""Pluggable execution backends for the cycle engine.

See :mod:`repro.engine.base` for the architecture. Importing this
package registers the built-in ``object`` and ``vector`` backends.
"""

from repro.engine.base import (
    BACKENDS,
    DEFAULT_BACKEND,
    BackendError,
    BackendFallbackWarning,
    EngineBackend,
    EngineRequest,
    backend_names,
    dispatch,
    register_backend,
    resolve_backend,
    _register_builtin_backends,
)

_register_builtin_backends()

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BackendError",
    "BackendFallbackWarning",
    "EngineBackend",
    "EngineRequest",
    "backend_names",
    "dispatch",
    "register_backend",
    "resolve_backend",
]
