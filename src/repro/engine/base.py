"""Backend-neutral execution-engine layer.

The simulation stack splits into two layers:

* a **frontend** — workload/trace generation, architecture and
  extension resolution, ``RunOptions``, result/snapshot assembly —
  that is backend-agnostic, and
* an **execution backend** that actually advances the machine state
  cycle by cycle and produces a
  :class:`~repro.gpu.gpu.SimulationResult`.

A backend is any object satisfying :class:`EngineBackend`: it has a
``name``, can say whether it ``supports`` a concrete request (returning
``None`` or a human-readable reason string), and can ``run`` it. Two
backends ship:

``object``
    The original event-driven ``GPU``/``SM`` engine, unchanged, behind
    the interface (:mod:`repro.engine.object_backend`). Supports every
    feature: extensions, load tracking, timeseries, live objects,
    timing DRAM, the NoC.

``vector``
    A lean engine over struct-of-arrays state with numpy bulk trace
    compilation (:mod:`repro.engine.vector`). Bit-identical to
    ``object`` on every reported statistic, but only for the feature
    subset it declares; anything else falls back to ``object`` loudly
    (a :class:`BackendFallbackWarning`), never silently diverges.

Selection is threaded through :class:`~repro.options.RunOptions`
(``backend=None`` means :data:`DEFAULT_BACKEND`) and participates in
job cache identity, so results computed by different backends never
alias in the experiment cache.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SimulationConfig
    from repro.gpu.extension import SMExtension
    from repro.gpu.gpu import SimulationResult
    from repro.gpu.trace import KernelTrace

#: Backend used when ``RunOptions.backend`` is None.
DEFAULT_BACKEND = "object"


class BackendError(ValueError):
    """Unknown backend name or invalid backend request."""


class BackendFallbackWarning(RuntimeWarning):
    """A requested backend could not run the job and fell back.

    Loud by design (the ISSUE's "fall back loudly, never silently
    diverge"): tests that pin a backend can assert no fallback fired.
    """


@dataclass(frozen=True)
class EngineRequest:
    """One fully-resolved simulation request, backend-agnostic.

    This is exactly the parameter surface of
    :func:`repro.gpu.gpu.run_kernel` after option resolution — the
    frontend builds it once and hands it to whichever backend wins.
    """

    config: "SimulationConfig"
    kernel: "KernelTrace"
    extension_factory: Optional[Callable[[], "SMExtension"]] = None
    max_concurrent_ctas: Optional[int] = None
    track_loads: bool = False
    keep_objects: bool = False
    timeseries: bool = False


@runtime_checkable
class EngineBackend(Protocol):
    """The contract every execution backend implements."""

    name: str

    def supports(self, request: EngineRequest) -> Optional[str]:
        """Return None when this backend can run ``request`` exactly,
        else a short human-readable reason why not."""

    def run(self, request: EngineRequest) -> "SimulationResult":
        """Execute the request and return the standard result."""


#: Registered backends by name. Populated at import time by
#: :func:`_register_builtin_backends`; extensions could add more.
BACKENDS: dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend) -> None:
    if backend.name in BACKENDS:
        raise BackendError(f"backend {backend.name!r} already registered")
    BACKENDS[backend.name] = backend


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(BACKENDS))


def resolve_backend(name: Optional[str]) -> EngineBackend:
    """Resolve a backend name (None → :data:`DEFAULT_BACKEND`)."""
    key = name or DEFAULT_BACKEND
    try:
        return BACKENDS[key]
    except KeyError:
        known = ", ".join(backend_names())
        raise BackendError(f"unknown backend {key!r} (known: {known})") from None


def dispatch(name: Optional[str], request: EngineRequest) -> "SimulationResult":
    """Run ``request`` on the named backend, falling back loudly.

    The fallback target is always the ``object`` backend, which
    supports everything; requesting it directly never warns.
    """
    backend = resolve_backend(name)
    reason = backend.supports(request)
    if reason is not None:
        fallback = BACKENDS[DEFAULT_BACKEND]
        if backend is not fallback:
            warnings.warn(
                f"backend {backend.name!r} cannot run this job ({reason}); "
                f"falling back to {fallback.name!r}",
                BackendFallbackWarning,
                stacklevel=2,
            )
            backend = fallback
        else:  # pragma: no cover - object supports everything
            raise BackendError(f"default backend rejected job: {reason}")
    return backend.run(request)


def _register_builtin_backends() -> None:
    # Imported here (not at module top) to keep the layering acyclic:
    # the object backend imports repro.gpu.gpu, which imports this
    # module for dispatch.
    from repro.engine.object_backend import ObjectBackend

    if "object" not in BACKENDS:
        register_backend(ObjectBackend())
    if "vector" not in BACKENDS:
        try:
            from repro.engine.vector import VectorBackend
        except ImportError:
            # numpy is absent: the vector engine simply isn't offered.
            # Every selection surface (CLI, schema, resolve_backend)
            # reports it as unknown, which names the missing dependency
            # better than an import traceback mid-dispatch.
            return
        register_backend(VectorBackend())
