"""The ``object`` backend: the event-driven GPU/SM engine.

This is the original simulation core — per-warp ``Warp`` objects, a
per-SM event heap, live ``SetAssociativeCache``/``MSHRFile`` instances
— extracted behind the :class:`~repro.engine.base.EngineBackend`
interface. It supports the full feature surface (extensions, load
tracking, timeseries, live result objects, timing DRAM, the NoC), so
it is both the default backend and the fallback target for every
request another backend declines.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import EngineRequest


class ObjectBackend:
    """Event-driven reference engine (supports everything)."""

    name = "object"

    def supports(self, request: EngineRequest) -> Optional[str]:
        return None

    def run(self, request: EngineRequest):
        from repro.gpu.gpu import GPU

        gpu = GPU(
            request.config,
            request.kernel,
            extension_factory=request.extension_factory,
            max_concurrent_ctas=request.max_concurrent_ctas,
            track_loads=request.track_loads,
            timeseries=request.timeseries,
        )
        return gpu.run(keep_objects=request.keep_objects)
