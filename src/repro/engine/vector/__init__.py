"""The ``vector`` execution backend.

Struct-of-arrays state plus numpy bulk trace compilation; bit-identical
to the ``object`` engine on every reported statistic for the feature
subset it supports (see :meth:`VectorBackend.supports`). Requests
outside that subset fall back to ``object`` with a
:class:`~repro.engine.base.BackendFallbackWarning`.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import EngineRequest
from repro.engine.vector.machine import VectorGPU

__all__ = ["VectorBackend", "VectorGPU"]


class VectorBackend:
    """Vectorized engine for extension-free, snapshot-result runs."""

    name = "vector"

    def supports(self, request: EngineRequest) -> Optional[str]:
        """None when the request is vectorizable, else the reason.

        Each capability here corresponds to object-engine machinery
        with per-issue hooks or live-object surface the SoA core does
        not model; declaring them (instead of approximating) is what
        keeps the two backends bit-identical wherever both run.
        """
        if request.extension_factory is not None:
            return "architecture extensions (Linebacker/PCAL/CERF/VC) are not vectorized"
        if request.track_loads:
            return "per-PC load tracking is not vectorized"
        if request.keep_objects:
            return "live simulator objects exist only in the object engine"
        if request.timeseries:
            return "windowed timeseries recording is not vectorized"
        gpu = request.config.gpu
        if gpu.dram_model != "simple":
            return "the bank-level timing DRAM model is not vectorized"
        if gpu.noc_enable:
            return "the SM-to-L2 interconnect model is not vectorized"
        return None

    def run(self, request: EngineRequest):
        return VectorGPU(
            request.config,
            request.kernel,
            max_concurrent_ctas=request.max_concurrent_ctas,
        ).run()
