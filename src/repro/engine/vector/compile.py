"""Trace compilation for the vector backend.

The object engine consumes one :class:`~repro.gpu.isa.Instruction`
iterator per warp, lazily, instruction by instruction. The vector
backend instead *compiles* a kernel's traces up front into flat
struct-of-arrays buffers:

* one **opcode template** (and a parallel operand-count template) —
  for generator-built kernels this is shared by every warp of the
  grid, because :func:`~repro.workloads.generator._warp_stream` emits
  the same instruction *shape* for all warps and only the addresses
  differ;
* one **load-address queue** and one **store-address queue** per warp,
  consumed in stream order. Fully coalesced accesses compile to plain
  ints, divergent multi-line accesses to tuples — the execution loop
  branches on ``type(entry) is int``.

Two compilation paths produce that form:

``compile_app_grid``
    The numpy fast path for kernels that carry their generator
    :class:`~repro.workloads.generator.AppSpec`. It re-implements the
    generator's address arithmetic (stream counters, the murmur-style
    scramble, reuse-burst offsets) as vectorized uint64/int64 array
    expressions over the whole grid at once, so trace synthesis costs
    numpy time, not a Python generator frame per instruction. The
    arithmetic is replicated *exactly* — every operand is a
    non-negative integer, so numpy's ``%`` and masked uint64 products
    agree bit-for-bit with the Python reference (the golden
    differential in ``tests/test_backends.py`` pins this).

``compile_warp_iter``
    The generic fallback: drain the kernel's ``warp_trace`` iterator
    once and split it into the SoA form. This is what declarative
    workloads (multi-phase / multi-tenant specs) and hand-built test
    traces go through; it costs about what the object engine pays for
    trace consumption, paid once per warp.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.isa import Op
from repro.gpu.trace import KernelTrace
from repro.workloads.generator import AppSpec, Pattern, Scope

# Opcode encoding in compiled templates (int compares in the hot loop).
OP_ALU = 0
OP_LOAD = 1
OP_STORE = 2
OP_EXIT = 3

_OP_CODES = {Op.ALU: OP_ALU, Op.LOAD: OP_LOAD, Op.STORE: OP_STORE, Op.EXIT: OP_EXIT}

# Generator constants (see repro.workloads.generator._scramble).
_MIX = np.uint64(0x9E3779B1)
_C1 = np.uint64(0xC2B2AE35)
_C2 = np.uint64(0x27D4EB2F)
_M1 = np.uint64(0x85EBCA6B)
_MASK32 = np.uint64(0xFFFFFFFF)


def _scramble_np(x: np.ndarray, lane: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Vectorized ``generator._scramble`` over uint64 arrays.

    Inputs are small non-negative ints, so every intermediate product
    fits in uint64 before the explicit 32-bit masks are applied; the
    result equals the scalar reference for each element.
    """
    h = (x * _MIX + lane * _C1 + j * _C2) & _MASK32
    h ^= h >> np.uint64(16)
    h = (h * _M1) & _MASK32
    h ^= h >> np.uint64(13)
    h = (h * _C1) & _MASK32
    h ^= h >> np.uint64(16)
    return h


class CompiledKernel:
    """A kernel's traces in the vector backend's SoA form.

    ``warp_streams(grid_cta_id)`` returns, per warp of that CTA, a
    tuple ``(ops, opnds, loads, stores)`` — the opcode/operand-count
    templates plus that warp's address queues.
    """

    def __init__(self, kernel: KernelTrace) -> None:
        self.kernel = kernel
        spec = kernel.app_spec
        if isinstance(spec, AppSpec) and spec.loads:
            self._ops, self._opnds = _app_templates(spec)
            self._loads, self._stores = compile_app_grid(spec)
            self._generic = False
        else:
            self._generic = True

    def warp_streams(self, grid_cta_id: int) -> list[tuple]:
        kernel = self.kernel
        if self._generic:
            return [
                compile_warp_iter(kernel.warp_trace(grid_cta_id, w))
                for w in range(kernel.warps_per_cta)
            ]
        ops, opnds = self._ops, self._opnds
        wpc = kernel.warps_per_cta
        base = grid_cta_id * wpc
        return [
            (ops, opnds, self._loads[base + w], self._stores[base + w])
            for w in range(wpc)
        ]


def compile_warp_iter(trace) -> tuple[list, list, list, list]:
    """Drain one instruction iterator into the compiled SoA form."""
    ops: list[int] = []
    opnds: list[int] = []
    loads: list = []
    stores: list = []
    for inst in trace:
        code = _OP_CODES[inst.op]
        ops.append(code)
        opnds.append(inst.operands)
        if code == OP_LOAD or code == OP_STORE:
            addrs = inst.line_addrs
            entry = addrs[0] if len(addrs) == 1 else tuple(addrs)
            (loads if code == OP_LOAD else stores).append(entry)
    return ops, opnds, loads, stores


def _app_templates(spec: AppSpec) -> tuple[list[int], list[int]]:
    """The shared opcode/operand templates of one generator app.

    Emission order per iteration ``t`` (generator ``_warp_stream``):
    the ALU block, one LOAD per (load spec, weight repeat), then one
    STORE per store spec whose period divides ``t``; a final EXIT.
    ALU and EXIT instructions carry 3 operands, memory ops carry 2.
    """
    ops: list[int] = []
    opnds: list[int] = []
    alu_block_ops = [OP_ALU] * spec.alu_per_iteration
    alu_block_opnds = [3] * spec.alu_per_iteration
    loads_per_iter = sum(ld.weight for ld in spec.loads)
    for t in range(spec.iterations):
        ops.extend(alu_block_ops)
        opnds.extend(alu_block_opnds)
        ops.extend([OP_LOAD] * loads_per_iter)
        opnds.extend([2] * loads_per_iter)
        for st in spec.stores:
            if st.every_iterations > 0 and t % st.every_iterations == 0:
                ops.append(OP_STORE)
                opnds.append(2)
    ops.append(OP_EXIT)
    opnds.append(3)
    return ops, opnds


def compile_app_grid(spec: AppSpec) -> tuple[list[list], list[list]]:
    """Per-warp load/store address queues for the whole CTA grid.

    Vectorized over every (warp, iteration, repeat, line) at once;
    returns plain Python lists indexed by global warp id, with int
    entries for single-line accesses and tuples for multi-line ones.
    """
    gw_count = spec.num_ctas * spec.warps_per_cta
    T = spec.iterations
    wpc = spec.warps_per_cta
    gw = np.arange(gw_count, dtype=np.int64)
    cta = gw // wpc
    warp_in_cta = gw % wpc
    max_lpa = max(ld.lines_per_access for ld in spec.loads)
    cols = sum(ld.weight for ld in spec.loads)
    # (warp, iteration, load column, line) address matrix; the column
    # axis interleaves load specs in emission order (spec-major,
    # weight-repeat-minor), matching the opcode template.
    addr = np.zeros((gw_count, T, cols, max_lpa), dtype=np.int64)
    col_lpa = np.zeros(cols, dtype=np.int64)
    t_arr = np.arange(T, dtype=np.int64)

    c0 = 0
    for idx, ld in enumerate(spec.loads):
        w = ld.weight
        lpa = ld.lines_per_access
        ws = max(1, ld.working_set_lines)
        col_lpa[c0 : c0 + w] = lpa
        base = np.full(gw_count, spec.region_base(idx), dtype=np.int64)
        if ld.scope is Scope.CTA:
            base = base + cta * ld.working_set_lines
        elif ld.scope is Scope.WARP:
            base = base + gw * ld.working_set_lines
        rep = np.arange(w, dtype=np.int64)
        j = np.arange(lpa, dtype=np.int64)
        if ld.pattern is Pattern.STREAM:
            # seq counter advances per emission: seq = t * weight + rep.
            extra = base + gw * (T * w)
            first = (
                extra[:, None, None]
                + t_arr[None, :, None] * w
                + rep[None, None, :]
            )
            block = first[:, :, :, None] + j[None, None, None, :]
        elif ld.pattern is Pattern.DIVERGENT:
            x = (t_arr[:, None] * ld.stride + rep[None, :]).astype(np.uint64)
            h = _scramble_np(
                x[None, :, :, None],
                gw.astype(np.uint64)[:, None, None, None],
                j.astype(np.uint64)[None, None, None, :],
            )
            block = base[:, None, None, None] + (h % np.uint64(ws)).astype(np.int64)
        else:  # REUSE
            burst = max(1, ld.reuse_burst)
            phase = gw if ld.scope is Scope.GLOBAL else warp_in_cta
            extra = phase * (ws // max(1, wpc))
            offset = (
                (t_arr // burst)[None, :, None] * ld.stride
                + rep[None, None, :]
                + extra[:, None, None]
            ) % ws
            if lpa == 1:
                block = (base[:, None, None] + offset)[:, :, :, None]
            else:
                block = base[:, None, None, None] + (
                    offset[:, :, :, None] + j[None, None, None, :] * 17
                ) % ws
        addr[:, :, c0 : c0 + w, :lpa] = block
        c0 += w

    loads_per_warp: list[list] = []
    if max_lpa == 1:
        flat = addr[:, :, :, 0].reshape(gw_count, T * cols)
        for g in range(gw_count):
            loads_per_warp.append(flat[g].tolist())
    else:
        for g in range(gw_count):
            col_lists = []
            for c in range(cols):
                lpa = int(col_lpa[c])
                if lpa == 1:
                    col_lists.append(addr[g, :, c, 0].tolist())
                else:
                    col_lists.append(
                        [tuple(row) for row in addr[g, :, c, :lpa].tolist()]
                    )
            loads_per_warp.append(
                [entry for row in zip(*col_lists) for entry in row]
            )

    # Stores: every matching store spec at iteration t emits the same
    # address (store_base + gw * iterations + t), in t-major, spec-
    # minor order.
    store_ts = [
        t
        for t in range(T)
        for st in spec.stores
        if st.every_iterations > 0 and t % st.every_iterations == 0
    ]
    stores_per_warp: list[list] = []
    if store_ts:
        ts = np.array(store_ts, dtype=np.int64)
        smat = spec.store_region_base() + gw[:, None] * T + ts[None, :]
        for g in range(gw_count):
            stores_per_warp.append(smat[g].tolist())
    else:
        empty: list = []
        stores_per_warp = [empty] * gw_count
    return loads_per_warp, stores_per_warp
