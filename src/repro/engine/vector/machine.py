"""The ``vector`` backend's execution core.

A lean re-implementation of the inert-extension simulation path —
the exact semantics of the object engine's fused tick
(:meth:`repro.gpu.sm.SM.tick`), event delivery, CTA lifecycle, L1/MSHR
behaviour and the shared L2/DRAM servers — over struct-of-arrays
state:

* per-warp state lives in parallel arrays indexed by warp id
  (``state``/``ready_cycle``/``pending``/instruction pointers), not in
  ``Warp`` objects;
* instruction streams are the pre-compiled SoA buffers from
  :mod:`repro.engine.vector.compile` (one shared opcode template plus
  per-warp address queues) — no ``Instruction`` objects and no
  generator frames on the hot path;
* cache lines are bare LRU-ordered dict keys (the object engine's
  ``CacheLine`` token/hpc/owner/last-use fields are write-only in
  baseline runs, so dropping them cannot change any reported
  statistic);
* the register file keeps only what is observable — the owner map
  (allocation is first-fit, bit-for-bit), and bank-conflict epochs.

The scheduler scans read a single array: ``w_rc[w]`` holds the real
ready cycle while a warp is READY and ``inf`` otherwise, so "state is
READY and ready_cycle <= cycle" collapses to one comparison. The
encoding is exact because an unblocking memory response always carries
a ready time >= the ready cycle the warp blocked with: a warp blocks
only from a load issue (which sets ``ready_cycle = cycle + 1``), and
every event at or before that cycle was delivered before the issue, so
the unblocking event's time is >= cycle + 1 and the object engine's
``max(ready_cycle, event_time)`` is always just ``event_time``.

Decoupled SM clocks
-------------------

Each SM runs as an independent coroutine (:meth:`VectorSM.run_gen`)
with every piece of hot state bound once into frame locals — no
per-tick prologue, no method-call overhead, no global tick heap. This
is exact, not an approximation, because in the object engine's run
loop an SM's tick times are a pure function of its *own* hint chain::

    t_{n+1} = max(t_n + 1, h_n)

Proof sketch: the global loop executes a popped entry at
``max(global_prev + 1, h)``, and batches every pending entry whose
hint is <= that cycle into the same ``due`` list. If the global clock
could ever reach ``max(h, own_prev + 1)`` while this SM's entry (hint
``h``) was still pending, the tick that got it there would have
absorbed the entry into its own due-batch first — so the cycle an
entry actually executes at always equals the SM-local value, and the
heap contributes nothing but same-cycle ordering by ``sm_id``.

SMs therefore interact only through the shared L2/DRAM float servers
and the grid CTA dispenser. The coroutine yields its current cycle
immediately before each such interaction and the device coordinator
(:meth:`VectorGPU.run`) resumes whichever SM has the globally smallest
pending ``(cycle, sm_id)`` sync point, reproducing the object engine's
interleaving of shared-state mutations exactly. The only divergence is
for runs truncated by ``max_cycles``: each SM stops at its own wall,
which matches the object engine's global wall (all due entries <= the
wall are batched before the loop exits), including the reported final
cycle.

Everything observable through :class:`~repro.gpu.gpu.SimulationResult`
is reproduced exactly; ``tests/test_backends.py`` pins the golden
fingerprints against the object engine. State with no path into a
result (scheduler issue counts, L2 tag-array statistics, MSHR
allocation counters, DRAM busy cycles, the L1 touch clock) is
deliberately not modeled.
"""

from __future__ import annotations

import gc
import heapq
from typing import Optional

from repro.config import GPUConfig, SimulationConfig
from repro.engine.vector.compile import CompiledKernel
from repro.gpu.gpu import SimulationResult
from repro.gpu.register_file import RegisterFileStats
from repro.gpu.sm import SM
from repro.gpu.snapshot import ExtensionSnapshot, L1Snapshot, SMSnapshot
from repro.gpu.stats import SMStats
from repro.gpu.trace import KernelTrace
from repro.memory.cache import CacheStats
from repro.memory.subsystem import TrafficStats

_INF = float("inf")

# Event kinds (same encoding as repro.gpu.sm).
_EV_FILL = 0
_EV_WAKE = 1

# Warp states. INACTIVE does not exist here: throttling extensions are
# not vectorizable, so a warp is only ever ready, blocked, or done.
_READY = 0
_BLOCKED = 1
_FINISHED = 2

# Indices into the rf_stat accumulator list.
_RF_READS = 0
_RF_WRITES = 1
_RF_CONFLICTS = 2


class _VectorMemory:
    """Shared L2 + DRAM, inlined.

    Replicates the float arithmetic of ``L2Cache.read_demand``/
    ``L2Cache.write`` and ``DRAMModel.access`` exactly (port/channel
    float servers, ``int()`` truncation, left-associative sums) and the
    L2 tag array's LRU-dict behaviour, without CacheLine objects or the
    statistics nothing reads (L2 hit/miss classification, queue delays,
    busy cycles).
    """

    __slots__ = (
        "l2_sets",
        "l2_num_sets",
        "l2_assoc",
        "l2_svc",
        "l2_lat",
        "l2_port_free",
        "dram_svc",
        "dram_lat",
        "dram_free",
        "dram_reads",
        "dram_writes",
        "demand_read_lines",
        "store_write_lines",
    )

    def __init__(self, config: GPUConfig) -> None:
        self.l2_num_sets = config.l2_size_bytes // (config.l2_assoc * config.l1_line_bytes)
        self.l2_sets: list[dict] = [dict() for _ in range(self.l2_num_sets)]
        self.l2_assoc = config.l2_assoc
        self.l2_svc = 1.0 / config.l2_lines_per_cycle
        self.l2_lat = config.l2_latency
        self.l2_port_free = 0.0
        self.dram_svc = 1.0 / config.dram_lines_per_cycle
        self.dram_lat = config.dram_latency
        self.dram_free = 0.0
        self.dram_reads = 0
        self.dram_writes = 0
        self.demand_read_lines = 0
        self.store_write_lines = 0

    def fetch_line(self, line_addr: int, cycle: int) -> int:
        start = self.l2_port_free
        if cycle > start:
            start = float(cycle)
        self.l2_port_free = start + self.l2_svc
        ns = self.l2_num_sets
        ways = self.l2_sets[line_addr % ns]
        tag = line_addr // ns
        if tag in ways:
            del ways[tag]
            ways[tag] = True
            return int(start + self.l2_lat)
        arrive = float(int(start + self.l2_lat))
        dstart = self.dram_free
        if arrive > dstart:
            dstart = arrive
        self.dram_free = dstart + self.dram_svc
        self.dram_reads += 1
        if len(ways) >= self.l2_assoc:
            del ways[next(iter(ways))]
        ways[tag] = True
        self.demand_read_lines += 1
        return int(dstart + self.dram_svc + self.dram_lat)

    def write_line(self, line_addr: int, cycle: int) -> None:
        self.store_write_lines += 1
        start = self.l2_port_free
        fc = float(cycle)
        if fc > start:
            start = fc
        self.l2_port_free = start + self.l2_svc
        ns = self.l2_num_sets
        self.l2_sets[line_addr % ns].pop(line_addr // ns, None)
        arrive = float(int(start + self.l2_lat))
        dstart = self.dram_free
        if arrive > dstart:
            dstart = arrive
        self.dram_free = dstart + self.dram_svc
        self.dram_writes += 1


class VectorSM:
    """One SM's struct-of-arrays state and fused tick coroutine."""

    __slots__ = (
        "sm_id",
        "config",
        "kernel",
        "memory",
        "cta_source",
        "compiled",
        # Per-warp SoA, indexed by warp id (slot * warps_per_cta + w).
        # w_rc holds the ready cycle for READY warps and inf otherwise
        # (see module docstring); w_state holds the precise state.
        "w_state",
        "w_rc",
        "w_pend",
        "w_ip",
        "w_lp",
        "w_sp",
        "w_base",
        "w_slot",
        "w_ops",
        "w_opnds",
        "w_loads",
        "w_stores",
        "w_len",
        "w_banks2",
        "w_banks3",
        # Schedulers.
        "nsched",
        "sched_warps",
        "sched_greedy",
        "sched_hint",
        "sched_hint_valid",
        # CTA bookkeeping.
        "ctas",
        "next_slot",
        "occupancy_limit",
        "warps_per_cta",
        "regs_per_cta",
        "regs_per_warp",
        # Register file. rf_win is the mutable [usage_cycle, epoch]
        # pair and rf_stat the [reads, writes, conflicts] accumulator —
        # lists, so the coroutine's local bindings and the CTA-launch
        # path share one copy of the state with no write-back
        # choreography.
        "rf_owner",
        "rf_banks",
        "rf_ports",
        "rf_win",
        "bank_epoch",
        "bank_cnt",
        "rf_stat",
        # L1 + MSHR.
        "l1_sets",
        "l1_num_sets",
        "l1_assoc",
        "l1_ever",
        "l1_evictions",
        "l1_cold",
        "l1_write_hits",
        "l1_write_misses",
        "mshr",
        "mshr_capacity",
        "mshr_stalls",
        # Stall certificates. fill_gen counts L1 fill deliveries;
        # a warp whose load failed MSHR admission records the fill
        # generation (w_sgen) and its admission margin (w_smargin =
        # distinct missing lines minus free entries). The
        # margin can only shrink by one per fill: non-fill activity
        # moves it the safe way (admitted loads consume free entries
        # at least as fast as they satisfy this warp's lines, stores
        # only evict, a fill itself frees exactly one MSHR entry and
        # never reduces the needed count — the filled line moves from
        # MSHR to L1, satisfying the same addresses). So while
        # w_smargin[w] > fill_gen - w_sgen[w] the warp's retry
        # provably fails and is counted without rescanning its
        # addresses.
        "fill_gen",
        "w_sgen",
        "w_smargin",
        # Events.
        "events",
        "eseq",
        # Latencies.
        "alu_latency",
        "l1_hit_latency",
        "max_outstanding",
        # Counters (SMStats).
        "instructions",
        "loads",
        "stores",
        "l1_hits",
        "l1_misses",
        "mem_requests",
        "cta_dirty",
        "truncated",
        "final_cycle",
    )

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        kernel: KernelTrace,
        memory: _VectorMemory,
        cta_source,
        compiled: CompiledKernel,
        max_concurrent_ctas: Optional[int] = None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.memory = memory
        self.cta_source = cta_source
        self.compiled = compiled

        self.w_state: list[int] = []
        self.w_rc: list = []
        self.w_pend: list[int] = []
        self.w_ip: list[int] = []
        self.w_lp: list[int] = []
        self.w_sp: list[int] = []
        self.w_base: list[int] = []
        self.w_slot: list[int] = []
        self.w_ops: list = []
        self.w_opnds: list = []
        self.w_loads: list = []
        self.w_stores: list = []
        self.w_len: list[int] = []
        self.w_banks2: list[tuple] = []
        self.w_banks3: list[tuple] = []

        self.nsched = config.num_schedulers
        self.sched_warps: list[list[int]] = [[] for _ in range(self.nsched)]
        self.sched_greedy: list[int] = [-1] * self.nsched
        self.sched_hint: list[float] = [0.0] * self.nsched
        self.sched_hint_valid: list[bool] = [False] * self.nsched

        self.ctas: dict[int, tuple] = {}
        self.next_slot = 0
        self.warps_per_cta = kernel.warps_per_cta
        self.regs_per_cta = kernel.warp_registers_per_cta
        self.regs_per_warp = kernel.warp_registers_per_warp

        num_regs = config.register_file_bytes // 128
        self.rf_owner: list[Optional[int]] = [None] * num_regs
        self.rf_banks = config.register_banks
        self.rf_ports = config.register_bank_ports
        self.rf_win: list[int] = [-1, 0]
        self.bank_epoch = [-1] * self.rf_banks
        self.bank_cnt = [0] * self.rf_banks
        self.rf_stat: list[int] = [0, 0, 0]

        self.l1_num_sets = config.l1_size_bytes // (config.l1_assoc * config.l1_line_bytes)
        self.l1_sets: list[dict] = [dict() for _ in range(self.l1_num_sets)]
        self.l1_assoc = config.l1_assoc
        self.l1_ever: set[int] = set()
        self.l1_evictions = 0
        self.l1_cold = 0
        self.l1_write_hits = 0
        self.l1_write_misses = 0
        self.mshr: dict[int, list[int]] = {}
        self.mshr_capacity = config.l1_mshrs
        self.mshr_stalls = 0
        self.fill_gen = 0
        self.w_sgen: list[int] = []
        self.w_smargin: list[int] = []

        self.events: list[tuple] = []
        self.eseq = 0

        self.alu_latency = config.alu_latency
        self.l1_hit_latency = config.l1_hit_latency
        self.max_outstanding = config.max_outstanding_loads

        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.l1_hits = 0
        self.l1_misses = 0
        self.mem_requests = 0
        self.cta_dirty = False
        self.truncated = False
        self.final_cycle = 0

        self.occupancy_limit = SM.hardware_occupancy(config, kernel)
        if max_concurrent_ctas is not None:
            self.occupancy_limit = min(self.occupancy_limit, max_concurrent_ctas)
        while len(self.ctas) < self.occupancy_limit:
            if not self._launch_next_cta():
                break

    # ------------------------------------------------------------------
    # CTA lifecycle
    # ------------------------------------------------------------------
    def _allocate_registers(self, num_regs: int, owner: int) -> Optional[range]:
        # First-fit over free runs, identical to RegisterFile.allocate.
        rf_owner = self.rf_owner
        run_start = None
        run_len = 0
        for idx in range(len(rf_owner)):
            if rf_owner[idx] is None:
                if run_start is None:
                    run_start = idx
                run_len += 1
                if run_len == num_regs:
                    rng = range(run_start, run_start + num_regs)
                    for r in rng:
                        rf_owner[r] = owner
                    return rng
            else:
                run_start = None
                run_len = 0
        return None

    def _launch_next_cta(self) -> bool:
        self.cta_dirty = True
        hint_valid = self.sched_hint_valid
        for s in range(self.nsched):
            hint_valid[s] = False
        grid_id = self.cta_source()
        if grid_id is None:
            return False
        slot = self.next_slot
        self.next_slot += 1
        regs = self._allocate_registers(self.regs_per_cta, owner=slot)
        if regs is None:
            raise RuntimeError(
                f"SM{self.sm_id}: register allocation failed for CTA slot {slot}"
            )
        # Launch-time register token writes: the token values are
        # unobservable here, but each write accounts one bank access at
        # cycle -1 — launches bursting within one window do produce
        # bank conflicts, exactly as in RegisterFile.write.
        nb = self.rf_banks
        ports = self.rf_ports
        rf_win = self.rf_win
        epoch = rf_win[1]
        if rf_win[0] != -1:
            rf_win[0] = -1
            rf_win[1] = epoch = epoch + 1
        bank_epoch = self.bank_epoch
        bank_cnt = self.bank_cnt
        conflicts = 0
        for r in regs:
            bank = r % nb
            if bank_epoch[bank] != epoch:
                bank_epoch[bank] = epoch
                bank_cnt[bank] = 1
            else:
                c = bank_cnt[bank]
                if c >= ports:
                    conflicts += 1
                bank_cnt[bank] = c + 1
        rf_stat = self.rf_stat
        rf_stat[_RF_CONFLICTS] += conflicts
        rf_stat[_RF_WRITES] += len(regs)

        streams = self.compiled.warp_streams(grid_id)
        wpc = self.warps_per_cta
        nsched = self.nsched
        base0 = regs.start
        rpw = self.regs_per_warp
        w_state = self.w_state
        warp_ids = []
        for w in range(wpc):
            warp_id = slot * wpc + w
            ops, opnds, lds, sts = streams[w]
            while len(w_state) <= warp_id:
                self._grow_warp_arrays()
            self.w_ops[warp_id] = ops
            self.w_opnds[warp_id] = opnds
            self.w_loads[warp_id] = lds
            self.w_stores[warp_id] = sts
            self.w_len[warp_id] = len(ops)
            if ops:
                w_state[warp_id] = _READY
                self.w_rc[warp_id] = 0
            else:
                w_state[warp_id] = _FINISHED
                self.w_rc[warp_id] = _INF
            self.w_sgen[warp_id] = -1
            self.w_smargin[warp_id] = 0
            self.w_pend[warp_id] = 0
            self.w_ip[warp_id] = 0
            self.w_lp[warp_id] = 0
            self.w_sp[warp_id] = 0
            base = base0 + w * rpw
            self.w_base[warp_id] = base
            self.w_slot[warp_id] = slot
            self.w_banks2[warp_id] = (base % nb, (base + 1) % nb)
            self.w_banks3[warp_id] = (base % nb, (base + 1) % nb, (base + 2) % nb)
            self.sched_warps[warp_id % nsched].append(warp_id)
            warp_ids.append(warp_id)
        self.ctas[slot] = (warp_ids, regs)
        return True

    def _grow_warp_arrays(self) -> None:
        self.w_state.append(_FINISHED)
        self.w_rc.append(_INF)
        self.w_sgen.append(-1)
        self.w_smargin.append(0)
        self.w_pend.append(0)
        self.w_ip.append(0)
        self.w_lp.append(0)
        self.w_sp.append(0)
        self.w_base.append(0)
        self.w_slot.append(-1)
        self.w_ops.append(())
        self.w_opnds.append(())
        self.w_loads.append(())
        self.w_stores.append(())
        self.w_len.append(0)
        self.w_banks2.append(())
        self.w_banks3.append(())

    def _complete_cta(self, slot: int) -> None:
        self.cta_dirty = True
        hint_valid = self.sched_hint_valid
        for s in range(self.nsched):
            hint_valid[s] = False
        warp_ids, regs = self.ctas.pop(slot)
        rf_owner = self.rf_owner
        for r in regs:
            rf_owner[r] = None
        w_state = self.w_state
        sched_warps = self.sched_warps
        greedy = self.sched_greedy
        for s in range(self.nsched):
            sched_warps[s] = [w for w in sched_warps[s] if w_state[w] != _FINISHED]
            g = greedy[s]
            if g >= 0 and w_state[g] == _FINISHED:
                greedy[s] = -1
        self._launch_next_cta()

    # ------------------------------------------------------------------
    # Operand bank accounting (RegisterFile.account_operand_traffic)
    # ------------------------------------------------------------------
    def _account(self, num_operands: int, base: int, cycle: int) -> None:
        rf_win = self.rf_win
        epoch = rf_win[1]
        if cycle != rf_win[0]:
            rf_win[0] = cycle
            rf_win[1] = epoch = epoch + 1
        nb = self.rf_banks
        ports = self.rf_ports
        bank_epoch = self.bank_epoch
        bank_cnt = self.bank_cnt
        rf_stat = self.rf_stat
        for i in range(num_operands):
            bank = (base + i) % nb
            if bank_epoch[bank] != epoch:
                bank_epoch[bank] = epoch
                bank_cnt[bank] = 1
            else:
                c = bank_cnt[bank]
                if c >= ports:
                    rf_stat[_RF_CONFLICTS] += 1
                bank_cnt[bank] = c + 1
        rf_stat[_RF_READS] += num_operands

    # ------------------------------------------------------------------
    # The SM coroutine: fused tick loop over the SM-local clock
    # ------------------------------------------------------------------
    def run_gen(self, max_cycles: int):
        """Run this SM to completion as a coroutine.

        Yields the current cycle immediately before every interaction
        with shared device state — an L2/DRAM access (load-miss fetch,
        store write-through) or a CTA fetch from the grid dispenser —
        and performs that interaction right after being resumed. The
        device coordinator resumes coroutines in global
        ``(cycle, sm_id)`` order, which reproduces the object engine's
        interleaving of shared-state mutations exactly; everything else
        the SM touches is private, so between sync points it may run
        arbitrarily far ahead of its siblings (see the module docstring
        for why the tick times themselves are SM-local).

        All hot state is bound into frame locals once, for the whole
        run; every bound object is mutated in place (never rebound), so
        the references stay valid across the CTA-lifecycle calls.
        ``sched_warps`` inner lists ARE rebound by ``_complete_cta`` —
        indexed via the outer list each time. Scalar counters live as
        plain locals and are written back in the ``finally`` block.
        """
        events = self.events
        w_state = self.w_state
        w_rc = self.w_rc
        w_pend = self.w_pend
        w_ip = self.w_ip
        w_lp = self.w_lp
        w_sp = self.w_sp
        w_base = self.w_base
        w_slot = self.w_slot
        w_ops = self.w_ops
        w_opnds = self.w_opnds
        w_loads = self.w_loads
        w_stores = self.w_stores
        w_len = self.w_len
        w_banks2 = self.w_banks2
        w_banks3 = self.w_banks3
        w_sgen = self.w_sgen
        w_smargin = self.w_smargin
        nsched = self.nsched
        scheds = range(nsched)
        sched_warps = self.sched_warps
        greedy = self.sched_greedy
        cached_hint = self.sched_hint
        hint_valid = self.sched_hint_valid
        ctas = self.ctas
        mshr = self.mshr
        mshr_capacity = self.mshr_capacity
        l1_sets = self.l1_sets
        num_sets = self.l1_num_sets
        l1_assoc = self.l1_assoc
        l1_ever = self.l1_ever
        rf_win = self.rf_win
        bank_epoch = self.bank_epoch
        bank_cnt = self.bank_cnt
        rf_stat = self.rf_stat
        rf_ports = self.rf_ports
        nb = self.rf_banks
        alu_latency = self.alu_latency
        hit_latency = self.l1_hit_latency
        max_out = self.max_outstanding
        memory = self.memory
        fetch_line = memory.fetch_line
        write_line = memory.write_line
        heappush = heapq.heappush
        heappop = heapq.heappop

        instructions = 0
        loads = 0
        stores = 0
        l1_hits = 0
        l1_misses = 0
        l1_cold = 0
        l1_wh = 0
        l1_wm = 0
        l1_evictions = 0
        mem_requests = 0
        mshr_stalls = 0
        eseq = self.eseq
        fill_gen = self.fill_gen

        if not ctas and not events:
            return

        t = 0
        h: float = 0
        dirty = False
        try:
            while True:
                cycle = t + 1
                if h > cycle:
                    cycle = h
                if cycle > max_cycles:
                    self.truncated = True
                    break
                t = cycle

                # ---- event delivery ----
                if events and events[0][0] <= cycle:
                    while True:
                        ready, _, kind, payload = heappop(events)
                        if kind == _EV_WAKE:
                            pend = w_pend[payload] - 1
                            if pend < 0:
                                raise RuntimeError(
                                    "memory response for warp with none pending"
                                )
                            w_pend[payload] = pend
                            if w_state[payload] == _BLOCKED and pend < max_out:
                                w_state[payload] = _READY
                                w_rc[payload] = ready
                                hint_valid[payload % nsched] = False
                        else:  # _EV_FILL
                            # The only event that can improve MSHR
                            # admission: age every stall certificate.
                            fill_gen += 1
                            waiters = mshr.pop(payload, ())
                            # L1 fill (SetAssociativeCache.fill, minus
                            # CacheLine fields).
                            l1_ever.add(payload)
                            ways = l1_sets[payload % num_sets]
                            tag = payload // num_sets
                            if tag in ways:
                                del ways[tag]
                            elif len(ways) >= l1_assoc:
                                del ways[next(iter(ways))]
                                l1_evictions += 1
                            ways[tag] = True
                            for widx in waiters:
                                pend = w_pend[widx] - 1
                                if pend < 0:
                                    raise RuntimeError(
                                        "memory response for warp with none pending"
                                    )
                                w_pend[widx] = pend
                                if w_state[widx] == _BLOCKED and pend < max_out:
                                    w_state[widx] = _READY
                                    w_rc[widx] = ready
                                hint_valid[widx % nsched] = False
                        if not events or events[0][0] > cycle:
                            break

                # ---- scheduler scans + issue ----
                hint: float = _INF
                for sidx in scheds:
                    if hint_valid[sidx]:
                        ch = cached_hint[sidx]
                        if ch > cycle:
                            if ch < hint:
                                hint = ch
                            continue
                        hint_valid[sidx] = False
                    g = greedy[sidx]
                    if g >= 0 and w_rc[g] <= cycle:
                        pick = g
                        if hint > cycle:
                            for w in sched_warps[sidx]:
                                if w != g:
                                    rc = w_rc[w]
                                    if rc <= cycle:
                                        hint = cycle
                                        break
                                    if rc < hint:
                                        hint = rc
                    else:
                        pick = -1
                        sched_min: float = _INF
                        for w in sched_warps[sidx]:
                            rc = w_rc[w]
                            if rc <= cycle:
                                if pick < 0:
                                    greedy[sidx] = pick = w
                                    if hint <= cycle:
                                        break
                                else:
                                    hint = cycle
                                    break
                            elif rc < sched_min:
                                sched_min = rc
                        if sched_min < hint:
                            hint = sched_min
                        if pick < 0:
                            cached_hint[sidx] = sched_min
                            hint_valid[sidx] = True
                            continue
                    ip = w_ip[pick]
                    if ip >= w_len[pick]:
                        # Defensive, as in the object engine: a READY
                        # warp without an instruction reports as
                        # issuable.
                        hint = cycle
                        continue
                    op = w_ops[pick][ip]
                    if op == 0:  # ALU
                        instructions += 1
                        nops = w_opnds[pick][ip]
                        if nops:
                            # Inlined operand bank accounting (hottest
                            # path).
                            epoch = rf_win[1]
                            if cycle != rf_win[0]:
                                rf_win[0] = cycle
                                rf_win[1] = epoch = epoch + 1
                            if nops == 3:
                                banks = w_banks3[pick]
                            elif nops == 2:
                                banks = w_banks2[pick]
                            else:
                                base = w_base[pick]
                                banks = tuple((base + i) % nb for i in range(nops))
                            for bank in banks:
                                if bank_epoch[bank] != epoch:
                                    bank_epoch[bank] = epoch
                                    bank_cnt[bank] = 1
                                else:
                                    c = bank_cnt[bank]
                                    if c >= rf_ports:
                                        rf_stat[_RF_CONFLICTS] += 1
                                    bank_cnt[bank] = c + 1
                            rf_stat[_RF_READS] += nops
                        ip += 1
                        w_ip[pick] = ip
                        if ip >= w_len[pick]:
                            w_state[pick] = _FINISHED
                            w_rc[pick] = _INF
                        else:
                            rc = cycle + alu_latency
                            w_rc[pick] = rc
                            if rc < hint:
                                hint = rc
                    elif op == 1:  # LOAD
                        entry = w_loads[pick][w_lp[pick]]
                        if type(entry) is int:
                            addrs = (entry,)
                        else:
                            addrs = entry
                        n_addrs = len(addrs)
                        if len(mshr) + n_addrs > mshr_capacity:
                            sg = w_sgen[pick]
                            if sg >= 0 and w_smargin[pick] > fill_gen - sg:
                                # Certified: the recorded admission
                                # margin shrinks by at most one per
                                # fill (see __slots__ comment), so it
                                # still exceeds zero — fail without
                                # rescanning the addresses.
                                stalled = True
                            else:
                                # The admission verdict counts address
                                # occurrences (object semantics); the
                                # certificate margin counts distinct
                                # lines, because one admitted insert
                                # satisfies every duplicate occurrence
                                # at once but consumes one free entry.
                                needed = 0
                                dneed = 0
                                seen = None
                                for a in addrs:
                                    if (
                                        a not in mshr
                                        and (a // num_sets) not in l1_sets[a % num_sets]
                                    ):
                                        needed += 1
                                        if seen is None:
                                            seen = {a}
                                            dneed = 1
                                        elif a not in seen:
                                            seen.add(a)
                                            dneed += 1
                                free = mshr_capacity - len(mshr)
                                stalled = needed > free
                                if stalled:
                                    margin = dneed - free
                                    if margin > 0:
                                        w_sgen[pick] = fill_gen
                                        w_smargin[pick] = margin
                                    else:
                                        w_sgen[pick] = -1
                            if stalled:
                                mshr_stalls += 1
                                rc = cycle + 4
                                w_rc[pick] = rc
                                if rc < hint:
                                    hint = rc
                                continue
                        # _execute_load, inlined.
                        loads += 1
                        mem_requests += n_addrs
                        hit_ready = cycle + hit_latency
                        for a in addrs:
                            ways = l1_sets[a % num_sets]
                            tag = a // num_sets
                            if tag in ways:
                                # LRU touch: move to the end of the set
                                # dict.
                                del ways[tag]
                                ways[tag] = True
                                l1_hits += 1
                                heappush(events, (hit_ready, eseq, _EV_WAKE, pick))
                                eseq += 1
                                continue
                            if a not in l1_ever:
                                l1_cold += 1
                            l1_misses += 1
                            waiters = mshr.get(a)
                            if waiters is not None:
                                waiters.append(pick)
                            else:
                                mshr[a] = [pick]
                                yield cycle  # sync: shared L2/DRAM access
                                ready = fetch_line(a, cycle)
                                heappush(events, (ready, eseq, _EV_FILL, a))
                                eseq += 1
                        # Retire + scoreboard (Warp.block_on_memory).
                        instructions += 1
                        nops = w_opnds[pick][ip]
                        if nops:
                            epoch = rf_win[1]
                            if cycle != rf_win[0]:
                                rf_win[0] = cycle
                                rf_win[1] = epoch = epoch + 1
                            if nops == 2:
                                banks = w_banks2[pick]
                            elif nops == 3:
                                banks = w_banks3[pick]
                            else:
                                base = w_base[pick]
                                banks = tuple((base + i) % nb for i in range(nops))
                            for bank in banks:
                                if bank_epoch[bank] != epoch:
                                    bank_epoch[bank] = epoch
                                    bank_cnt[bank] = 1
                                else:
                                    c = bank_cnt[bank]
                                    if c >= rf_ports:
                                        rf_stat[_RF_CONFLICTS] += 1
                                    bank_cnt[bank] = c + 1
                            rf_stat[_RF_READS] += nops
                        ip += 1
                        w_ip[pick] = ip
                        w_lp[pick] += 1
                        state = _READY if ip < w_len[pick] else _FINISHED
                        pend = w_pend[pick] + n_addrs
                        w_pend[pick] = pend
                        if pend >= max_out:
                            state = _BLOCKED
                        w_state[pick] = state
                        if state == _READY:
                            rc = cycle + 1
                            w_rc[pick] = rc
                            if rc < hint:
                                hint = rc
                        else:
                            w_rc[pick] = _INF
                    elif op == 2:  # STORE
                        entry = w_stores[pick][w_sp[pick]]
                        if type(entry) is int:
                            addrs = (entry,)
                        else:
                            addrs = entry
                        stores += 1
                        for a in addrs:
                            mem_requests += 1
                            # L1 write_access: write-evict on hit,
                            # no-allocate.
                            ways = l1_sets[a % num_sets]
                            tag = a // num_sets
                            if tag in ways:
                                del ways[tag]
                                l1_wh += 1
                            else:
                                l1_wm += 1
                            yield cycle  # sync: shared L2/DRAM access
                            write_line(a, cycle)
                        instructions += 1
                        nops = w_opnds[pick][ip]
                        if nops:
                            self._account(nops, w_base[pick], cycle)
                        ip += 1
                        w_ip[pick] = ip
                        w_sp[pick] += 1
                        if ip >= w_len[pick]:
                            w_state[pick] = _FINISHED
                            w_rc[pick] = _INF
                        else:
                            w_rc[pick] = rc = cycle + 1
                            if rc < hint:
                                hint = rc
                    else:  # EXIT
                        instructions += 1
                        nops = w_opnds[pick][ip]
                        if nops:
                            self._account(nops, w_base[pick], cycle)
                        w_ip[pick] = ip + 1
                        w_state[pick] = _FINISHED
                        w_rc[pick] = _INF
                        slot = w_slot[pick]
                        cta = ctas.get(slot)
                        if cta is not None:
                            for w in cta[0]:
                                if w_state[w] != _FINISHED:
                                    break
                            else:
                                yield cycle  # sync: grid CTA dispenser
                                self._complete_cta(slot)
                                dirty = True

                # ---- next own-clock hint ----
                if dirty:
                    dirty = False
                    h = self.next_event_cycle(cycle)
                    if h == _INF:
                        break
                else:
                    if events:
                        first = events[0][0]
                        if first < hint:
                            hint = first
                    elif not ctas:
                        break
                    h = hint if hint != _INF else cycle + 1
        finally:
            self.instructions = instructions
            self.loads = loads
            self.stores = stores
            self.l1_hits = l1_hits
            self.l1_misses = l1_misses
            self.l1_cold = l1_cold
            self.l1_write_hits = l1_wh
            self.l1_write_misses = l1_wm
            self.l1_evictions = l1_evictions
            self.mem_requests = mem_requests
            self.mshr_stalls = mshr_stalls
            self.eseq = eseq
            self.fill_gen = fill_gen
            self.final_cycle = t

    # ------------------------------------------------------------------
    # Clocking interface (mirrors SM.next_event_cycle / SM.done)
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> float:
        events = self.events
        if not self.ctas and not events:
            return _INF
        best: float = _INF
        w_rc = self.w_rc
        for sidx in range(self.nsched):
            broke = False
            for w in self.sched_warps[sidx]:
                rc = w_rc[w]
                if rc <= cycle:
                    best = cycle
                    broke = True
                    break
                if rc < best:
                    best = rc
            if broke:
                break
        if events:
            first = events[0][0]
            if first < best:
                best = first
        if best == _INF:
            best = cycle + 1
        return best

    @property
    def done(self) -> bool:
        return not self.ctas and not self.events

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def sm_stats(self) -> SMStats:
        return SMStats(
            instructions=self.instructions,
            loads=self.loads,
            stores=self.stores,
            l1_hits=self.l1_hits,
            l1_misses=self.l1_misses,
            victim_hits=0,
            bypasses=0,
            mem_requests=self.mem_requests,
            cycles=self.final_cycle,
        )

    def l1_stats(self) -> CacheStats:
        # Baseline invariant: cache-level hits/misses equal the
        # SM-level l1_hits/l1_misses (no victim path, no bypasses).
        return CacheStats(
            hits=self.l1_hits,
            misses=self.l1_misses,
            cold_misses=self.l1_cold,
            capacity_conflict_misses=self.l1_misses - self.l1_cold,
            evictions=self.l1_evictions,
            write_hits=self.l1_write_hits,
            write_misses=self.l1_write_misses,
        )

    def rf_stats(self) -> RegisterFileStats:
        return RegisterFileStats(
            reads=self.rf_stat[_RF_READS],
            writes=self.rf_stat[_RF_WRITES],
            bank_conflicts=self.rf_stat[_RF_CONFLICTS],
        )

    def snapshot(self) -> SMSnapshot:
        config = self.config
        return SMSnapshot(
            sm_id=self.sm_id,
            done=self.done,
            l1=L1Snapshot(
                num_sets=self.l1_num_sets,
                size_bytes=self.l1_num_sets * self.l1_assoc * config.l1_line_bytes,
                assoc=self.l1_assoc,
            ),
        )


class VectorGPU:
    """Whole-device coordinator over :class:`VectorSM` coroutines.

    Mirrors ``GPU.run``'s observable behaviour without its global tick
    heap: each SM free-runs on its own clock (exact — see the module
    docstring) and blocks at shared-state sync points, which the
    coordinator commits in global ``(cycle, sm_id)`` order.
    """

    def __init__(
        self,
        config: SimulationConfig,
        kernel: KernelTrace,
        max_concurrent_ctas: Optional[int] = None,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.memory = _VectorMemory(config.gpu)
        self._next_grid_cta = 0
        compiled = CompiledKernel(kernel)

        def cta_source() -> Optional[int]:
            if self._next_grid_cta >= kernel.num_ctas:
                return None
            cta = self._next_grid_cta
            self._next_grid_cta += 1
            return cta

        self.sms = [
            VectorSM(
                sm_id=i,
                config=config.gpu,
                kernel=kernel,
                memory=self.memory,
                cta_source=cta_source,
                compiled=compiled,
                max_concurrent_ctas=max_concurrent_ctas,
            )
            for i in range(config.gpu.num_sms)
        ]

    def run(self) -> SimulationResult:
        max_cycles = self.config.max_cycles
        sms = self.sms
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # Advance every SM to its first sync point, then commit
            # sync points in (cycle, sm_id) order. Once a single SM
            # remains there is nothing to order against — drain it.
            pending: list[tuple] = []
            for sm in sms:
                gen = sm.run_gen(max_cycles)
                try:
                    c = next(gen)
                except StopIteration:
                    continue
                pending.append((c, sm.sm_id, gen))
            heapq.heapify(pending)
            heappush, heappop = heapq.heappush, heapq.heappop
            while len(pending) > 1:
                c, sm_id, gen = heappop(pending)
                try:
                    c = next(gen)
                except StopIteration:
                    continue
                heappush(pending, (c, sm_id, gen))
            if pending:
                for _ in pending[0][2]:
                    pass
        finally:
            if gc_was_enabled:
                gc.enable()
        if any(sm.truncated for sm in sms):
            cycle = max_cycles
        else:
            cycle = max((sm.final_cycle for sm in sms), default=0)
        memory = self.memory
        traffic = TrafficStats(
            demand_read_lines=memory.demand_read_lines,
            store_write_lines=memory.store_write_lines,
            backup_write_lines=0,
            restore_read_lines=0,
        )
        for sm in sms:
            sm.final_cycle = cycle
        return SimulationResult(
            kernel_name=self.kernel.name,
            cycles=cycle,
            sm_stats=[sm.sm_stats() for sm in sms],
            traffic=traffic,
            dram_reads=memory.dram_reads,
            dram_writes=memory.dram_writes,
            l1_stats=[sm.l1_stats() for sm in sms],
            rf_stats=[sm.rf_stats() for sm in sms],
            extensions=[ExtensionSnapshot(kind="SMExtension") for _ in sms],
            sms=[sm.snapshot() for sm in sms],
        )
