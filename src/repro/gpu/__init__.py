"""GPU execution substrate: SMs, warps, CTAs, GTO schedulers, banked
register file, and the whole-device clock loop."""

from repro.gpu.extension import SMExtension
from repro.gpu.gpu import (
    GPU,
    SimulationResult,
    dynamically_unused_register_bytes,
    run_kernel,
    statically_unused_register_bytes,
)
from repro.gpu.isa import Instruction, Op, alu, exit_inst, hashed_pc, load, store
from repro.gpu.register_file import RegisterFile
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.sm import SM
from repro.gpu.trace import KernelTrace, from_instruction_lists
from repro.gpu.warp import Warp, WarpState

__all__ = [
    "GPU",
    "GTOScheduler",
    "Instruction",
    "KernelTrace",
    "Op",
    "RegisterFile",
    "SM",
    "SMExtension",
    "SimulationResult",
    "Warp",
    "WarpState",
    "alu",
    "dynamically_unused_register_bytes",
    "exit_inst",
    "from_instruction_lists",
    "hashed_pc",
    "load",
    "run_kernel",
    "statically_unused_register_bytes",
    "store",
]
