"""CTA (cooperative thread array) state on an SM.

A CTA occupies one of the SM's CTA slots. It owns a contiguous range of
physical warp registers and a set of warps. Linebacker's CTA manager
tracks, per slot, the active bit (ACT), the first register number
(FRN), the backup address (BA), and the backup-complete bit (C) — that
bookkeeping lives in :mod:`repro.core.cta_throttle`; this module holds
the substrate state every scheduler needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.warp import Warp


class CTAState(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"      # throttled; registers may be backed up
    FINISHED = "finished"


@dataclass(slots=True)
class CTA:
    """One resident CTA."""

    slot: int
    grid_cta_id: int
    warps: list[Warp] = field(default_factory=list)
    register_range: Optional[range] = None
    state: CTAState = CTAState.ACTIVE

    @property
    def num_registers(self) -> int:
        return len(self.register_range) if self.register_range else 0

    @property
    def first_register(self) -> Optional[int]:
        return self.register_range.start if self.register_range else None

    def all_warps_finished(self) -> bool:
        return all(w.finished for w in self.warps)

    def deactivate(self) -> None:
        self.state = CTAState.INACTIVE
        for warp in self.warps:
            warp.deactivate()

    def reactivate(self, cycle: int) -> None:
        self.state = CTAState.ACTIVE
        for warp in self.warps:
            warp.reactivate(cycle)
