"""Extension hooks for SM memory-path policies.

The baseline SM knows nothing about Linebacker, PCAL or CERF. Each of
those techniques plugs into the SM through this interface:

* Linebacker implements victim lookup/insert, per-load monitoring and
  CTA throttling (``repro.core.linebacker``).
* PCAL implements ``should_bypass`` plus token-count tuning
  (``repro.baselines.pcal``).
* CERF implements unselective register-file caching
  (``repro.baselines.cerf``).

All hooks default to no-ops so the baseline runs with a plain
:class:`SMExtension`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.memory.cache import CacheLine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.sm import SM
    from repro.gpu.warp import Warp


class SMExtension:
    """No-op policy: the baseline GPU.

    Capability flags
    ----------------
    The SM's load path is the hottest code in the simulator; calling
    four no-op hooks per load line costs more than the rest of the line
    handling. Each extension therefore advertises cheap capability
    flags the SM reads once per instruction:

    * ``wants_ticks`` — ``on_tick`` does something.
    * ``wants_load_outcomes`` — ``on_load_outcome`` does something.
    * ``has_victim_cache`` — ``lookup_victim`` can return a hit.
    * ``may_bypass`` — ``should_bypass`` can return True.
    * ``wants_store_events`` — ``on_store`` does something.
    * ``controls_fill`` — ``allocate_fill`` can return False.
    * ``wants_evictions`` — ``on_l1_eviction`` does something.
    * ``wants_timeseries`` — ``timeseries_sample`` contributes rows.

    The class defaults are ``None`` = "auto": :meth:`attach` resolves
    them by checking whether the subclass overrides the corresponding
    hook, so existing extensions (and ad-hoc test doubles) keep exactly
    their old behaviour without declaring anything. A subclass may pin
    a flag explicitly (class attribute or instance attribute set before
    ``attach``) when the override is conditionally inert — e.g.
    Linebacker with ``enable_victim_cache=False``.
    """

    wants_ticks: "bool | None" = None
    wants_load_outcomes: "bool | None" = None
    has_victim_cache: "bool | None" = None
    may_bypass: "bool | None" = None
    wants_store_events: "bool | None" = None
    controls_fill: "bool | None" = None
    wants_evictions: "bool | None" = None
    wants_timeseries: "bool | None" = None

    def attach(self, sm: "SM") -> None:
        """Called once when the SM is constructed."""
        self.sm = sm
        base = SMExtension
        cls = type(self)
        if self.wants_ticks is None:
            self.wants_ticks = cls.on_tick is not base.on_tick
        if self.wants_load_outcomes is None:
            self.wants_load_outcomes = cls.on_load_outcome is not base.on_load_outcome
        if self.has_victim_cache is None:
            self.has_victim_cache = cls.lookup_victim is not base.lookup_victim
        if self.may_bypass is None:
            self.may_bypass = cls.should_bypass is not base.should_bypass
        if self.wants_store_events is None:
            self.wants_store_events = cls.on_store is not base.on_store
        if self.controls_fill is None:
            self.controls_fill = cls.allocate_fill is not base.allocate_fill
        if self.wants_evictions is None:
            self.wants_evictions = cls.on_l1_eviction is not base.on_l1_eviction
        if self.wants_timeseries is None:
            self.wants_timeseries = cls.timeseries_sample is not base.timeseries_sample

    # -- per-cycle / windowing -------------------------------------------
    def on_tick(self, cycle: int) -> None:
        """Called at every SM tick (after responses, before issue)."""

    def timeseries_sample(self, cycle: int) -> dict:
        """Extra key/value pairs merged into the SM's timeseries row at
        the window boundary ending at ``cycle``. Only called when the
        run records timeseries (``run_kernel(..., timeseries=True)``)."""
        return {}

    # -- memory path -------------------------------------------------------
    def should_bypass(self, warp: "Warp", line_addr: int, cycle: int) -> bool:
        """PCAL hook: route this load around the L1 (no allocate)."""
        return False

    def lookup_victim(self, line_addr: int, hpc: int, cycle: int) -> Optional[int]:
        """After an L1 miss: return the extra latency of a victim-cache
        hit (VTT search + register read), or None on victim miss."""
        return None

    def on_l1_eviction(self, line_addr: int, line: CacheLine, cycle: int) -> None:
        """An L1 line was replaced; Linebacker may preserve it."""

    def on_load_outcome(
        self,
        pc: int,
        hpc: int,
        line_addr: int,
        hit: bool,
        cycle: int,
        warp: "Warp | None" = None,
    ) -> None:
        """Per-load monitoring: ``hit`` covers L1 *or* victim-tag hits.
        ``warp`` is the issuer (CCWS keys lost-locality on it)."""

    def on_store(self, line_addr: int, cycle: int) -> None:
        """A store was executed; victim copies must be invalidated."""

    def allocate_fill(self, line_addr: int) -> bool:
        """Whether a returning miss should be allocated in L1."""
        return True

    # -- CTA lifecycle -----------------------------------------------------
    def on_cta_launched(self, slot: int, cycle: int) -> None:
        """A CTA was placed in ``slot`` and its registers allocated."""

    def on_cta_finished(self, slot: int, cycle: int) -> None:
        """The CTA in ``slot`` retired all warps (registers still held)."""

    def try_reactivate_cta(self, cycle: int) -> bool:
        """Give the policy a chance to re-schedule a throttled CTA
        before the SM launches a fresh one. Returns True when a CTA
        was (or is being) reactivated."""
        return False

    # -- end of simulation ---------------------------------------------------
    def finalize(self, cycle: int) -> None:
        """Called once when the SM drains."""
