"""Whole-GPU model: SMs sharing one memory subsystem, plus the kernel
launcher that distributes the CTA grid across SMs.

The global loop advances a shared clock to the earliest interesting
cycle across SMs (each SM fast-forwards through cycles where no warp
can issue), which keeps memory-bound simulation tractable in Python.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import WARP_REGISTER_BYTES, GPUConfig, SimulationConfig
from repro.gpu.extension import SMExtension
from repro.options import RunOptions
from repro.gpu.sm import SM
from repro.gpu.snapshot import snapshot_extension, snapshot_sm
from repro.gpu.stats import SMStats
from repro.gpu.trace import KernelTrace
from repro.memory.subsystem import MemorySubsystem, TrafficStats

#: Builds one extension instance per SM (policies keep per-SM state).
ExtensionFactory = Callable[[], SMExtension]


@dataclass
class SimulationResult:
    """Outcome of one kernel simulation."""

    kernel_name: str
    cycles: int
    sm_stats: list[SMStats]
    traffic: TrafficStats
    dram_reads: int
    dram_writes: int
    l1_stats: list
    rf_stats: list
    extensions: list[SMExtension]
    sms: list[SM] = field(default_factory=list, repr=False)

    @property
    def timeseries(self) -> "list | None":
        """Per-SM :class:`~repro.metrics.WindowSeries` list, or None
        when the run did not record timeseries. Works on both live SMs
        and snapshots."""
        series = [getattr(sm, "timeseries", None) for sm in self.sms]
        if any(s is not None for s in series):
            return series
        return None

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.sm_stats)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_ratio(self) -> float:
        hits = sum(s.l1_hits for s in self.sm_stats)
        total = sum(
            s.l1_hits + s.l1_misses + s.victim_hits + s.bypasses for s in self.sm_stats
        )
        return hits / total if total else 0.0

    @property
    def victim_hit_ratio(self) -> float:
        """Fraction of requests served from the register file (Fig 13)."""
        reg = sum(s.victim_hits for s in self.sm_stats)
        total = sum(
            s.l1_hits + s.l1_misses + s.victim_hits + s.bypasses for s in self.sm_stats
        )
        return reg / total if total else 0.0

    @property
    def request_breakdown(self) -> dict[str, float]:
        """GPU-wide Figure 13 breakdown."""
        keys = ("hit", "miss", "bypass", "reg_hit")
        sums = dict.fromkeys(keys, 0)
        for s in self.sm_stats:
            sums["hit"] += s.l1_hits
            sums["miss"] += s.l1_misses
            sums["bypass"] += s.bypasses
            sums["reg_hit"] += s.victim_hits
        total = sum(sums.values())
        if total == 0:
            return dict.fromkeys(keys, 0.0)
        return {k: v / total for k, v in sums.items()}

    @property
    def bank_conflicts(self) -> int:
        return sum(rf.bank_conflicts for rf in self.rf_stats)

    @property
    def cold_miss_ratio(self) -> float:
        accesses = sum(c.accesses for c in self.l1_stats)
        cold = sum(c.cold_misses for c in self.l1_stats)
        return cold / accesses if accesses else 0.0

    @property
    def capacity_conflict_miss_ratio(self) -> float:
        accesses = sum(c.accesses for c in self.l1_stats)
        cc = sum(c.capacity_conflict_misses for c in self.l1_stats)
        return cc / accesses if accesses else 0.0


class GPU:
    """The full device: N SMs over a shared L2/DRAM."""

    def __init__(
        self,
        config: SimulationConfig,
        kernel: KernelTrace,
        extension_factory: Optional[ExtensionFactory] = None,
        max_concurrent_ctas: Optional[int] = None,
        track_loads: bool = False,
        timeseries: bool = False,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.memory = MemorySubsystem(config.gpu)
        self._next_grid_cta = 0

        def cta_source() -> Optional[int]:
            if self._next_grid_cta >= kernel.num_ctas:
                return None
            cta = self._next_grid_cta
            self._next_grid_cta += 1
            return cta

        self.sms = [
            SM(
                sm_id=i,
                config=config.gpu,
                kernel=kernel,
                memory=self.memory,
                cta_source=cta_source,
                extension=extension_factory() if extension_factory else None,
                max_concurrent_ctas=max_concurrent_ctas,
                track_loads=track_loads,
                load_window=config.linebacker.window_cycles,
                record_timeseries=timeseries,
            )
            for i in range(config.gpu.num_sms)
        ]

    def run(self, keep_objects: bool = True) -> SimulationResult:
        """Run the kernel to completion (or the cycle cap).

        Each SM caches its next interesting cycle ("hint"); an SM is
        only ticked when the global clock reaches its hint, so fully
        stalled SMs cost nothing per cycle. Hints can only change when
        the owning SM ticks (all of an SM's events live on its own
        heap), which makes the caching sound.

        The hints live on a min-heap of ``(hint, sm_id)`` so advancing
        the clock is O(log SMs) instead of a dict scan per iteration.
        Every SM holds exactly one live heap entry (its entry is popped
        before it ticks and re-pushed after), so entries never go
        stale; a finished SM simply is not re-pushed. Due SMs are
        ticked in ascending ``sm_id`` order — the same order the old
        dict scan used — because tick order is visible through the
        shared L2/DRAM timing state.

        ``keep_objects=False`` returns a result carrying lightweight
        SM/extension snapshots instead of the live object graph.
        """
        cycle = 0
        max_cycles = self.config.max_cycles
        # SMs are constructed with sm_id == index, so the list doubles
        # as the id -> SM map.
        sms = self.sms
        heap = [(0.0, sm.sm_id) for sm in sms if not sm.done]
        heapq.heapify(heap)
        heappush, heappop = heapq.heappush, heapq.heappop
        inf = float("inf")
        # The run loop allocates heavily (instructions, event tuples,
        # cache lines) but creates no cycles that must die mid-run, so
        # the generational collector only adds pauses — pause it for
        # the duration and restore the caller's setting after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_loop(cycle, max_cycles, sms, heap, heappush, heappop, inf)
        finally:
            if gc_was_enabled:
                gc.enable()
        cycle = self._final_cycle
        for sm in self.sms:
            sm.finalize(cycle)
        return SimulationResult(
            kernel_name=self.kernel.name,
            cycles=cycle,
            sm_stats=[sm.stats for sm in self.sms],
            traffic=self.memory.traffic,
            dram_reads=self.memory.dram.stats.reads,
            dram_writes=self.memory.dram.stats.writes,
            l1_stats=[sm.l1.stats for sm in self.sms],
            rf_stats=[sm.register_file.stats for sm in self.sms],
            extensions=(
                [sm.extension for sm in self.sms]
                if keep_objects
                else [snapshot_extension(sm.extension) for sm in self.sms]
            ),
            sms=(
                list(self.sms)
                if keep_objects
                else [snapshot_sm(sm) for sm in self.sms]
            ),
        )

    def _run_loop(self, cycle, max_cycles, sms, heap, heappush, heappop, inf):
        while heap and cycle < max_cycles:
            next_cycle = heap[0][0]
            if next_cycle == inf:
                break
            cycle = max(cycle + 1, int(next_cycle))
            if cycle > max_cycles:
                cycle = max_cycles
                break
            first_id = heappop(heap)[1]
            if not heap or heap[0][0] > cycle:
                # Fast path: exactly one SM due, no ordering concerns.
                sm = sms[first_id]
                hint = sm.tick(cycle)
                if not sm.done:
                    if hint is None:
                        hint = sm.next_event_cycle(cycle)
                    heappush(heap, (hint, first_id))
                continue
            due = [first_id]
            while heap and heap[0][0] <= cycle:
                due.append(heappop(heap)[1])
            due.sort()
            for sm_id in due:
                sm = sms[sm_id]
                hint = sm.tick(cycle)
                if not sm.done:
                    if hint is None:
                        hint = sm.next_event_cycle(cycle)
                    heappush(heap, (hint, sm_id))
        self._final_cycle = cycle


def statically_unused_register_bytes(config: GPUConfig, kernel: KernelTrace) -> int:
    """SUR: register space no CTA ever occupies at full occupancy."""
    occupancy = SM.hardware_occupancy(config, kernel)
    used = occupancy * kernel.warp_registers_per_cta * WARP_REGISTER_BYTES
    return max(0, config.register_file_bytes - used)


def dynamically_unused_register_bytes(
    config: GPUConfig, kernel: KernelTrace, active_ctas: int
) -> int:
    """DUR: register space of CTAs a throttling scheme keeps inactive."""
    occupancy = SM.hardware_occupancy(config, kernel)
    inactive = max(0, occupancy - active_ctas)
    return inactive * kernel.warp_registers_per_cta * WARP_REGISTER_BYTES


def run_kernel(
    config: SimulationConfig,
    kernel: KernelTrace,
    extension_factory: Optional[ExtensionFactory] = None,
    max_concurrent_ctas: Optional[int] = None,
    track_loads: bool = False,
    keep_objects: bool = False,
    timeseries: bool = False,
    backend: Optional[str] = None,
    options: Optional[RunOptions] = None,
) -> SimulationResult:
    """Convenience wrapper: run one kernel on the selected backend.

    The canonical knob surface is ``options=RunOptions(...)``; the
    individual keywords remain as a compatibility shim for one release
    and may not be combined with ``options`` (ambiguous intent raises
    ``TypeError``).

    ``backend`` (or ``options.backend``) picks the execution engine;
    ``None`` means the default ``object`` engine. A backend that cannot
    run the request exactly falls back to ``object`` with a
    :class:`~repro.engine.base.BackendFallbackWarning`.

    By default the result carries SM/extension *snapshots* (every
    statistic, the load tracker, Linebacker's monitor/VTT) rather than
    the live simulator graph, so sweeps holding thousands of results
    don't keep every SM — and through it the whole memory hierarchy —
    alive. Pass ``keep_objects=True`` to retain the live SMs and
    extensions (tests that poke at MSHRs or register files need this);
    the GPU object itself is discarded either way.
    """
    if options is None:
        options = RunOptions(
            track_loads=track_loads,
            keep_objects=keep_objects,
            timeseries=timeseries,
            max_concurrent_ctas=max_concurrent_ctas,
            backend=backend,
        )
    elif (
        track_loads or keep_objects or timeseries
        or max_concurrent_ctas is not None
        or backend is not None
    ):
        raise TypeError(
            "run_kernel: pass either options=RunOptions(...) or the "
            "legacy keywords, not both"
        )
    # Imported lazily: repro.engine registers backends whose object
    # implementation imports this module (acyclic at import time).
    from repro.engine import EngineRequest, dispatch

    request = EngineRequest(
        config=config,
        kernel=kernel,
        extension_factory=extension_factory,
        max_concurrent_ctas=options.max_concurrent_ctas,
        track_loads=options.track_loads,
        keep_objects=options.keep_objects,
        timeseries=options.timeseries,
    )
    return dispatch(options.backend, request)
