"""Whole-GPU model: SMs sharing one memory subsystem, plus the kernel
launcher that distributes the CTA grid across SMs.

The global loop advances a shared clock to the earliest interesting
cycle across SMs (each SM fast-forwards through cycles where no warp
can issue), which keeps memory-bound simulation tractable in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import WARP_REGISTER_BYTES, GPUConfig, SimulationConfig
from repro.gpu.extension import SMExtension
from repro.gpu.sm import SM
from repro.gpu.stats import SMStats
from repro.gpu.trace import KernelTrace
from repro.memory.subsystem import MemorySubsystem, TrafficStats

#: Builds one extension instance per SM (policies keep per-SM state).
ExtensionFactory = Callable[[], SMExtension]


@dataclass
class SimulationResult:
    """Outcome of one kernel simulation."""

    kernel_name: str
    cycles: int
    sm_stats: list[SMStats]
    traffic: TrafficStats
    dram_reads: int
    dram_writes: int
    l1_stats: list
    rf_stats: list
    extensions: list[SMExtension]
    sms: list[SM] = field(default_factory=list, repr=False)

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.sm_stats)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_ratio(self) -> float:
        hits = sum(s.l1_hits for s in self.sm_stats)
        total = sum(
            s.l1_hits + s.l1_misses + s.victim_hits + s.bypasses for s in self.sm_stats
        )
        return hits / total if total else 0.0

    @property
    def victim_hit_ratio(self) -> float:
        """Fraction of requests served from the register file (Fig 13)."""
        reg = sum(s.victim_hits for s in self.sm_stats)
        total = sum(
            s.l1_hits + s.l1_misses + s.victim_hits + s.bypasses for s in self.sm_stats
        )
        return reg / total if total else 0.0

    @property
    def request_breakdown(self) -> dict[str, float]:
        """GPU-wide Figure 13 breakdown."""
        keys = ("hit", "miss", "bypass", "reg_hit")
        sums = dict.fromkeys(keys, 0)
        for s in self.sm_stats:
            sums["hit"] += s.l1_hits
            sums["miss"] += s.l1_misses
            sums["bypass"] += s.bypasses
            sums["reg_hit"] += s.victim_hits
        total = sum(sums.values())
        if total == 0:
            return dict.fromkeys(keys, 0.0)
        return {k: v / total for k, v in sums.items()}

    @property
    def bank_conflicts(self) -> int:
        return sum(rf.bank_conflicts for rf in self.rf_stats)

    @property
    def cold_miss_ratio(self) -> float:
        accesses = sum(c.accesses for c in self.l1_stats)
        cold = sum(c.cold_misses for c in self.l1_stats)
        return cold / accesses if accesses else 0.0

    @property
    def capacity_conflict_miss_ratio(self) -> float:
        accesses = sum(c.accesses for c in self.l1_stats)
        cc = sum(c.capacity_conflict_misses for c in self.l1_stats)
        return cc / accesses if accesses else 0.0


class GPU:
    """The full device: N SMs over a shared L2/DRAM."""

    def __init__(
        self,
        config: SimulationConfig,
        kernel: KernelTrace,
        extension_factory: Optional[ExtensionFactory] = None,
        max_concurrent_ctas: Optional[int] = None,
        track_loads: bool = False,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.memory = MemorySubsystem(config.gpu)
        self._next_grid_cta = 0

        def cta_source() -> Optional[int]:
            if self._next_grid_cta >= kernel.num_ctas:
                return None
            cta = self._next_grid_cta
            self._next_grid_cta += 1
            return cta

        self.sms = [
            SM(
                sm_id=i,
                config=config.gpu,
                kernel=kernel,
                memory=self.memory,
                cta_source=cta_source,
                extension=extension_factory() if extension_factory else None,
                max_concurrent_ctas=max_concurrent_ctas,
                track_loads=track_loads,
                load_window=config.linebacker.window_cycles,
            )
            for i in range(config.gpu.num_sms)
        ]

    def run(self) -> SimulationResult:
        """Run the kernel to completion (or the cycle cap).

        Each SM caches its next interesting cycle ("hint"); an SM is
        only ticked when the global clock reaches its hint, so fully
        stalled SMs cost nothing per cycle. Hints can only change when
        the owning SM ticks (all of an SM's events live on its own
        heap), which makes the caching sound.
        """
        cycle = 0
        max_cycles = self.config.max_cycles
        active = {sm.sm_id: sm for sm in self.sms if not sm.done}
        hints = {sm_id: 0.0 for sm_id in active}
        while active and cycle < max_cycles:
            next_cycle = min(hints.values())
            if next_cycle == float("inf"):
                break
            cycle = max(cycle + 1, int(next_cycle))
            if cycle > max_cycles:
                cycle = max_cycles
                break
            finished = []
            for sm_id, sm in active.items():
                if hints[sm_id] <= cycle:
                    sm.tick(cycle)
                    if sm.done:
                        finished.append(sm_id)
                    else:
                        hints[sm_id] = sm.next_event_cycle(cycle)
            for sm_id in finished:
                del active[sm_id]
                del hints[sm_id]
        for sm in self.sms:
            sm.finalize(cycle)
        return SimulationResult(
            kernel_name=self.kernel.name,
            cycles=cycle,
            sm_stats=[sm.stats for sm in self.sms],
            traffic=self.memory.traffic,
            dram_reads=self.memory.dram.stats.reads,
            dram_writes=self.memory.dram.stats.writes,
            l1_stats=[sm.l1.stats for sm in self.sms],
            rf_stats=[sm.register_file.stats for sm in self.sms],
            extensions=[sm.extension for sm in self.sms],
            sms=self.sms,
        )


def statically_unused_register_bytes(config: GPUConfig, kernel: KernelTrace) -> int:
    """SUR: register space no CTA ever occupies at full occupancy."""
    occupancy = SM.hardware_occupancy(config, kernel)
    used = occupancy * kernel.warp_registers_per_cta * WARP_REGISTER_BYTES
    return max(0, config.register_file_bytes - used)


def dynamically_unused_register_bytes(
    config: GPUConfig, kernel: KernelTrace, active_ctas: int
) -> int:
    """DUR: register space of CTAs a throttling scheme keeps inactive."""
    occupancy = SM.hardware_occupancy(config, kernel)
    inactive = max(0, occupancy - active_ctas)
    return inactive * kernel.warp_registers_per_cta * WARP_REGISTER_BYTES


def run_kernel(
    config: SimulationConfig,
    kernel: KernelTrace,
    extension_factory: Optional[ExtensionFactory] = None,
    max_concurrent_ctas: Optional[int] = None,
    track_loads: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a GPU and run one kernel."""
    gpu = GPU(
        config,
        kernel,
        extension_factory=extension_factory,
        max_concurrent_ctas=max_concurrent_ctas,
        track_loads=track_loads,
    )
    return gpu.run()
