"""Minimal instruction set for the trace-driven GPU model.

The simulator is trace driven: each warp executes a pre-generated
sequence of :class:`Instruction` objects. Only the properties that the
memory system and schedulers care about are modeled — opcode class,
the static PC (which identifies the static load for Linebacker's Load
Monitor), the coalesced line addresses touched by a memory operation,
and the number of register operands (which drives register-file bank
traffic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


class Op(enum.Enum):
    """Instruction classes distinguished by the pipeline model."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    EXIT = "exit"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction in a warp's trace.

    Attributes:
        op: Instruction class.
        pc: Static program counter. All dynamic instances of the same
            static instruction share a PC; Linebacker's per-load
            locality monitoring keys off this value.
        line_addrs: For LOAD/STORE, the 128-byte-aligned line addresses
            produced after coalescing the 32 lanes. A fully coalesced
            access yields one address; a divergent one yields several.
        operands: Number of register operands read/written — used by
            the register-file bank-conflict model.
        hpc: The 5-bit XOR-folded PC, precomputed at trace-build time
            so the SM's load path never hashes on issue. Derived from
            ``pc``; never pass it explicitly.
    """

    op: Op
    pc: int = 0
    line_addrs: tuple[int, ...] = ()
    operands: int = 3
    hpc: int = -1

    def __post_init__(self) -> None:
        op = self.op
        if (op is Op.LOAD or op is Op.STORE) and not self.line_addrs:
            raise ValueError(f"{op} instruction requires line addresses")
        if self.hpc < 0:
            object.__setattr__(self, "hpc", _hashed_pc_memo(self.pc))

    @property
    def is_memory(self) -> bool:
        return self.op in (Op.LOAD, Op.STORE)


#: Interned ALU/EXIT instructions: a trace yields millions of dynamic
#: ALU instances that are all identical per static PC, so the
#: generators share one frozen object instead of allocating each time.
_ALU_MEMO: dict[tuple[int, int], Instruction] = {}
_EXIT = None


def alu(pc: int = 0, operands: int = 3) -> Instruction:
    """Convenience constructor for an arithmetic instruction."""
    inst = _ALU_MEMO.get((pc, operands))
    if inst is None:
        inst = _ALU_MEMO[(pc, operands)] = Instruction(
            op=Op.ALU, pc=pc, operands=operands
        )
    return inst


def load(
    pc: int, line_addrs: Sequence[int], operands: int = 2, hpc: int = -1
) -> Instruction:
    """Convenience constructor for a global load instruction.

    ``hpc`` may be supplied by bulk generators that hoisted the
    ``hashed_pc`` of a static PC out of their emission loop; it must
    equal ``hashed_pc(pc)``.
    """
    return Instruction(
        op=Op.LOAD, pc=pc, line_addrs=tuple(line_addrs), operands=operands, hpc=hpc
    )


def store(pc: int, line_addrs: Sequence[int], operands: int = 2) -> Instruction:
    """Convenience constructor for a global store instruction."""
    return Instruction(op=Op.STORE, pc=pc, line_addrs=tuple(line_addrs), operands=operands)


def exit_inst() -> Instruction:
    """Terminates a warp's trace."""
    global _EXIT
    if _EXIT is None:
        _EXIT = Instruction(op=Op.EXIT)
    return _EXIT


def hashed_pc(pc: int, bits: int = 5) -> int:
    """XOR-fold a 32-bit PC into ``bits`` bits (paper Section 4, LM).

    The paper observes GPU kernels have very few global loads (usually
    fewer than 32), so a 5-bit XOR fold of the PC is enough to keep
    per-load behaviour separated.
    """
    if bits <= 0:
        raise ValueError("hashed PC width must be positive")
    mask = (1 << bits) - 1
    value = pc & 0xFFFFFFFF
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


#: hashed_pc memo keyed by PC: kernels have a handful of static PCs,
#: so Instruction construction pays one dict probe, not an XOR fold.
_HPC_MEMO: dict[int, int] = {}


def _hashed_pc_memo(pc: int) -> int:
    folded = _HPC_MEMO.get(pc)
    if folded is None:
        folded = _HPC_MEMO[pc] = hashed_pc(pc)
    return folded
