"""Minimal instruction set for the trace-driven GPU model.

The simulator is trace driven: each warp executes a pre-generated
sequence of :class:`Instruction` objects. Only the properties that the
memory system and schedulers care about are modeled — opcode class,
the static PC (which identifies the static load for Linebacker's Load
Monitor), the coalesced line addresses touched by a memory operation,
and the number of register operands (which drives register-file bank
traffic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


class Op(enum.Enum):
    """Instruction classes distinguished by the pipeline model."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    EXIT = "exit"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction in a warp's trace.

    Attributes:
        op: Instruction class.
        pc: Static program counter. All dynamic instances of the same
            static instruction share a PC; Linebacker's per-load
            locality monitoring keys off this value.
        line_addrs: For LOAD/STORE, the 128-byte-aligned line addresses
            produced after coalescing the 32 lanes. A fully coalesced
            access yields one address; a divergent one yields several.
        operands: Number of register operands read/written — used by
            the register-file bank-conflict model.
    """

    op: Op
    pc: int = 0
    line_addrs: tuple[int, ...] = ()
    operands: int = 3

    def __post_init__(self) -> None:
        if self.op in (Op.LOAD, Op.STORE) and not self.line_addrs:
            raise ValueError(f"{self.op} instruction requires line addresses")

    @property
    def is_memory(self) -> bool:
        return self.op in (Op.LOAD, Op.STORE)


def alu(pc: int = 0, operands: int = 3) -> Instruction:
    """Convenience constructor for an arithmetic instruction."""
    return Instruction(op=Op.ALU, pc=pc, operands=operands)


def load(pc: int, line_addrs: Sequence[int], operands: int = 2) -> Instruction:
    """Convenience constructor for a global load instruction."""
    return Instruction(op=Op.LOAD, pc=pc, line_addrs=tuple(line_addrs), operands=operands)


def store(pc: int, line_addrs: Sequence[int], operands: int = 2) -> Instruction:
    """Convenience constructor for a global store instruction."""
    return Instruction(op=Op.STORE, pc=pc, line_addrs=tuple(line_addrs), operands=operands)


def exit_inst() -> Instruction:
    """Terminates a warp's trace."""
    return Instruction(op=Op.EXIT)


def hashed_pc(pc: int, bits: int = 5) -> int:
    """XOR-fold a 32-bit PC into ``bits`` bits (paper Section 4, LM).

    The paper observes GPU kernels have very few global loads (usually
    fewer than 32), so a 5-bit XOR fold of the PC is enough to keep
    per-load behaviour separated.
    """
    if bits <= 0:
        raise ValueError("hashed PC width must be positive")
    mask = (1 << bits) - 1
    value = pc & 0xFFFFFFFF
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded
