"""Banked register file of one SM.

The 256 KB register file holds 2048 warp-wide registers (128 bytes
each — exactly one L1 cache line, the size match Linebacker exploits).
The model covers the three behaviours the paper evaluates:

* **allocation** — contiguous ranges of physical warp registers are
  assigned to CTAs at launch and freed at completion/backup, which
  determines how much register space is statically (SUR) and
  dynamically (DUR) unused;
* **contents** — each register stores an opaque token so backup/restore
  and victim-line reads can be checked for value correctness;
* **bank conflicts** — registers are interleaved across banks; accesses
  within the same cycle to the same bank beyond its port count are
  conflicts (paper Figure 16 compares CERF's and Linebacker's conflict
  counts).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config import WARP_REGISTER_BYTES
from repro.metrics import Metric, MetricSet

REGISTER_FILE_STATS = MetricSet(
    "RegisterFileStats",
    owner="gpu.register_file",
    metrics=(
        Metric("reads", description="register reads"),
        Metric("writes", description="register writes"),
        Metric("bank_conflicts", description="same-cycle bank over-subscriptions", fingerprint=True),
    ),
)

_RegisterFileStatsBase = REGISTER_FILE_STATS.build()


class RegisterFileStats(_RegisterFileStatsBase):
    __slots__ = ()


class RegisterFile:
    """Physical warp-register storage with bank-conflict accounting."""

    def __init__(self, size_bytes: int, num_banks: int = 16, ports_per_bank: int = 1) -> None:
        if size_bytes % WARP_REGISTER_BYTES != 0:
            raise ValueError("register file size must be a multiple of 128 B")
        self.num_registers = size_bytes // WARP_REGISTER_BYTES
        self.num_banks = num_banks
        self.ports_per_bank = ports_per_bank
        self._values: list[Optional[int]] = [None] * self.num_registers
        self._owner: list[Optional[int]] = [None] * self.num_registers  # CTA slot or None
        self._free_base = 0
        self.stats = RegisterFileStats()
        # Per-cycle bank usage for conflict detection.
        self._usage_cycle = -1
        self._bank_use: dict[int, int] = {}

    # -- allocation --------------------------------------------------------
    def allocate(self, num_regs: int, owner: int) -> Optional[range]:
        """Allocate ``num_regs`` contiguous registers to ``owner``.

        Uses first-fit over free runs. Returns the allocated range or
        None when no contiguous run is available.
        """
        run_start = None
        run_len = 0
        for idx in range(self.num_registers):
            if self._owner[idx] is None:
                if run_start is None:
                    run_start = idx
                run_len += 1
                if run_len == num_regs:
                    rng = range(run_start, run_start + num_regs)
                    for r in rng:
                        self._owner[r] = owner
                    return rng
            else:
                run_start = None
                run_len = 0
        return None

    def free(self, regs: Iterable[int]) -> None:
        for r in regs:
            self._owner[r] = None
            self._values[r] = None

    def owner_of(self, reg: int) -> Optional[int]:
        return self._owner[reg]

    def allocated_count(self) -> int:
        return sum(1 for o in self._owner if o is not None)

    def unused_registers(self) -> int:
        return self.num_registers - self.allocated_count()

    def unused_bytes(self) -> int:
        return self.unused_registers() * WARP_REGISTER_BYTES

    # -- data access ---------------------------------------------------------
    def read(self, reg: int, cycle: int = 0) -> Optional[int]:
        self._account(reg, cycle)
        self.stats.reads += 1
        return self._values[reg]

    def write(self, reg: int, value: Optional[int], cycle: int = 0) -> None:
        self._account(reg, cycle)
        self.stats.writes += 1
        self._values[reg] = value

    def peek(self, reg: int) -> Optional[int]:
        """Read without port/bank accounting (testing/introspection)."""
        return self._values[reg]

    # -- bank-conflict model ---------------------------------------------
    def bank_of(self, reg: int) -> int:
        return reg % self.num_banks

    def _account(self, reg: int, cycle: int) -> None:
        if cycle != self._usage_cycle:
            self._usage_cycle = cycle
            self._bank_use = {}
        bank = self.bank_of(reg)
        used = self._bank_use.get(bank, 0)
        if used >= self.ports_per_bank:
            self.stats.bank_conflicts += 1
        self._bank_use[bank] = used + 1

    def account_operand_traffic(self, num_operands: int, base_reg: int, cycle: int) -> int:
        """Account bank accesses for an instruction's register operands.

        Returns the number of conflicts this instruction generated.
        Operand registers are modeled as consecutive registers starting
        at ``base_reg`` (the warp's allocation base), which reproduces
        realistic bank spreading for interleaved allocation.
        """
        stats = self.stats
        before = stats.bank_conflicts
        if cycle != self._usage_cycle:
            self._usage_cycle = cycle
            self._bank_use = {}
        bank_use = self._bank_use
        num_banks = self.num_banks
        ports = self.ports_per_bank
        for i in range(num_operands):
            bank = (base_reg + i) % num_banks
            used = bank_use.get(bank, 0)
            if used >= ports:
                stats.bank_conflicts += 1
            bank_use[bank] = used + 1
        stats.reads += num_operands
        return stats.bank_conflicts - before
