"""Greedy-Then-Oldest (GTO) warp scheduler.

The baseline GPU has four warp schedulers per SM (Table 1), each owning
a quarter of the resident warps. GTO keeps issuing from the same warp
while it remains ready ("greedy"), and when it stalls falls back to the
oldest ready warp by launch order ("then oldest"). GTO is the standard
locality-friendly baseline scheduler used by CCWS and its successors.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.warp import Warp, WarpState

#: Hoisted: `warp.state is _READY` in the pick/next-ready loops skips
#: the WarpState class attribute lookup per scanned warp.
_READY = WarpState.READY


class GTOScheduler:
    """One of the SM's warp schedulers."""

    __slots__ = ("scheduler_id", "warps", "_greedy", "issues", "cached_hint", "hint_valid")

    def __init__(self, scheduler_id: int) -> None:
        self.scheduler_id = scheduler_id
        self.warps: list[Warp] = []
        self._greedy: Optional[Warp] = None
        self.issues = 0
        #: Memoized min ready_cycle over this scheduler's READY warps,
        #: set by the SM's fused tick when a scan finds nothing
        #: issuable. While valid (no wake/fill/CTA churn touched these
        #: warps since), the SM skips the scheduler's warp scan
        #: entirely. Maintained by the SM, not the scheduler.
        self.cached_hint: float = 0.0
        self.hint_valid = False

    def add_warp(self, warp: Warp) -> None:
        self.warps.append(warp)

    def remove_finished(self) -> None:
        self.warps = [w for w in self.warps if not w.finished]
        if self._greedy is not None and self._greedy.finished:
            self._greedy = None

    def pick(self, cycle: int) -> Optional[Warp]:
        """Select the warp to issue this cycle, or None when all stall.

        ``warps`` is kept in launch order, so the first ready warp in
        the list *is* the oldest — the scan stops at the first hit.
        """
        ready = _READY
        greedy = self._greedy
        if greedy is not None and greedy.state is ready and greedy.ready_cycle <= cycle:
            return greedy
        for warp in self.warps:
            if warp.state is ready and warp.ready_cycle <= cycle:
                self._greedy = warp
                return warp
        return None

    def note_issue(self) -> None:
        self.issues += 1

    def next_ready_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which some warp becomes issuable,
        considering only warps that are READY with a future ready_cycle.
        Blocked warps wake via memory responses, not the clock."""
        ready = _READY
        floor = cycle + 1
        best: Optional[int] = None
        for warp in self.warps:
            if warp.state is ready:
                rc = warp.ready_cycle
                if rc <= floor:
                    return floor
                if best is None or rc < best:
                    best = rc
        return best
