"""Streaming multiprocessor (SM) model.

The SM executes resident CTAs' warps through four GTO schedulers,
a banked register file, and an L1 data cache with MSHRs in front of
the shared memory subsystem. Memory-path policies (Linebacker, PCAL,
CERF) plug in through :class:`repro.gpu.extension.SMExtension`.

The clock is cycle-driven with event fast-forward: when no warp can
issue, the SM's next interesting cycle is the earliest pending memory
response, so memory-bound regions cost O(events), not O(cycles).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.config import GPUConfig
from repro.gpu.cta import CTA, CTAState
from repro.gpu.extension import SMExtension
from repro.gpu.isa import Instruction, Op, hashed_pc
from repro.gpu.register_file import RegisterFile
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.stats import LoadTracker, SMStats
from repro.gpu.trace import KernelTrace
from repro.gpu.warp import Warp, WarpState
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.memory.subsystem import MemorySubsystem

#: A source of grid CTA ids: returns the next unlaunched CTA id or None.
CTASource = Callable[[], Optional[int]]

_NO_EVENT = float("inf")


class SM:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        kernel: KernelTrace,
        memory: MemorySubsystem,
        cta_source: CTASource,
        extension: Optional[SMExtension] = None,
        max_concurrent_ctas: Optional[int] = None,
        track_loads: bool = False,
        load_window: int = 50_000,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.memory = memory
        self.cta_source = cta_source
        self.extension = extension or SMExtension()

        self.register_file = RegisterFile(
            config.register_file_bytes,
            num_banks=config.register_banks,
            ports_per_bank=config.register_bank_ports,
        )
        self.l1 = SetAssociativeCache(
            config.l1_size_bytes,
            config.l1_assoc,
            config.l1_line_bytes,
        )
        self.mshr = MSHRFile(config.l1_mshrs)
        self.schedulers = [GTOScheduler(i) for i in range(config.num_schedulers)]
        self.stats = SMStats()
        self.load_tracker = LoadTracker(load_window) if track_loads else None

        self.ctas: dict[int, CTA] = {}
        self._next_slot = 0
        self._launch_counter = itertools.count()
        self._event_seq = itertools.count()
        #: Heap of (ready_cycle, seq, kind, payload).
        self._events: list[tuple[int, int, str, object]] = []
        self.cycle = 0
        self._drained = False

        self.occupancy_limit = self.hardware_occupancy(config, kernel)
        if max_concurrent_ctas is not None:
            self.occupancy_limit = min(self.occupancy_limit, max_concurrent_ctas)

        self.extension.attach(self)
        self._fill_occupancy(cycle=0)

    # ------------------------------------------------------------------
    # Occupancy and CTA lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def hardware_occupancy(config: GPUConfig, kernel: KernelTrace) -> int:
        """Max concurrent CTAs per SM from the hardware limits (Table 1)."""
        threads_per_cta = kernel.warps_per_cta * config.simd_width
        limits = [
            config.max_ctas_per_sm,
            config.max_threads_per_sm // threads_per_cta,
            config.max_warps_per_sm // kernel.warps_per_cta,
            (config.register_file_bytes // 128) // max(1, kernel.warp_registers_per_cta),
        ]
        if kernel.shared_mem_per_cta > 0:
            limits.append(config.shared_memory_bytes // kernel.shared_mem_per_cta)
        return max(1, min(limits))

    def _fill_occupancy(self, cycle: int) -> None:
        while len(self.ctas) < self.occupancy_limit:
            if not self._launch_next_cta(cycle):
                break

    def _launch_next_cta(self, cycle: int) -> bool:
        grid_id = self.cta_source()
        if grid_id is None:
            return False
        slot = self._next_slot
        self._next_slot += 1
        regs = self.register_file.allocate(self.kernel.warp_registers_per_cta, owner=slot)
        if regs is None:
            raise RuntimeError(
                f"SM{self.sm_id}: register allocation failed for CTA slot {slot}"
            )
        # Initialize register contents with per-register tokens so that
        # backup/restore round-trips are checkable end to end.
        for r in regs:
            self.register_file.write(r, self._register_token(slot, r), cycle=-1)
        warps = []
        for w in range(self.kernel.warps_per_cta):
            warp = Warp(
                warp_id=slot * self.kernel.warps_per_cta + w,
                cta_slot=slot,
                launch_order=next(self._launch_counter),
                trace=self.kernel.warp_trace(grid_id, w),
                base_register=regs.start + w * self.kernel.warp_registers_per_warp,
                max_outstanding=self.config.max_outstanding_loads,
            )
            warps.append(warp)
            self.schedulers[warp.warp_id % len(self.schedulers)].add_warp(warp)
        self.ctas[slot] = CTA(
            slot=slot, grid_cta_id=grid_id, warps=warps, register_range=regs
        )
        self.extension.on_cta_launched(slot, cycle)
        return True

    @staticmethod
    def _register_token(slot: int, reg: int) -> int:
        """Deterministic register content token for correctness checks."""
        return (slot << 20) ^ (reg * 2654435761 & 0xFFFFF)

    def _complete_cta(self, cta: CTA, cycle: int) -> None:
        cta.state = CTAState.FINISHED
        self.extension.on_cta_finished(cta.slot, cycle)
        if cta.register_range is not None:
            self.register_file.free(cta.register_range)
            cta.register_range = None
        del self.ctas[cta.slot]
        for scheduler in self.schedulers:
            scheduler.remove_finished()
        # Paper Section 3.2: when an active CTA finishes, a previously
        # throttled CTA is re-scheduled in priority; only if there is
        # none is a new CTA fetched.
        if not self.extension.try_reactivate_cta(cycle):
            self._launch_next_cta(cycle)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def schedule_event(self, ready_cycle: int, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (ready_cycle, next(self._event_seq), kind, payload))

    def _process_events(self, cycle: int) -> None:
        while self._events and self._events[0][0] <= cycle:
            ready, _, kind, payload = heapq.heappop(self._events)
            if kind == "fill":
                self._handle_fill(payload, ready)  # type: ignore[arg-type]
            elif kind == "wake":
                payload.memory_response(ready)  # type: ignore[union-attr]
            elif kind == "callback":
                payload(ready)  # type: ignore[operator]
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown event kind {kind!r}")

    def _handle_fill(self, line_addr: int, cycle: int) -> None:
        waiters = self.mshr.release(line_addr)
        if self.extension.allocate_fill(line_addr):
            hpc = waiters[0][1] if waiters else 0
            owner = waiters[0][0].warp_id if waiters else -1
            evicted = self.l1.fill(line_addr, token=line_addr, hpc=hpc, owner=owner)
            if evicted is not None:
                self.extension.on_l1_eviction(evicted[0], evicted[1], cycle)
        for warp, _hpc in waiters:
            warp.memory_response(cycle)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Advance the SM to ``cycle``: deliver responses, then issue."""
        self.cycle = cycle
        self._process_events(cycle)
        self.extension.on_tick(cycle)
        for scheduler in self.schedulers:
            warp = scheduler.pick(cycle)
            if warp is None:
                continue
            inst = warp.peek()
            if inst is None:
                continue
            issued = self._issue(warp, inst, cycle)
            if issued:
                scheduler.note_issue()

    def _issue(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        """Execute one instruction; returns False when it must retry."""
        if inst.op is Op.ALU:
            warp.ready_cycle = cycle + self.config.alu_latency
            self._retire(warp, inst, cycle)
            return True
        if inst.op is Op.EXIT:
            self._retire(warp, inst, cycle)
            warp.state = WarpState.FINISHED
            cta = self.ctas.get(warp.cta_slot)
            if cta is not None and cta.all_warps_finished():
                self._complete_cta(cta, cycle)
            return True
        if inst.op is Op.STORE:
            self._execute_store(warp, inst, cycle)
            return True
        return self._execute_load(warp, inst, cycle)

    def _retire(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        self.stats.instructions += 1
        if inst.operands:
            self.register_file.account_operand_traffic(
                inst.operands, warp.base_register, cycle
            )
        warp.retire_current()

    def _execute_store(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        self.stats.stores += 1
        for line_addr in inst.line_addrs:
            self.stats.mem_requests += 1
            self.l1.write_access(line_addr)
            self.extension.on_store(line_addr, cycle)
            self.memory.write_line(line_addr, cycle, sm_id=self.sm_id)
        # Stores do not block the warp (fire and forget down the
        # write-through path); a small issue cost applies.
        warp.ready_cycle = cycle + 1
        self._retire(warp, inst, cycle)

    def _execute_load(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        """Issue a load; may block the warp on outstanding lines."""
        cfg = self.config
        # First pass: every line must be admissible (MSHR space) or the
        # instruction replays without partial side effects. The replay
        # backoff models the LSU's replay-queue interval and avoids
        # burning an issue slot every cycle while the MSHRs drain.
        addrs = inst.line_addrs
        free_mshrs = self.mshr.capacity - self.mshr.occupancy
        if len(addrs) == 1:
            a = addrs[0]
            needs_mshr = self.l1.probe(a) is None and not self.mshr.lookup(a)
            admissible = not needs_mshr or free_mshrs >= 1
        else:
            needed = sum(
                1
                for a in addrs
                if self.l1.probe(a) is None and not self.mshr.lookup(a)
            )
            admissible = needed <= free_mshrs
        if not admissible:
            self.mshr.stalls += 1
            warp.ready_cycle = cycle + 4
            return False

        hpc = hashed_pc(inst.pc)
        self.stats.loads += 1
        outstanding = 0
        for line_addr in inst.line_addrs:
            self.stats.mem_requests += 1
            outstanding += 1
            if self.extension.should_bypass(warp, line_addr, cycle):
                self.stats.bypasses += 1
                ready = self.memory.fetch_line(line_addr, cycle, sm_id=self.sm_id)
                self.schedule_event(ready, "wake", warp)
                self._track_load(inst.pc, line_addr, hit=False, cycle=cycle)
                self.extension.on_load_outcome(inst.pc, hpc, line_addr, False, cycle, warp)
                continue

            line = self.l1.lookup(line_addr, hpc=hpc, owner=warp.warp_id)
            if line is not None:
                self.stats.l1_hits += 1
                self.schedule_event(cycle + cfg.l1_hit_latency, "wake", warp)
                self._track_load(inst.pc, line_addr, hit=True, cycle=cycle)
                self.extension.on_load_outcome(inst.pc, hpc, line_addr, True, cycle, warp)
                continue

            victim_latency = self.extension.lookup_victim(line_addr, hpc, cycle)
            if victim_latency is not None:
                self.stats.victim_hits += 1
                self.schedule_event(cycle + victim_latency, "wake", warp)
                self._track_load(inst.pc, line_addr, hit=True, cycle=cycle)
                self.extension.on_load_outcome(inst.pc, hpc, line_addr, True, cycle, warp)
                continue

            self.stats.l1_misses += 1
            self._track_load(inst.pc, line_addr, hit=False, cycle=cycle)
            self.extension.on_load_outcome(inst.pc, hpc, line_addr, False, cycle, warp)
            new_fetch = self.mshr.allocate(line_addr, (warp, hpc))
            if new_fetch:
                ready = self.memory.fetch_line(line_addr, cycle, sm_id=self.sm_id)
                self.schedule_event(ready, "fill", line_addr)

        self._retire(warp, inst, cycle)
        # Scoreboarding: every line (hit or miss) is an outstanding
        # response; the warp only blocks past its outstanding limit,
        # so hit-latency loads pipeline instead of serializing.
        if outstanding:
            warp.block_on_memory(outstanding)
        warp.ready_cycle = max(warp.ready_cycle, cycle + 1)
        return True

    def _track_load(self, pc: int, line_addr: int, hit: bool, cycle: int) -> None:
        if self.load_tracker is not None:
            self.load_tracker.record(pc, line_addr, hit, cycle)

    # ------------------------------------------------------------------
    # Clocking interface for the GPU-level loop
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> float:
        """Earliest cycle at which this SM has work to do."""
        if self.done:
            return _NO_EVENT
        best: float = _NO_EVENT
        for scheduler in self.schedulers:
            nxt = scheduler.next_ready_cycle(cycle - 1)
            if nxt is not None:
                best = min(best, nxt)
        if self._events:
            best = min(best, self._events[0][0])
        if best is _NO_EVENT and not self.done:
            # Deadlock guard: inactive CTAs with nothing pending.
            best = cycle + 1
        return best

    @property
    def done(self) -> bool:
        return not self.ctas and not self._events

    def finalize(self, cycle: int) -> None:
        self.stats.cycles = cycle
        if self.load_tracker is not None:
            self.load_tracker.close_window()
        if not self._drained:
            self.extension.finalize(cycle)
            self._drained = True
