"""Streaming multiprocessor (SM) model.

The SM executes resident CTAs' warps through four GTO schedulers,
a banked register file, and an L1 data cache with MSHRs in front of
the shared memory subsystem. Memory-path policies (Linebacker, PCAL,
CERF) plug in through :class:`repro.gpu.extension.SMExtension`.

The clock is cycle-driven with event fast-forward: when no warp can
issue, the SM's next interesting cycle is the earliest pending memory
response, so memory-bound regions cost O(events), not O(cycles).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.config import GPUConfig
from repro.gpu.cta import CTA, CTAState
from repro.gpu.extension import SMExtension
from repro.gpu.isa import Instruction, Op
from repro.gpu.register_file import RegisterFile
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.stats import SM_STATS, LoadTracker, SMStats
from repro.gpu.trace import KernelTrace
from repro.gpu.warp import Warp, WarpState
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.memory.subsystem import MemorySubsystem
from repro.metrics import WindowRecorder

#: A source of grid CTA ids: returns the next unlaunched CTA id or None.
CTASource = Callable[[], Optional[int]]

_NO_EVENT = float("inf")

# Event kinds on the SM's event heap. Int constants compare faster
# than strings in the per-event dispatch and keep heap entries small.
EV_FILL = 0      # payload: line_addr whose off-chip fetch completed
EV_WAKE = 1      # payload: the Warp to deliver a memory response to
EV_CALLBACK = 2  # payload: callable(cycle), e.g. backup/restore steps

#: Legacy string spellings, accepted by :meth:`SM.schedule_event`.
_EVENT_KINDS = {"fill": EV_FILL, "wake": EV_WAKE, "callback": EV_CALLBACK}

# Hot enum members hoisted to module level: `inst.op is _OP_ALU` skips
# the Op class attribute lookup on every issued instruction.
_OP_ALU = Op.ALU
_OP_LOAD = Op.LOAD
_OP_EXIT = Op.EXIT
_OP_STORE = Op.STORE
_READY = WarpState.READY
_BLOCKED = WarpState.BLOCKED
_INACTIVE = WarpState.INACTIVE
_FINISHED = WarpState.FINISHED


class SM:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        kernel: KernelTrace,
        memory: MemorySubsystem,
        cta_source: CTASource,
        extension: Optional[SMExtension] = None,
        max_concurrent_ctas: Optional[int] = None,
        track_loads: bool = False,
        load_window: int = 50_000,
        record_timeseries: bool = False,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.memory = memory
        self.cta_source = cta_source
        self.extension = extension or SMExtension()

        self.register_file = RegisterFile(
            config.register_file_bytes,
            num_banks=config.register_banks,
            ports_per_bank=config.register_bank_ports,
        )
        self.l1 = SetAssociativeCache(
            config.l1_size_bytes,
            config.l1_assoc,
            config.l1_line_bytes,
        )
        self.mshr = MSHRFile(config.l1_mshrs)
        self.schedulers = [GTOScheduler(i) for i in range(config.num_schedulers)]
        self.stats = SMStats()
        self.load_tracker = LoadTracker(load_window) if track_loads else None
        # Opt-in per-window timeseries. When off, the per-tick cost is
        # one float compare against the infinite sentinel (the same
        # trick the event fast-forward uses).
        self._ts_recorder: Optional[WindowRecorder] = None
        self._ts_next: float = _NO_EVENT
        if record_timeseries:
            # ``load_window`` is the mechanism window (the GPU passes
            # config.linebacker.window_cycles) — timeseries rows share
            # its boundary grid.
            self._ts_recorder = WindowRecorder(load_window, SM_STATS.counter_names())
            self._ts_next = load_window

        self.ctas: dict[int, CTA] = {}
        self._next_slot = 0
        self._launch_counter = itertools.count()
        self._event_seq = itertools.count()
        #: Heap of (ready_cycle, seq, kind, payload).
        self._events: list[tuple[int, int, str, object]] = []
        self.cycle = 0
        self._drained = False

        self.occupancy_limit = self.hardware_occupancy(config, kernel)
        if max_concurrent_ctas is not None:
            self.occupancy_limit = min(self.occupancy_limit, max_concurrent_ctas)

        self.extension.attach(self)
        # Capability flags resolved once: the load path reads plain
        # bools instead of making four dynamic no-op calls per line.
        # A still-None flag (an attach override that skipped super())
        # falls back to the same auto-detection the base attach does.
        ext = self.extension
        cls, base = type(ext), SMExtension

        def flag(value, hook: str) -> bool:
            if value is not None:
                return bool(value)
            return getattr(cls, hook) is not getattr(base, hook)

        self._ext_wants_ticks = flag(ext.wants_ticks, "on_tick")
        self._ext_wants_load_outcomes = flag(ext.wants_load_outcomes, "on_load_outcome")
        self._ext_has_victim_cache = flag(ext.has_victim_cache, "lookup_victim")
        self._ext_may_bypass = flag(ext.may_bypass, "should_bypass")
        self._ext_wants_store_events = flag(ext.wants_store_events, "on_store")
        self._ext_controls_fill = flag(ext.controls_fill, "allocate_fill")
        self._ext_wants_evictions = flag(ext.wants_evictions, "on_l1_eviction")
        # Deliberately NOT part of _ext_inert: timeseries_sample only
        # reads state at window boundaries, so a baseline run with
        # recording on keeps the fused fast path.
        self._ext_wants_timeseries = flag(ext.wants_timeseries, "timeseries_sample")
        # Inert = no hook can observe or mutate per-issue state, which
        # licenses the fused tick/next-event scan (see tick()).
        self._ext_inert = not (
            self._ext_wants_ticks
            or self._ext_wants_load_outcomes
            or self._ext_has_victim_cache
            or self._ext_may_bypass
            or self._ext_wants_store_events
            or self._ext_controls_fill
            or self._ext_wants_evictions
        )
        self._cta_dirty = False
        # Stable sub-objects of the L1/MSHR, hoisted once. The cache
        # never rebinds ``_sets`` and the MSHR file never rebinds
        # ``_entries`` (both mutate in place), so the load path can
        # skip two levels of attribute traversal per call.
        self._l1_sets = self.l1._sets
        self._l1_num_sets = self.l1.num_sets
        self._mshr_entries = self.mshr._entries
        self._mshr_capacity = self.mshr.capacity
        self._alu_latency = config.alu_latency
        self._l1_hit_latency = config.l1_hit_latency
        self._fill_occupancy(cycle=0)

    # ------------------------------------------------------------------
    # Occupancy and CTA lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def hardware_occupancy(config: GPUConfig, kernel: KernelTrace) -> int:
        """Max concurrent CTAs per SM from the hardware limits (Table 1)."""
        threads_per_cta = kernel.warps_per_cta * config.simd_width
        limits = [
            config.max_ctas_per_sm,
            config.max_threads_per_sm // threads_per_cta,
            config.max_warps_per_sm // kernel.warps_per_cta,
            (config.register_file_bytes // 128) // max(1, kernel.warp_registers_per_cta),
        ]
        if kernel.shared_mem_per_cta > 0:
            limits.append(config.shared_memory_bytes // kernel.shared_mem_per_cta)
        return max(1, min(limits))

    def _fill_occupancy(self, cycle: int) -> None:
        while len(self.ctas) < self.occupancy_limit:
            if not self._launch_next_cta(cycle):
                break

    def _launch_next_cta(self, cycle: int) -> bool:
        self._cta_dirty = True
        for s in self.schedulers:
            s.hint_valid = False
        grid_id = self.cta_source()
        if grid_id is None:
            return False
        slot = self._next_slot
        self._next_slot += 1
        regs = self.register_file.allocate(self.kernel.warp_registers_per_cta, owner=slot)
        if regs is None:
            raise RuntimeError(
                f"SM{self.sm_id}: register allocation failed for CTA slot {slot}"
            )
        # Initialize register contents with per-register tokens so that
        # backup/restore round-trips are checkable end to end.
        for r in regs:
            self.register_file.write(r, self._register_token(slot, r), cycle=-1)
        warps = []
        for w in range(self.kernel.warps_per_cta):
            warp = Warp(
                warp_id=slot * self.kernel.warps_per_cta + w,
                cta_slot=slot,
                launch_order=next(self._launch_counter),
                trace=self.kernel.warp_trace(grid_id, w),
                base_register=regs.start + w * self.kernel.warp_registers_per_warp,
                max_outstanding=self.config.max_outstanding_loads,
            )
            warps.append(warp)
            self.schedulers[warp.warp_id % len(self.schedulers)].add_warp(warp)
        self.ctas[slot] = CTA(
            slot=slot, grid_cta_id=grid_id, warps=warps, register_range=regs
        )
        self.extension.on_cta_launched(slot, cycle)
        return True

    @staticmethod
    def _register_token(slot: int, reg: int) -> int:
        """Deterministic register content token for correctness checks."""
        return (slot << 20) ^ (reg * 2654435761 & 0xFFFFF)

    def _complete_cta(self, cta: CTA, cycle: int) -> None:
        self._cta_dirty = True
        for s in self.schedulers:
            s.hint_valid = False
        cta.state = CTAState.FINISHED
        self.extension.on_cta_finished(cta.slot, cycle)
        if cta.register_range is not None:
            self.register_file.free(cta.register_range)
            cta.register_range = None
        del self.ctas[cta.slot]
        for scheduler in self.schedulers:
            scheduler.remove_finished()
        # Paper Section 3.2: when an active CTA finishes, a previously
        # throttled CTA is re-scheduled in priority; only if there is
        # none is a new CTA fetched.
        if not self.extension.try_reactivate_cta(cycle):
            self._launch_next_cta(cycle)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def schedule_event(self, ready_cycle: int, kind: "int | str", payload: object) -> None:
        """Queue an event. ``kind`` is one of :data:`EV_FILL`,
        :data:`EV_WAKE`, :data:`EV_CALLBACK` (legacy string spellings
        are translated)."""
        if kind.__class__ is not int:
            kind = _EVENT_KINDS[kind]
        heapq.heappush(self._events, (ready_cycle, next(self._event_seq), kind, payload))

    def _process_events(self, cycle: int) -> None:
        events = self._events
        if not events or events[0][0] > cycle:
            return
        heappop = heapq.heappop
        handle_fill = self._handle_fill
        ready_state = _READY
        blocked = _BLOCKED
        inactive = _INACTIVE
        scheds = self.schedulers
        nsched = len(scheds)
        while events and events[0][0] <= cycle:
            ready, _, kind, payload = heappop(events)
            if kind == EV_WAKE:
                # Inlined Warp.memory_response — one wake event arrives
                # per load line, making this the busiest event kind.
                pending = payload.pending_responses - 1
                if pending < 0:
                    raise RuntimeError("memory response for warp with none pending")
                payload.pending_responses = pending
                if payload.state is blocked and pending < payload.max_outstanding:
                    if payload.throttled:
                        payload.state = inactive
                    else:
                        payload.state = ready_state
                        # The warp joined its scheduler's READY set:
                        # the memoized scheduler hint is stale.
                        scheds[payload.warp_id % nsched].hint_valid = False
                    if payload.ready_cycle < ready:
                        payload.ready_cycle = ready
            elif kind == EV_FILL:
                handle_fill(payload, ready)
            elif kind == EV_CALLBACK:
                # Callbacks may mutate arbitrary warp state.
                for s in scheds:
                    s.hint_valid = False
                payload(ready)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown event kind {kind!r}")

    def _handle_fill(self, line_addr: int, cycle: int) -> None:
        # Inlined mshr.release(); the extension hooks are gated on the
        # capability flags (allocate_fill defaults to True, eviction
        # notification to a no-op).
        waiters = self._mshr_entries.pop(line_addr, [])
        if not self._ext_controls_fill or self.extension.allocate_fill(line_addr):
            hpc = waiters[0][1] if waiters else 0
            owner = waiters[0][0].warp_id if waiters else -1
            evicted = self.l1.fill(line_addr, token=line_addr, hpc=hpc, owner=owner)
            if evicted is not None and self._ext_wants_evictions:
                self.extension.on_l1_eviction(evicted[0], evicted[1], cycle)
        scheds = self.schedulers
        nsched = len(scheds)
        for warp, _hpc in waiters:
            warp.memory_response(cycle)
            scheds[warp.warp_id % nsched].hint_valid = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> "float | None":
        """Advance the SM to ``cycle``: deliver responses, then issue.

        The per-scheduler issue loop inlines both the GTO pick (greedy
        warp first, else oldest ready — identical to
        :meth:`GTOScheduler.pick`) and the ALU retire path, the two
        most frequent call chains in the simulator.

        Returns the SM's next interesting cycle when it could be
        computed during the issue scan (always, for inert extensions
        without a mid-tick CTA transition), else None — the caller
        falls back to :meth:`next_event_cycle`. The fused hint is
        bit-identical to what :meth:`next_event_cycle` would return
        after the tick: every non-picked warp's state is frozen during
        the scan (wakes only happen in ``_process_events``, and CTA
        completions — the one issue-path mutation that touches other
        schedulers' warps — invalidate the fused hint via
        ``_cta_dirty``), and a picked warp's post-issue ready cycle is
        always ``> cycle`` or its state leaves READY.
        """
        self.cycle = cycle
        events = self._events
        if events and events[0][0] <= cycle:
            self._process_events(cycle)
        if self._ext_inert:
            if cycle >= self._ts_next:
                self._ts_sample(cycle)
            # Fused issue + next-event-hint scan, inlined (one call per
            # run-loop iteration). Legal only for inert extensions: no
            # hook can mutate warp state mid-issue, so each scheduler
            # is scanned exactly once — the scan both picks the GTO
            # warp and accumulates the minimum future ready cycle of
            # the remaining READY warps, replacing the separate
            # post-tick next_event_cycle rescan.
            self._cta_dirty = False
            ready = _READY
            stats = self.stats
            rf_account = self.register_file.account_operand_traffic
            alu_ready = cycle + self._alu_latency
            issue = self._issue
            execute_load = self._execute_load
            mshr_entries = self._mshr_entries
            mshr_capacity = self._mshr_capacity
            l1_sets = self._l1_sets
            num_sets = self._l1_num_sets
            hint: float = _NO_EVENT
            for scheduler in self.schedulers:
                if scheduler.hint_valid:
                    # No wake/fill/CTA churn has touched this
                    # scheduler's warps since its last idle scan: its
                    # min READY ready_cycle is unchanged, so the warp
                    # scan can be skipped outright.
                    ch = scheduler.cached_hint
                    if ch > cycle:
                        if ch < hint:
                            hint = ch
                        continue
                    # The clock caught up with the memoized hint: a
                    # warp is now issuable — rescan below.
                    scheduler.hint_valid = False
                pick = scheduler._greedy
                if (
                    pick is not None
                    and pick.state is ready
                    and pick.ready_cycle <= cycle
                ):
                    # Greedy hit: the other warps still need a hint
                    # pass — unless the hint already sits at its floor
                    # (``cycle``: some warp is issuable next cycle), in
                    # which case no warp can lower it further.
                    if hint > cycle:
                        for w in scheduler.warps:
                            if w is not pick and w.state is ready:
                                rc = w.ready_cycle
                                if rc <= cycle:
                                    hint = cycle  # floor; stop scanning
                                    break
                                if rc < hint:
                                    hint = rc
                else:
                    pick = None
                    sched_min: float = _NO_EVENT
                    for w in scheduler.warps:
                        if w.state is ready:
                            rc = w.ready_cycle
                            if rc <= cycle:
                                if pick is None:
                                    scheduler._greedy = pick = w
                                    if hint <= cycle:
                                        break  # floor already reached
                                else:
                                    hint = cycle  # another issuable warp
                                    break
                            elif rc < sched_min:
                                sched_min = rc
                    if sched_min < hint:
                        hint = sched_min
                    if pick is None:
                        # Nothing issuable and the scan completed:
                        # memoize this scheduler's exact hint.
                        scheduler.cached_hint = sched_min
                        scheduler.hint_valid = True
                        continue
                inst = pick._next_inst
                if inst is None:
                    # Defensive (READY warp without an instruction):
                    # the old rescan reported it issuable.
                    hint = cycle
                    continue
                op = inst.op
                if op is _OP_ALU:
                    pick.ready_cycle = alu_ready
                    stats.instructions += 1
                    if inst.operands:
                        rf_account(inst.operands, pick.base_register, cycle)
                    pick.instructions_retired += 1
                    nxt = next(pick._trace, None)
                    pick._next_inst = nxt
                    if nxt is None:
                        pick.state = _FINISHED
                    elif alu_ready < hint:
                        hint = alu_ready
                    scheduler.issues += 1
                elif op is _OP_LOAD:
                    addrs = inst.line_addrs
                    if len(mshr_entries) + len(addrs) > mshr_capacity:
                        # Inlined MSHR admissibility check (the
                        # replay-storm fast path: during an MSHR stall
                        # the same load re-enters here every 4 cycles,
                        # so the stall outcome skips the _execute_load
                        # frame entirely). A line needs a fresh entry
                        # unless it merges or hits in L1.
                        free = mshr_capacity - len(mshr_entries)
                        stalled = False
                        for a in addrs:
                            if (
                                a not in mshr_entries
                                and l1_sets[a % num_sets].get(a // num_sets)
                                is None
                            ):
                                free -= 1
                                if free < 0:
                                    stalled = True
                                    break
                        if stalled:
                            self.mshr.stalls += 1
                            pick.ready_cycle = rc = cycle + 4
                            if rc < hint:
                                hint = rc
                            continue
                    if execute_load(pick, inst, cycle):
                        scheduler.issues += 1
                    if pick.state is ready and pick.ready_cycle < hint:
                        hint = pick.ready_cycle
                else:
                    if issue(pick, inst, cycle):
                        scheduler.issues += 1
                    if pick.state is ready and pick.ready_cycle < hint:
                        hint = pick.ready_cycle
            if self._cta_dirty:
                # A CTA completed/launched mid-tick: warps were added
                # or removed across schedulers, so the accumulated hint
                # is stale. Fall back to the full rescan.
                return None
            if events:
                first = events[0][0]
                if first < hint:
                    hint = first
            elif not self.ctas:
                return _NO_EVENT  # drained (caller checks .done first)
            if hint == _NO_EVENT:
                # Deadlock guard, as in next_event_cycle.
                hint = cycle + 1
            return hint
        if self._ext_wants_ticks:
            self.extension.on_tick(cycle)
        if cycle >= self._ts_next:
            # After on_tick: the extension has closed its windows up to
            # this cycle, so the sampled mechanism state (monitor
            # phase, throttle ladder, VPs) is the post-boundary state —
            # exactly what the per-window log used to capture.
            self._ts_sample(cycle)
        ready = _READY
        stats = self.stats
        rf_account = self.register_file.account_operand_traffic
        alu_ready = cycle + self._alu_latency
        issue = self._issue
        execute_load = self._execute_load
        for scheduler in self.schedulers:
            warp = scheduler._greedy
            if warp is None or warp.state is not ready or warp.ready_cycle > cycle:
                warp = None
                for w in scheduler.warps:
                    if w.state is ready and w.ready_cycle <= cycle:
                        scheduler._greedy = warp = w
                        break
                if warp is None:
                    continue
            inst = warp._next_inst
            if inst is None:
                continue
            op = inst.op
            if op is _OP_ALU:
                warp.ready_cycle = alu_ready
                stats.instructions += 1
                if inst.operands:
                    rf_account(inst.operands, warp.base_register, cycle)
                warp.instructions_retired += 1
                nxt = next(warp._trace, None)
                warp._next_inst = nxt
                if nxt is None:
                    warp.state = _FINISHED
                scheduler.issues += 1
            elif op is _OP_LOAD:
                # Loads (and their MSHR-stall replays) skip the _issue
                # dispatch frame.
                if execute_load(warp, inst, cycle):
                    scheduler.issues += 1
            elif issue(warp, inst, cycle):
                scheduler.issues += 1
        return None

    def _issue(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        """Execute one instruction; returns False when it must retry."""
        op = inst.op
        if op is _OP_ALU:
            warp.ready_cycle = cycle + self._alu_latency
            self._retire(warp, inst, cycle)
            return True
        if op is _OP_EXIT:
            self._retire(warp, inst, cycle)
            warp.state = WarpState.FINISHED
            cta = self.ctas.get(warp.cta_slot)
            if cta is not None and cta.all_warps_finished():
                self._complete_cta(cta, cycle)
            return True
        if op is _OP_STORE:
            self._execute_store(warp, inst, cycle)
            return True
        return self._execute_load(warp, inst, cycle)

    def _retire(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        # Inlines warp.retire_current()/_advance(); ``inst`` is the
        # warp's current instruction, so the "nothing to retire" guard
        # is unreachable here.
        self.stats.instructions += 1
        if inst.operands:
            self.register_file.account_operand_traffic(
                inst.operands, warp.base_register, cycle
            )
        warp.instructions_retired += 1
        nxt = next(warp._trace, None)
        warp._next_inst = nxt
        if nxt is None:
            warp.state = _FINISHED

    def _execute_store(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        stats = self.stats
        stats.stores += 1
        wants_stores = self._ext_wants_store_events
        for line_addr in inst.line_addrs:
            stats.mem_requests += 1
            self.l1.write_access(line_addr)
            if wants_stores:
                self.extension.on_store(line_addr, cycle)
            self.memory.write_line(line_addr, cycle, sm_id=self.sm_id)
        # Stores do not block the warp (fire and forget down the
        # write-through path); a small issue cost applies.
        warp.ready_cycle = cycle + 1
        self._retire(warp, inst, cycle)

    def _execute_load(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        """Issue a load; may block the warp on outstanding lines.

        This is the hottest function in the simulator (every load line,
        *plus* every MSHR-stall replay, lands here), so it reaches into
        the L1/MSHR internals directly instead of going through their
        probe/lookup helpers, and gates every extension hook on the
        capability flags resolved at attach time.
        """
        mshr_entries = self._mshr_entries
        addrs = inst.line_addrs
        # Every line must be admissible (MSHR space) or the instruction
        # replays without partial side effects. The replay backoff
        # models the LSU's replay-queue interval and avoids burning an
        # issue slot every cycle while the MSHRs drain. Fast accept:
        # with enough free entries for the worst case (every line a
        # fresh miss), no per-line probing is needed — which makes the
        # non-stalled path one comparison, and confines the probing to
        # the replay storm where MSHRs are (nearly) full.
        if len(mshr_entries) + len(addrs) > self._mshr_capacity:
            num_sets = self._l1_num_sets
            l1_sets = self._l1_sets
            free_mshrs = self._mshr_capacity - len(mshr_entries)
            for a in addrs:
                # A line needs a fresh MSHR entry unless it merges into
                # an in-flight miss or hits in L1; bail at the first
                # line past the free-entry budget.
                if (
                    a not in mshr_entries
                    and l1_sets[a % num_sets].get(a // num_sets) is None
                ):
                    free_mshrs -= 1
                    if free_mshrs < 0:
                        self.mshr.stalls += 1
                        warp.ready_cycle = cycle + 4
                        return False

        stats = self.stats
        extension = self.extension
        tracker = self.load_tracker
        events = self._events
        event_seq = self._event_seq
        heappush = heapq.heappush
        l1 = self.l1
        l1_stats = l1.stats
        l1_ever_seen = l1._ever_seen
        l1_sets = self._l1_sets
        num_sets = self._l1_num_sets
        mshr = self.mshr
        fetch_line = self.memory.fetch_line
        sm_id = self.sm_id
        may_bypass = self._ext_may_bypass
        has_victim = self._ext_has_victim_cache
        wants_outcomes = self._ext_wants_load_outcomes
        pc = inst.pc
        hpc = inst.hpc
        warp_id = warp.warp_id
        hit_ready = cycle + self._l1_hit_latency
        stats.loads += 1
        stats.mem_requests += len(addrs)
        for line_addr in addrs:
            if may_bypass and extension.should_bypass(warp, line_addr, cycle):
                stats.bypasses += 1
                ready = fetch_line(line_addr, cycle, sm_id=sm_id)
                heappush(events, (ready, next(event_seq), EV_WAKE, warp))
                if tracker is not None:
                    tracker.record(pc, line_addr, False, cycle)
                if wants_outcomes:
                    extension.on_load_outcome(pc, hpc, line_addr, False, cycle, warp)
                continue

            # Inlined SetAssociativeCache.lookup (tag probe + LRU/stats
            # update): bypassed lines above never touch the LRU clock,
            # matching the out-of-line path. A hit moves the line to
            # the end of its set dict — the ways are kept in LRU order
            # so fill() evicts the first key without scanning.
            clock = l1._clock + 1
            l1._clock = clock
            ways = l1_sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = ways.get(tag)
            if line is not None:
                del ways[tag]
                ways[tag] = line
                line.last_use = clock
                line.hpc = hpc
                line.owner = warp_id
                l1_stats.hits += 1
                stats.l1_hits += 1
                heappush(events, (hit_ready, next(event_seq), EV_WAKE, warp))
                if tracker is not None:
                    tracker.record(pc, line_addr, True, cycle)
                if wants_outcomes:
                    extension.on_load_outcome(pc, hpc, line_addr, True, cycle, warp)
                continue
            l1_stats.misses += 1
            if line_addr in l1_ever_seen:
                l1_stats.capacity_conflict_misses += 1
            else:
                l1_stats.cold_misses += 1

            if has_victim:
                victim_latency = extension.lookup_victim(line_addr, hpc, cycle)
                if victim_latency is not None:
                    stats.victim_hits += 1
                    heappush(
                        events, (cycle + victim_latency, next(event_seq), EV_WAKE, warp)
                    )
                    if tracker is not None:
                        tracker.record(pc, line_addr, True, cycle)
                    if wants_outcomes:
                        extension.on_load_outcome(pc, hpc, line_addr, True, cycle, warp)
                    continue

            stats.l1_misses += 1
            if tracker is not None:
                tracker.record(pc, line_addr, False, cycle)
            if wants_outcomes:
                extension.on_load_outcome(pc, hpc, line_addr, False, cycle, warp)
            # Inlined MSHRFile.allocate. The admissibility gate above
            # guarantees space for every fresh miss of this instruction,
            # so allocate's full-file error path is unreachable here.
            waiters = mshr_entries.get(line_addr)
            if waiters is not None:
                waiters.append((warp, hpc))
                mshr.merged_requests += 1
            else:
                mshr_entries[line_addr] = [(warp, hpc)]
                mshr.allocations += 1
                ready = fetch_line(line_addr, cycle, sm_id=sm_id)
                heappush(events, (ready, next(event_seq), EV_FILL, line_addr))

        self._retire(warp, inst, cycle)
        # Scoreboarding: every line (hit or miss) is an outstanding
        # response; the warp only blocks past its outstanding limit,
        # so hit-latency loads pipeline instead of serializing.
        warp.block_on_memory(len(addrs))
        if warp.ready_cycle <= cycle:
            warp.ready_cycle = cycle + 1
        return True

    def _track_load(self, pc: int, line_addr: int, hit: bool, cycle: int) -> None:
        if self.load_tracker is not None:
            self.load_tracker.record(pc, line_addr, hit, cycle)

    # ------------------------------------------------------------------
    # Timeseries recording
    # ------------------------------------------------------------------
    def _ts_sample(self, cycle: int) -> None:
        """Capture every window boundary the clock has crossed.

        Event fast-forward can jump several windows at once; the loop
        emits one row per boundary (intermediate rows carry zero
        counter deltas, matching the extension's own catch-up loop).
        """
        rec = self._ts_recorder
        boundary = self._ts_next
        window = rec.series.window_cycles
        wants_extra = self._ext_wants_timeseries
        while cycle >= boundary:
            extra = self.extension.timeseries_sample(int(boundary)) if wants_extra else None
            active = 0
            for cta in self.ctas.values():
                if cta.state is CTAState.ACTIVE:
                    active += 1
            rec.capture(int(boundary), self.stats, active, len(self.ctas) - active, extra)
            boundary += window
        self._ts_next = boundary

    @property
    def timeseries(self):
        """The recorded :class:`~repro.metrics.WindowSeries`, or None
        when this run did not record timeseries."""
        rec = self._ts_recorder
        return rec.series if rec is not None else None

    # ------------------------------------------------------------------
    # Clocking interface for the GPU-level loop
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> float:
        """Earliest cycle at which this SM has work to do.

        Inlines :meth:`GTOScheduler.next_ready_cycle` across all
        schedulers with a global short-circuit: ``cycle`` (the old
        per-scheduler ``floor``) is the smallest value any scheduler
        can contribute, so the first already-issuable warp ends the
        scan.
        """
        events = self._events
        if not self.ctas and not events:  # done
            return _NO_EVENT
        best: float = _NO_EVENT
        floor = cycle  # == (cycle - 1) + 1 in the old per-scheduler probe
        ready = _READY
        for scheduler in self.schedulers:
            for w in scheduler.warps:
                if w.state is ready:
                    rc = w.ready_cycle
                    if rc <= floor:
                        best = floor
                        break
                    if rc < best:
                        best = rc
            else:
                continue
            break
        if events:
            first = events[0][0]
            if first < best:
                best = first
        if best == _NO_EVENT:
            # Deadlock guard: inactive CTAs with nothing pending.
            # (Equality, not identity — the sentinel is a float and
            # object reuse through min() was never guaranteed.)
            best = cycle + 1
        return best

    @property
    def done(self) -> bool:
        return not self.ctas and not self._events

    def finalize(self, cycle: int) -> None:
        self.stats.cycles = cycle
        if self.load_tracker is not None:
            self.load_tracker.close_window()
        if not self._drained:
            self.extension.finalize(cycle)
            self._drained = True
