"""Lightweight stand-ins for live SMs and extensions inside results.

A live :class:`~repro.gpu.gpu.SimulationResult` that carries its SMs
drags the entire simulation graph behind it: each SM holds its memory
subsystem, the kernel trace, and a ``cta_source`` closure. The
analysis layer only ever touches a narrow slice of that graph, so
:func:`repro.gpu.gpu.run_kernel` snapshots it by default — large
sweeps then hold kilobytes per result instead of every SM alive.

These classes used to live in :mod:`repro.runner.snapshot`; they moved
down to the GPU layer so the engine itself can produce light results
(``keep_objects=False``). The runner module re-exports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class L1Snapshot:
    """The L1 attributes the analysis layer reads off ``sm.l1``."""

    num_sets: int
    size_bytes: int
    assoc: int


@dataclass
class SMSnapshot:
    """Stand-in for a live SM inside a portable result."""

    sm_id: int
    done: bool
    l1: L1Snapshot
    load_tracker: Optional[object] = None  # a self-contained LoadTracker
    timeseries: Optional[object] = None  # a WindowSeries when recorded


@dataclass
class ExtensionSnapshot:
    """Stand-in for a live SM extension inside a portable result.

    Carries the extension's self-contained stat structures under their
    original attribute names, so ``ext.stats``, ``ext.load_monitor``
    and ``ext.vtt`` keep working for Figures 9/10/17 and the energy
    model's ``getattr`` probes.
    """

    kind: str
    stats: Optional[object] = None  # LinebackerStats (or None for baseline)
    load_monitor: Optional[object] = None  # LoadMonitor
    vtt: Optional[object] = None  # VictimTagTable (tags only, no data)


def snapshot_extension(ext) -> ExtensionSnapshot:
    if isinstance(ext, ExtensionSnapshot):
        return ext
    return ExtensionSnapshot(
        kind=type(ext).__name__,
        stats=getattr(ext, "stats", None),
        load_monitor=getattr(ext, "load_monitor", None),
        vtt=getattr(ext, "vtt", None),
    )


def snapshot_sm(sm) -> SMSnapshot:
    if isinstance(sm, SMSnapshot):
        return sm
    return SMSnapshot(
        sm_id=sm.sm_id,
        done=sm.done,
        l1=L1Snapshot(
            num_sets=sm.l1.num_sets,
            size_bytes=sm.l1.num_sets * sm.l1.assoc * sm.l1.line_bytes,
            assoc=sm.l1.assoc,
        ),
        load_tracker=sm.load_tracker,
        timeseries=getattr(sm, "timeseries", None),
    )
