"""Simulation statistics.

Collects everything the paper's evaluation plots: IPC, the L1 request
breakdown of Figure 13 (hit / miss / bypass / register-file "Reg hit"),
per-load access tracking for the motivational Figures 2-3 (reused
working sets, streaming data), register-file conflict counts
(Figure 16), off-chip traffic (Figure 17) and energy inputs
(Figure 18).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.metrics import Metric, MetricSet


@dataclass(slots=True)
class LoadBehavior:
    """Per-static-load (per PC) access behaviour within a window."""

    accesses: int = 0
    hits: int = 0
    lines_touched: set[int] = field(default_factory=set)
    lines_reused: set[int] = field(default_factory=set)
    _seen: set[int] = field(default_factory=set)

    def record(self, line_addr: int, hit: bool) -> None:
        self.accesses += 1
        if hit:
            self.hits += 1
        if line_addr in self._seen:
            self.lines_reused.add(line_addr)
        else:
            self._seen.add(line_addr)
        self.lines_touched.add(line_addr)

    @property
    def miss_ratio(self) -> float:
        return 1.0 - (self.hits / self.accesses) if self.accesses else 0.0

    @property
    def reused_bytes(self) -> int:
        return len(self.lines_reused) * 128

    @property
    def touched_bytes(self) -> int:
        return len(self.lines_touched) * 128

    def reset_window(self) -> None:
        """Start a new observation window (keeps nothing)."""
        self.accesses = 0
        self.hits = 0
        self.lines_touched.clear()
        self.lines_reused.clear()
        self._seen.clear()


#: Per-SM counters, declared once; the storage class is generated.
SM_STATS = MetricSet(
    "SMStats",
    owner="gpu.sm",
    metrics=(
        Metric("instructions", description="warp instructions issued", fingerprint=True),
        Metric("loads", description="load instructions executed", fingerprint=True),
        Metric("stores", description="store instructions executed", fingerprint=True),
        Metric("l1_hits", description="L1 data cache hits", fingerprint=True),
        Metric("l1_misses", description="L1 data cache misses", fingerprint=True),
        # "Reg hit" in Figure 13.
        Metric("victim_hits", description="victim-cache (register file) hits", fingerprint=True),
        # PCAL-style L1 bypasses.
        Metric("bypasses", description="L1 bypasses", fingerprint=True),
        Metric("mem_requests", description="memory requests issued past L1", fingerprint=True),
        Metric("cycles", kind="gauge", description="cycles the SM was live", fingerprint=True),
    ),
)

_SMStatsBase = SM_STATS.build()


class SMStats(_SMStatsBase):
    """Per-SM counters (storage generated from :data:`SM_STATS`)."""

    __slots__ = ()

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def request_breakdown(self) -> dict[str, float]:
        """Fractions for Figure 13: hit / miss / bypass / reg_hit."""
        total = self.l1_hits + self.l1_misses + self.victim_hits + self.bypasses
        if total == 0:
            return {"hit": 0.0, "miss": 0.0, "bypass": 0.0, "reg_hit": 0.0}
        return {
            "hit": self.l1_hits / total,
            "miss": self.l1_misses / total,
            "bypass": self.bypasses / total,
            "reg_hit": self.victim_hits / total,
        }


class LoadTracker:
    """Window-based per-PC behaviour tracker (motivational Figures 2-3).

    Tracks, per static load PC, the set of lines touched and re-touched
    in the current window, and accumulates the per-window maxima the
    paper plots ("per-SM working set ... re-accessed within 50000
    cycles period").
    """

    def __init__(self, window_cycles: int = 50_000) -> None:
        self.window_cycles = window_cycles
        self.current: dict[int, LoadBehavior] = defaultdict(LoadBehavior)
        self._window_start = 0
        self.window_reused_bytes: dict[int, list[int]] = defaultdict(list)
        self.window_streaming_bytes: list[int] = []
        self.window_miss_ratios: dict[int, list[float]] = defaultdict(list)
        self.total_accesses: dict[int, int] = defaultdict(int)

    def record(self, pc: int, line_addr: int, hit: bool, cycle: int) -> None:
        if cycle - self._window_start >= self.window_cycles:
            self.close_window()
            # Re-anchor to the fixed window grid, not the triggering
            # access's cycle — otherwise boundaries drift with access
            # timing and windows silently stretch.
            self._window_start = cycle - (cycle % self.window_cycles)
        self.current[pc].record(line_addr, hit)
        self.total_accesses[pc] += 1

    def close_window(self) -> None:
        """Fold the current window into the accumulated summaries."""
        streaming_bytes = 0
        for pc, behaviour in self.current.items():
            if behaviour.accesses == 0:
                continue
            self.window_miss_ratios[pc].append(behaviour.miss_ratio)
            if self.is_streaming_window(behaviour):
                streaming_bytes += behaviour.touched_bytes
            else:
                self.window_reused_bytes[pc].append(behaviour.reused_bytes)
            behaviour.reset_window()
        self.window_streaming_bytes.append(streaming_bytes)

    @staticmethod
    def is_streaming_window(behaviour: LoadBehavior) -> bool:
        """Paper: a load streams when its miss ratio with an *infinite*
        cache exceeds 95% in a window — i.e. essentially no line is
        touched twice. Windows with too few accesses to judge are not
        classified as streaming."""
        if behaviour.accesses < 16:
            return False
        reuse_ratio = len(behaviour.lines_reused) / max(1, len(behaviour.lines_touched))
        first_touch_ratio = len(behaviour.lines_touched) / behaviour.accesses
        return first_touch_ratio > 0.95 and reuse_ratio < 0.05

    def top_loads_reused_working_set(self, top_n: int = 4) -> int:
        """Aggregate reused working set (bytes) of the top-N
        most-accessed non-streaming loads — paper Figure 2."""
        candidates = [
            (self.total_accesses[pc], pc)
            for pc, sizes in self.window_reused_bytes.items()
            if sizes
        ]
        candidates.sort(reverse=True)
        total = 0
        for _, pc in candidates[:top_n]:
            sizes = self.window_reused_bytes[pc]
            total += max(sizes)
        return total

    def mean_streaming_bytes(self) -> float:
        """Average per-window streaming data size — paper Figure 3."""
        sizes = self.window_streaming_bytes
        return sum(sizes) / len(sizes) if sizes else 0.0
