"""Kernel traces: the unit of work the simulator consumes.

A :class:`KernelTrace` describes a whole kernel launch — the CTA grid,
per-CTA resource usage, and a per-warp instruction stream factory. The
factory form (rather than materialized lists) keeps memory bounded when
a grid has hundreds of CTAs: an SM asks for the trace of warp *w* of
CTA *c* only when that CTA is launched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.config import WARP_REGISTER_BYTES
from repro.gpu.isa import Instruction, Op

#: A factory mapping (cta_id, warp_in_cta) -> instruction iterator.
WarpTraceFactory = Callable[[int, int], Iterator[Instruction]]


@dataclass(frozen=True)
class KernelTrace:
    """A kernel launch as seen by the simulator.

    Attributes:
        name: Human-readable kernel name (the benchmark app code).
        num_ctas: CTAs in the grid.
        warps_per_cta: Warps per CTA (threads/32).
        regs_per_thread: Architectural registers per thread. One
            architectural register over a 32-thread warp occupies one
            128-byte warp register.
        warp_trace: Factory producing the instruction stream of warp
            ``w`` of CTA ``c``.
        shared_mem_per_cta: Shared memory footprint, which can bound
            occupancy just like registers.
        app_spec: The generator :class:`~repro.workloads.generator.AppSpec`
            this trace was built from, when it came from the synthetic
            generator. Purely advisory: execution backends that can
            synthesize the address stream in bulk (the vector backend's
            trace compiler) use it; everything else falls back to the
            ``warp_trace`` iterator, which remains the source of truth.
    """

    name: str
    num_ctas: int
    warps_per_cta: int
    regs_per_thread: int
    warp_trace: WarpTraceFactory
    shared_mem_per_cta: int = 0
    app_spec: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def warp_registers_per_warp(self) -> int:
        """Warp-wide registers used by one warp."""
        return self.regs_per_thread

    @property
    def warp_registers_per_cta(self) -> int:
        return self.warps_per_cta * self.regs_per_thread

    @property
    def register_bytes_per_cta(self) -> int:
        return self.warp_registers_per_cta * WARP_REGISTER_BYTES

    def materialize(self, cta_id: int, warp_in_cta: int) -> list[Instruction]:
        """Fully expand one warp's trace (used by tests and analysis)."""
        return list(self.warp_trace(cta_id, warp_in_cta))


def from_instruction_lists(
    name: str,
    per_warp: Sequence[Sequence[Sequence[Instruction]]],
    regs_per_thread: int = 32,
) -> KernelTrace:
    """Build a KernelTrace from nested lists ``per_warp[cta][warp]``.

    Convenience for tests: accepts explicit instruction lists and wraps
    them in the factory interface. Every warp trace must end with an
    EXIT instruction; one is appended when missing.
    """
    if not per_warp:
        raise ValueError("kernel needs at least one CTA")
    warps_per_cta = len(per_warp[0])
    if warps_per_cta == 0:
        raise ValueError("CTA needs at least one warp")
    for cta in per_warp:
        if len(cta) != warps_per_cta:
            raise ValueError("all CTAs must have the same warp count")

    frozen = [
        [_ensure_exit(list(warp)) for warp in cta]
        for cta in per_warp
    ]

    def factory(cta_id: int, warp_in_cta: int) -> Iterator[Instruction]:
        return iter(frozen[cta_id][warp_in_cta])

    return KernelTrace(
        name=name,
        num_ctas=len(per_warp),
        warps_per_cta=warps_per_cta,
        regs_per_thread=regs_per_thread,
        warp_trace=factory,
    )


def _ensure_exit(insts: list[Instruction]) -> list[Instruction]:
    if not insts or insts[-1].op is not Op.EXIT:
        insts = insts + [Instruction(op=Op.EXIT)]
    return insts
