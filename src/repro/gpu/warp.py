"""Warp execution state.

A warp consumes its instruction trace in order. It can be in one of a
few states the scheduler cares about: ready at some cycle, blocked on
outstanding memory responses, inactive because its CTA was throttled,
or finished.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.gpu.isa import Instruction


class WarpState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"      # waiting on memory responses
    INACTIVE = "inactive"    # CTA throttled
    FINISHED = "finished"


class Warp:
    """One warp's dynamic execution state."""

    __slots__ = (
        "warp_id",
        "cta_slot",
        "launch_order",
        "base_register",
        "state",
        "ready_cycle",
        "pending_responses",
        "instructions_retired",
        "throttled",
        "max_outstanding",
        "_trace",
        "_next_inst",
    )

    def __init__(
        self,
        warp_id: int,
        cta_slot: int,
        launch_order: int,
        trace: Iterator[Instruction],
        base_register: int = 0,
        max_outstanding: int = 4,
    ) -> None:
        self.warp_id = warp_id
        self.cta_slot = cta_slot
        self.launch_order = launch_order
        self.base_register = base_register
        self.max_outstanding = max_outstanding
        self.state = WarpState.READY
        self.ready_cycle = 0
        self.pending_responses = 0
        self.instructions_retired = 0
        self.throttled = False
        self._trace = trace
        self._next_inst: Optional[Instruction] = None
        self._advance()

    def _advance(self) -> None:
        self._next_inst = next(self._trace, None)
        if self._next_inst is None:
            self.state = WarpState.FINISHED

    def peek(self) -> Optional[Instruction]:
        """The next instruction to issue, or None when finished."""
        return self._next_inst

    def retire_current(self) -> None:
        """Consume the current instruction and advance the trace."""
        if self._next_inst is None:
            raise RuntimeError("warp has no instruction to retire")
        self.instructions_retired += 1
        self._advance()

    # -- state transitions -------------------------------------------------
    def is_issuable(self, cycle: int) -> bool:
        return self.state is WarpState.READY and self.ready_cycle <= cycle

    def block_on_memory(self, num_responses: int) -> None:
        """Register outstanding line responses for an issued load.

        The warp keeps running (scoreboarding: the loaded value is not
        consumed immediately) until it exceeds ``max_outstanding``
        in-flight lines, at which point it blocks until responses
        drain back below the limit.
        """
        self.pending_responses += num_responses
        if self.pending_responses >= self.max_outstanding:
            self.state = WarpState.BLOCKED

    def memory_response(self, cycle: int) -> None:
        """One outstanding line arrived; unblock when back under the
        outstanding limit.

        A warp whose CTA was throttled while it waited on memory goes
        INACTIVE (not READY) once it would unblock — throttling must
        not let it sneak back into the schedulers.
        """
        if self.pending_responses <= 0:
            raise RuntimeError("memory response for warp with none pending")
        self.pending_responses -= 1
        if (
            self.state is WarpState.BLOCKED
            and self.pending_responses < self.max_outstanding
        ):
            self.state = WarpState.INACTIVE if self.throttled else WarpState.READY
            self.ready_cycle = max(self.ready_cycle, cycle)

    def deactivate(self) -> None:
        """CTA throttled: stop scheduling this warp (keeps trace position)."""
        if self.state is WarpState.FINISHED:
            return
        self.throttled = True
        if self.state is WarpState.READY:
            self.state = WarpState.INACTIVE

    def reactivate(self, cycle: int) -> None:
        self.throttled = False
        if self.state is WarpState.INACTIVE:
            self.state = WarpState.READY
            self.ready_cycle = max(self.ready_cycle, cycle)

    @property
    def finished(self) -> bool:
        return self.state is WarpState.FINISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(id={self.warp_id}, cta={self.cta_slot}, state={self.state.value}, "
            f"ready={self.ready_cycle}, retired={self.instructions_retired})"
        )
