"""``repro.lint``: AST-based invariant checker for the simulator.

A pure-static (no-import, no-execute) analysis framework with a pass
registry, per-pass severity levels, inline ``# repro-lint:
ignore[rule]`` suppressions, a committed baseline file and text/JSON
reporters — exposed as ``python -m repro lint``.

The bundled passes guard the invariants the reproduction's headline
numbers rest on: bit-identical determinism, ``__slots__`` coverage on
the cycle engine's hot classes, capability-flag consistency of the SM
extension interface, pickle/cache safety of everything reachable from
a :class:`~repro.runner.spec.JobSpec`, and parity between SMStats
counters and the golden-statistics schema. See DESIGN.md section 5d.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main, run_lint
from repro.lint.finding import Finding, Severity
from repro.lint.registry import PASSES, RULES, LintPass, Rule, all_passes, lint_pass
from repro.lint.report import LintResult, render_json, render_text
from repro.lint.source import Project, SourceFile, collect_files, load_source

__all__ = [
    "Finding",
    "Severity",
    "LintPass",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "PASSES",
    "RULES",
    "all_passes",
    "collect_files",
    "lint_pass",
    "load_baseline",
    "load_source",
    "main",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
