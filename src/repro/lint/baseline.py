"""Committed finding baseline.

The baseline file (``lint_baseline.json`` at the repository root)
records fingerprints of findings that predate the lint gate and were
consciously accepted rather than fixed or inline-suppressed. The gate
then fails only on *new* findings. The intended steady state is an
empty list — inline ``# repro-lint: ignore[rule]`` comments with a
justification are preferred because they live next to the code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.finding import Finding

BASELINE_NAME = "lint_baseline.json"


def load_baseline(path: Path) -> set[str]:
    """Fingerprints accepted by the committed baseline (empty if none)."""
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):  # {"comment": ..., "findings": [...]}
        data = data.get("findings", [])
    fingerprints: set[str] = set()
    for entry in data:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
    return fingerprints


def load_schema_baseline(path: Path) -> dict:
    """The recorded schema fingerprints (``"schemas"`` section): per
    protocol surface, the accepted field set and the version-constant
    value that acknowledged it."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):
        schemas = data.get("schemas", {})
        if isinstance(schemas, dict):
            return schemas
    return {}


def write_baseline(
    path: Path, findings: list[Finding], schemas: dict | None = None
) -> None:
    """Record ``findings`` (and schema fingerprints) as the baseline.

    ``schemas=None`` preserves whatever fingerprints the existing file
    records — only a run that re-derived them replaces the section.
    """
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "source_line": f.source_line,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    if schemas is None:
        schemas = load_schema_baseline(path)
    payload = {
        "comment": "Accepted lint findings and schema fingerprints; "
                   "regenerate with `python -m repro lint --write-baseline`.",
        "findings": entries,
        "schemas": {name: schemas[name] for name in sorted(schemas)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_baselined(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (fresh, baselined)."""
    fresh, known = [], []
    for f in findings:
        (known if f.fingerprint in baseline else fresh).append(f)
    return fresh, known
