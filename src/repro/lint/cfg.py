"""Per-function control-flow graphs for the dataflow lint passes.

:func:`build_cfg` lowers one ``ast.FunctionDef`` into basic blocks
connected by edges that model the constructs the passes care about:

* ``if``/``elif``/``else`` — branch out of the test, join after;
* ``while``/``for`` — loop entry, body back-edge, ``else`` clause,
  ``break``/``continue``;
* ``with`` — the body's blocks record the *held context expressions*
  (``Block.held``), which is what turns a ``with self._lock:`` region
  into a statically known lock region;
* ``try`` — conservative: every block inside the ``try`` body may jump
  to every handler (an exception can be raised anywhere), handlers and
  body join at the ``finally``/after block;
* ``return``/``raise`` — edge to the function's synthetic exit block.

Granularity is one *statement* per block entry: simple statements are
appended to the current block, while compound statements contribute
their **header node** (the ``If``/``While``/``For``/``With`` itself) so
analyses can see the test/iter/context expressions and the bindings
they introduce (``for x in ...`` defines ``x``; ``with ... as v``
defines ``v``).

The builder never executes code; it is as pure-AST as the rest of
:mod:`repro.lint`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional


def stmt_owned_exprs(stmt: ast.AST) -> list[ast.AST]:
    """The expression nodes evaluated *by this CFG placement itself*.

    Compound statements are placed as headers while their bodies get
    their own blocks — walking the whole node would double-count body
    statements, so analyses walk only the header's own expressions:
    the ``if``/``while`` test, the ``for`` target/iter, the ``with``
    items. Simple statements own their entire subtree.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # nested scopes get their own CFGs
    return [stmt]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``'a.b.c'`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class Block:
    """One basic block: straight-line statements plus CFG edges."""

    bid: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)
    #: Dotted context expressions of every ``with`` statement lexically
    #: enclosing this block, outermost first (``("self._lock",)``).
    held: tuple[str, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        lines = [getattr(s, "lineno", "?") for s in self.stmts]
        return (
            f"Block({self.bid}, lines={lines}, succs={sorted(self.succs)}, "
            f"held={self.held})"
        )


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn = fn
        self.blocks: dict[int, Block] = {}
        self.entry: int = 0
        self.exit: int = 0
        #: statement node -> (block id, index inside the block).
        self.stmt_index: dict[ast.stmt, tuple[int, int]] = {}

    # -- topology helpers -------------------------------------------------
    def block_of(self, stmt: ast.stmt) -> Optional[Block]:
        entry = self.stmt_index.get(stmt)
        return self.blocks[entry[0]] if entry else None

    def statements(self) -> Iterator[tuple[Block, int, ast.stmt]]:
        """Every placed statement, in block/slot order."""
        for bid in sorted(self.blocks):
            block = self.blocks[bid]
            for idx, stmt in enumerate(block.stmts):
                yield block, idx, stmt

    def held_at(self, stmt: ast.stmt) -> tuple[str, ...]:
        """Lock/context expressions lexically held at ``stmt``."""
        block = self.block_of(stmt)
        return block.held if block is not None else ()

    def reachable_between(self, src: ast.stmt, dst: ast.stmt) -> bool:
        """True when some CFG path runs ``src`` then later ``dst``.

        Same-block: ``src`` must precede ``dst``. Cross-block: ``dst``'s
        block must be reachable from ``src``'s block (including around a
        loop back-edge).
        """
        a = self.stmt_index.get(src)
        b = self.stmt_index.get(dst)
        if a is None or b is None:
            return False
        if a[0] == b[0] and a[1] < b[1]:
            return True
        seen = {a[0]}
        work = [a[0]]
        while work:
            for succ in self.blocks[work.pop()].succs:
                if succ == b[0]:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return False


class _LoopCtx:
    """break/continue targets of the innermost enclosing loop."""

    def __init__(self, head: int, after: int) -> None:
        self.head = head
        self.after = after


class _Builder:
    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(fn)
        self._next = 0
        self._loops: list[_LoopCtx] = []
        #: handler-entry block ids of enclosing try statements; any
        #: block created inside a try body gets edges to all of them.
        self._handlers: list[list[int]] = []

    # -- block plumbing ---------------------------------------------------
    def new_block(self, held: tuple[str, ...]) -> int:
        bid = self._next
        self._next += 1
        self.cfg.blocks[bid] = Block(bid=bid, held=held)
        return bid

    def edge(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].succs.add(dst)
        self.cfg.blocks[dst].preds.add(src)

    def place(self, bid: int, stmt: ast.stmt) -> None:
        block = self.cfg.blocks[bid]
        self.cfg.stmt_index[stmt] = (bid, len(block.stmts))
        block.stmts.append(stmt)
        # An exception may escape any statement of a try body.
        for handlers in self._handlers:
            for h in handlers:
                if h != bid:
                    self.edge(bid, h)

    # -- construction -----------------------------------------------------
    def build(self) -> CFG:
        self.cfg.entry = self.new_block(())
        self.cfg.exit = self.new_block(())
        end = self.seq(self.cfg.fn.body, self.cfg.entry, ())
        if end is not None:
            self.edge(end, self.cfg.exit)
        return self.cfg

    def seq(
        self, body: list[ast.stmt], current: Optional[int], held: tuple[str, ...]
    ) -> Optional[int]:
        """Lower a statement list; returns the live fall-through block
        (None when every path returned/raised/broke)."""
        for stmt in body:
            if current is None:
                # Dead code after return/raise/break: place it in an
                # unreachable block so analyses can still index it.
                current = self.new_block(held)
            current = self.stmt(stmt, current, held)
        return current

    def stmt(
        self, node: ast.stmt, current: int, held: tuple[str, ...]
    ) -> Optional[int]:
        if isinstance(node, ast.If):
            return self._if(node, current, held)
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(node, current, held)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, current, held)
        if isinstance(node, ast.Try):
            return self._try(node, current, held)
        if isinstance(node, (ast.Return, ast.Raise)):
            self.place(current, node)
            self.edge(current, self.cfg.exit)
            return None
        if isinstance(node, ast.Break):
            self.place(current, node)
            if self._loops:
                self.edge(current, self._loops[-1].after)
            return None
        if isinstance(node, ast.Continue):
            self.place(current, node)
            if self._loops:
                self.edge(current, self._loops[-1].head)
            return None
        # Simple statement (including nested def/class headers, which
        # are *not* descended into — each function gets its own CFG).
        self.place(current, node)
        return current

    def _if(self, node: ast.If, current: int, held: tuple[str, ...]) -> int:
        self.place(current, node)
        then_b = self.new_block(held)
        self.edge(current, then_b)
        then_end = self.seq(node.body, then_b, held)
        join = self.new_block(held)
        if node.orelse:
            else_b = self.new_block(held)
            self.edge(current, else_b)
            else_end = self.seq(node.orelse, else_b, held)
            if else_end is not None:
                self.edge(else_end, join)
        else:
            self.edge(current, join)  # test-false falls through
        if then_end is not None:
            self.edge(then_end, join)
        return join

    def _loop(
        self,
        node: ast.While | ast.For | ast.AsyncFor,
        current: int,
        held: tuple[str, ...],
    ) -> int:
        head = self.new_block(held)
        self.edge(current, head)
        self.place(head, node)  # test / iter evaluation + loop binding
        after = self.new_block(held)
        body_b = self.new_block(held)
        self.edge(head, body_b)
        self._loops.append(_LoopCtx(head=head, after=after))
        body_end = self.seq(node.body, body_b, held)
        self._loops.pop()
        if body_end is not None:
            self.edge(body_end, head)  # the back-edge
        if node.orelse:
            else_b = self.new_block(held)
            self.edge(head, else_b)
            else_end = self.seq(node.orelse, else_b, held)
            if else_end is not None:
                self.edge(else_end, after)
        else:
            self.edge(head, after)  # loop exhausted / test false
        return after

    def _with(
        self, node: ast.With | ast.AsyncWith, current: int, held: tuple[str, ...]
    ) -> Optional[int]:
        self.place(current, node)  # context managers enter *outside*
        contexts = tuple(
            name
            for item in node.items
            if (name := dotted_name(item.context_expr)) is not None
        )
        inner_held = held + contexts
        body_b = self.new_block(inner_held)
        self.edge(current, body_b)
        body_end = self.seq(node.body, body_b, inner_held)
        if body_end is None:
            return None
        after = self.new_block(held)
        self.edge(body_end, after)
        return after

    def _try(self, node: ast.Try, current: int, held: tuple[str, ...]) -> Optional[int]:
        self.place(current, node)
        handler_blocks = [self.new_block(held) for _ in node.handlers]
        body_b = self.new_block(held)
        self.edge(current, body_b)
        for h in handler_blocks:
            self.edge(body_b, h)
        self._handlers.append(handler_blocks)
        body_end = self.seq(node.body, body_b, held)
        self._handlers.pop()

        after = self.new_block(held)
        live = False
        if body_end is not None:
            if node.orelse:
                else_end = self.seq(node.orelse, body_end, held)
                if else_end is not None:
                    self.edge(else_end, after)
                    live = True
            else:
                self.edge(body_end, after)
                live = True
        for handler, h_block in zip(node.handlers, handler_blocks):
            # The ``except X as e`` binding lives on the handler node;
            # place the handler itself so analyses can see it.
            self.place(h_block, handler)  # type: ignore[arg-type]
            h_end = self.seq(handler.body, h_block, held)
            if h_end is not None:
                self.edge(h_end, after)
                live = True
        if node.finalbody:
            final_b = self.new_block(held)
            self.edge(after, final_b)
            final_end = self.seq(node.finalbody, final_b, held)
            return final_end if live else None
        return after if live else None


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The CFG of ``fn`` (bodies of nested defs are not descended into)."""
    return _Builder(fn).build()
