"""Lint orchestration and the ``python -m repro lint`` entry point.

Default analysis roots are the installed ``repro`` package sources
plus ``tests/golden.py`` (which carries the golden fingerprint schema
the parity pass checks). Explicit paths replace the default set, which
is what the fixture self-tests use.
"""

from __future__ import annotations

import argparse
import dataclasses
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import (
    BASELINE_NAME,
    load_baseline,
    load_schema_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.finding import Finding
from repro.lint.registry import RULES, all_passes
from repro.lint.report import LintResult, render_json, render_text
from repro.lint.source import Project, collect_files


def package_root() -> Path:
    """Directory of the ``repro`` package sources (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """Best-effort repository root (``src/repro`` -> repo)."""
    return package_root().parent.parent


def default_paths() -> list[Path]:
    paths = [package_root()]
    golden = repo_root() / "tests" / "golden.py"
    if golden.is_file():
        paths.append(golden)
    return paths


def changed_paths(root: Path, ref: Optional[str] = None) -> list[Path]:
    """Python files touched relative to ``ref`` (or the worktree).

    Without a ref: files modified versus ``HEAD`` plus untracked files
    — "what my working copy changed". With a ref (e.g. ``origin/main``):
    ``git diff --name-only <ref>``. Deleted files are dropped. Note the
    cross-file passes see *only* these files, so twin/anchor checks
    that need both sides of a pair are skipped when one side did not
    change — ``--changed`` is a fast local filter, not the CI gate.
    """
    def _git(*argv: str) -> list[str]:
        proc = subprocess.run(
            ["git", "-C", str(root), *argv],
            capture_output=True, text=True, check=False,
        )
        if proc.returncode != 0:
            raise ValueError(
                f"git {' '.join(argv)} failed: {proc.stderr.strip() or 'not a git checkout?'}"
            )
        return [line for line in proc.stdout.splitlines() if line.strip()]

    names: list[str] = []
    if ref:
        names += _git("diff", "--name-only", ref)
    else:
        names += _git("diff", "--name-only", "HEAD")
        names += _git("ls-files", "--others", "--exclude-standard")
    out: list[Path] = []
    seen: set[str] = set()
    for name in names:
        if name in seen or not name.endswith(".py"):
            continue
        seen.add(name)
        path = root / name
        if path.is_file():
            out.append(path)
    return out


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    pass_names: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run the registered passes over ``paths`` and triage findings."""
    root = root or repo_root()
    files = collect_files([Path(p) for p in (paths or default_paths())], root)
    project = Project(files, root)
    project.schema_baseline = (
        load_schema_baseline(baseline_path) if baseline_path else {}
    )

    passes = all_passes()
    if pass_names:
        wanted = set(pass_names)
        unknown = wanted - {p.name for p in passes}
        if unknown:
            raise ValueError(f"unknown lint pass(es): {sorted(unknown)}")
        passes = [p for p in passes if p.name in wanted]

    raw: list[Finding] = []
    seen: set[tuple[str, str, int]] = set()
    for lint in passes:
        for finding in lint.run(project):
            key = (finding.rule, finding.path, finding.line)
            if key not in seen:  # e.g. nested defs double-reporting a line
                seen.add(key)
                raw.append(finding)

    by_path = {src.relpath: src for src in files}
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        src = by_path.get(finding.path)
        if src is None or not src.is_suppressed(
            finding.line, finding.rule, finding.pass_name
        ):
            kept.append(finding)
            continue
        rule = RULES.get(finding.rule)
        if (
            rule is not None
            and rule.needs_justification
            and not src.suppression_note(finding.line)
        ):
            # A bare ignore is not an argument; keep the finding and
            # say what is missing.
            kept.append(
                dataclasses.replace(
                    finding,
                    message=finding.message
                    + " [suppression requires a justification: "
                    "`# repro-lint: ignore[...] <why this is safe>`]",
                )
            )
            continue
        suppressed += 1

    baseline = load_baseline(baseline_path) if baseline_path else set()
    fresh, known = split_baselined(kept, baseline)

    from repro.lint.passes.protocol_drift import derive_schemas

    return LintResult(
        findings=sorted(fresh, key=Finding.sort_key),
        baselined=sorted(known, key=Finding.sort_key),
        suppressed=suppressed,
        files_checked=len(files),
        passes_run=[p.name for p in passes],
        schemas=derive_schemas(project),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "AST-based invariant checker for the simulator: determinism, "
            "__slots__ coverage, capability-flag consistency, pickle "
            "safety and golden-schema parity. Pure static analysis — "
            "nothing is imported or executed."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro sources "
             "and tests/golden.py)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of text",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="also write the JSON report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH (GitHub code "
             "scanning upload)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="WORKTREE", default=None, metavar="REF",
        help="lint only files changed in the working copy (or versus REF, "
             "e.g. --changed origin/main); a fast local filter — "
             "cross-file checks still need the full-tree run",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file (default: <repo>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file",
    )
    parser.add_argument(
        "--pass", dest="passes", action="append", metavar="NAME",
        help="run only the named pass (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every pass and rule, then exit",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also show baselined (accepted) findings",
    )
    return parser


def _list_rules() -> int:
    for lint in all_passes():
        print(f"{lint.name}: {lint.description}")
        for rule in lint.rules:
            print(f"  {rule.name:28s} {rule.severity.value:7s} {rule.summary}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    baseline_path = (
        Path(args.baseline) if args.baseline else repo_root() / BASELINE_NAME
    )
    paths = [Path(p) for p in args.paths] if args.paths else None
    try:
        if args.changed is not None:
            if paths is not None:
                print(
                    "error: --changed and explicit paths are mutually "
                    "exclusive", file=sys.stderr,
                )
                return 2
            ref = None if args.changed == "WORKTREE" else args.changed
            paths = changed_paths(repo_root(), ref)
            if not paths:
                print("no changed python files; nothing to lint")
                return 0
        result = run_lint(
            paths=paths, baseline_path=baseline_path, pass_names=args.passes
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        accepted = result.findings + result.baselined
        # A --changed run saw a partial tree; keep the recorded schema
        # fingerprints rather than overwrite them from half a project.
        write_baseline(
            baseline_path, accepted,
            schemas=result.schemas if args.changed is None else None,
        )
        print(
            f"wrote {len(accepted)} finding(s) and "
            f"{len(result.schemas)} schema fingerprint(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.report:
        Path(args.report).write_text(render_json(result), encoding="utf-8")
    if args.sarif:
        from repro.lint.sarif import render_sarif

        Path(args.sarif).write_text(render_sarif(result), encoding="utf-8")
    if args.json:
        print(render_json(result), end="")
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
