"""Dataflow analyses over :mod:`repro.lint.cfg` graphs.

Two analyses power the dataflow passes:

* :class:`ReachingDefinitions` — the classic forward may-analysis:
  which assignments of a name can still be "live" when a statement
  runs. The determinism pass uses it to make ``set-iteration``
  flow-sensitive (a ``sorted(...)`` rebinding on any path to the use
  suppresses the finding), and the fixture tests pin its behaviour on
  branch joins and loop back-edges.
* :class:`HeldLocks` — a forward *must*-analysis of explicit
  ``X.acquire()``/``X.release()`` calls, merged with the lexical
  ``with X:`` regions the CFG already annotates. ``held_at`` answers
  "which locks are provably held when this statement executes", which
  is the primitive behind guarded-attribute inference, lock-order and
  lock-held-across-blocking-call checks.

Everything here is intraprocedural; the thread-safety pass layers its
own call-site lock propagation on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.lint.cfg import CFG, dotted_name


@dataclass(frozen=True)
class Definition:
    """One binding of ``name``, anchored at its defining statement."""

    name: str
    node: ast.AST               # the defining statement (or arg node)
    value: Optional[ast.AST]    # RHS expression when one exists

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"Definition({self.name!r}@{getattr(self.node, 'lineno', '?')})"


def _target_names(target: ast.AST) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def stmt_definitions(stmt: ast.AST) -> list[Definition]:
    """The name bindings ``stmt`` itself introduces (no recursion into
    nested statement bodies — the CFG places those separately)."""
    defs: list[Definition] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                defs.append(Definition(name, stmt, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name in _target_names(stmt.target):
            defs.append(Definition(name, stmt, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            defs.append(Definition(name, stmt, None))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            defs.append(Definition(name, stmt, None))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    defs.append(Definition(name, stmt, None))
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        defs.append(Definition(stmt.name, stmt, None))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        defs.append(Definition(stmt.name, stmt, None))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            defs.append(Definition(bound, stmt, None))
    return defs


class ReachingDefinitions:
    """Forward may-analysis: which defs of each name reach each point."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._gen: dict[int, list[Definition]] = {}
        self._in: dict[int, frozenset[Definition]] = {}
        self._out: dict[int, frozenset[Definition]] = {}
        self._solve()

    def _param_defs(self) -> list[Definition]:
        args = self.cfg.fn.args
        every = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        return [Definition(a.arg, a, None) for a in every]

    @staticmethod
    def _transfer(
        defs: frozenset[Definition], stmts: Iterable[ast.AST]
    ) -> frozenset[Definition]:
        current = set(defs)
        for stmt in stmts:
            new = stmt_definitions(stmt)
            if new:
                killed = {d.name for d in new}
                current = {d for d in current if d.name not in killed}
                current.update(new)
        return frozenset(current)

    def _solve(self) -> None:
        blocks = self.cfg.blocks
        entry_defs = frozenset(self._param_defs())
        for bid in blocks:
            self._in[bid] = frozenset()
            self._out[bid] = frozenset()
        self._in[self.cfg.entry] = entry_defs
        work = list(blocks)
        while work:
            bid = work.pop(0)
            block = blocks[bid]
            in_set: set[Definition] = set()
            if bid == self.cfg.entry:
                in_set.update(entry_defs)
            for pred in block.preds:
                in_set.update(self._out[pred])
            frozen_in = frozenset(in_set)
            out = self._transfer(frozen_in, block.stmts)
            changed = out != self._out[bid] or frozen_in != self._in[bid]
            self._in[bid] = frozen_in
            self._out[bid] = out
            if changed:
                for succ in block.succs:
                    if succ not in work:
                        work.append(succ)

    def defs_at(self, stmt: ast.AST) -> dict[str, set[Definition]]:
        """Reaching defs immediately *before* ``stmt`` runs, by name."""
        entry = self.cfg.stmt_index.get(stmt)
        if entry is None:
            return {}
        bid, idx = entry
        defs = self._transfer(self._in[bid], self.cfg.blocks[bid].stmts[:idx])
        by_name: dict[str, set[Definition]] = {}
        for d in defs:
            by_name.setdefault(d.name, set()).add(d)
        return by_name

    def reaching(self, stmt: ast.AST, name: str) -> set[Definition]:
        return self.defs_at(stmt).get(name, set())


class HeldLocks:
    """Must-analysis of explicitly acquired locks, plus lexical regions.

    ``X.acquire()`` adds the dotted name ``X`` to the held set,
    ``X.release()`` removes it; the meet over CFG joins is set
    intersection (a lock is held only when *every* path holds it).
    Lexical ``with`` contexts come from :attr:`Block.held` for free.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._in: dict[int, Optional[frozenset[str]]] = {}
        self._solve()

    @staticmethod
    def _lock_calls(stmt: ast.AST) -> list[tuple[str, str]]:
        """``(lockname, 'acquire'|'release')`` events in ``stmt``."""
        events = []
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                name = dotted_name(node.func.value)
                if name is not None:
                    events.append((name, node.func.attr))
        return events

    @classmethod
    def _transfer(
        cls, held: frozenset[str], stmts: Iterable[ast.AST]
    ) -> frozenset[str]:
        current = set(held)
        for stmt in stmts:
            # Nested compound statements own their lock events via
            # their CFG placement; only look at this statement's own
            # expressions (headers carry tests/iters only).
            probe = stmt
            if isinstance(stmt, (ast.If, ast.While)):
                probe = stmt.test
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                probe = stmt.iter
            elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try,
                                   ast.ExceptHandler)):
                continue
            for name, what in cls._lock_calls(probe):
                if what == "acquire":
                    current.add(name)
                else:
                    current.discard(name)
        return frozenset(current)

    def _solve(self) -> None:
        blocks = self.cfg.blocks
        for bid in blocks:
            self._in[bid] = None  # "not yet known" (top)
        self._in[self.cfg.entry] = frozenset()
        work = list(blocks)
        while work:
            bid = work.pop(0)
            block = blocks[bid]
            preds = [self._in[p] for p in block.preds]
            known = [
                self._transfer(p, blocks[pid].stmts)
                for p, pid in zip(preds, block.preds)
                if p is not None
            ]
            if bid == self.cfg.entry:
                in_set: Optional[frozenset[str]] = frozenset()
            elif known:
                in_set = frozenset.intersection(*known)
            else:
                in_set = None
            if in_set != self._in[bid]:
                self._in[bid] = in_set
                for succ in block.succs:
                    if succ not in work:
                        work.append(succ)

    def held_at(self, stmt: ast.AST) -> frozenset[str]:
        """Locks provably held when ``stmt`` executes: the lexical
        ``with`` contexts plus must-acquired explicit locks."""
        entry = self.cfg.stmt_index.get(stmt)
        if entry is None:
            return frozenset()
        bid, idx = entry
        block = self.cfg.blocks[bid]
        acquired = self._in[bid] or frozenset()
        acquired = self._transfer(acquired, block.stmts[:idx])
        return acquired | frozenset(block.held)


def any_path_has(
    cfg: CFG,
    stmt: ast.AST,
    predicate: Callable[[ast.AST], bool],
) -> bool:
    """True when some statement satisfying ``predicate`` can execute
    before ``stmt`` on at least one CFG path (including ``stmt``'s own
    block, earlier slots)."""
    for _block, _idx, candidate in cfg.statements():
        if candidate is stmt:
            continue
        if predicate(candidate) and cfg.reachable_between(candidate, stmt):
            return True
    return False
