"""Finding and severity types shared by every lint pass.

A :class:`Finding` is one rule violation anchored to a file and line.
Its :attr:`~Finding.fingerprint` deliberately excludes the line number
— it hashes the rule, the file and the *text* of the flagged line —
so baselined findings survive unrelated edits that shift code around.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    message: str
    path: str          # project-relative, '/'-separated
    line: int          # 1-based; 0 = whole-file / cross-file finding
    severity: Severity = Severity.ERROR
    source_line: str = ""  # stripped text of the flagged line
    pass_name: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + line *text*.

        Line numbers are excluded on purpose: moving code must not
        invalidate a committed baseline entry, while editing the
        offending line (presumably fixing it) must.
        """
        basis = f"{self.rule}|{self.path}|{self.source_line}"
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint,
            "pass": self.pass_name,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)
