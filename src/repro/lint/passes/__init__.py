"""Bundled lint passes: importing this package registers them all."""

from repro.lint.passes import (  # noqa: F401  (registration side effects)
    capability,
    determinism,
    pickle_safety,
    protocol_drift,
    slots,
    stats_parity,
    thread_safety,
)
