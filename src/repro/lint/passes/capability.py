"""Capability-flag consistency for the SM extension interface.

The hot load path in :class:`repro.gpu.sm.SM` never calls an extension
hook directly: it reads a plain bool resolved once at attach time
(``wants_ticks`` gates ``on_tick``, ``has_victim_cache`` gates
``lookup_victim``, ...). That indirection is fast and fragile — three
distinct drift modes, all invisible until a policy silently stops
firing:

* ``capability-flag-unresolved`` — a flag declared on ``SMExtension``
  that ``attach`` never auto-resolves (or an ``attach`` resolution for
  an undeclared flag). New flags must follow the
  ``if self.F is None: self.F = cls.H is not base.H`` pattern.
* ``hook-missing-flag`` — a hook method added to ``SMExtension``
  without a capability flag. The SM would never call it (or worse,
  call it unconditionally on the hot path). Lifecycle hooks
  (``on_cta_*``, ``try_reactivate_cta``, ``finalize``, ``attach``)
  are exempt: they fire off the hot path.
* ``capability-gate-missing`` — the SM side: every flag must be
  mirrored into a ``self._ext_*`` gate in ``SM.__init__`` (resolved
  against the same hook name) and that gate must actually be read
  somewhere in the SM.
* ``capability-flag-pinned`` — a subclass overrides a hook but pins
  the matching flag to a literal ``False`` unconditionally. The
  override is then dead code. Pinning is legal only when guarded
  (inside an ``if``) or computed from configuration, e.g. Linebacker's
  ``self.has_victim_cache = cfg.enable_victim_cache``.
* ``backend-capability-mismatch`` — the registry-level twin of the
  same discipline: an architecture registered with a vectorized
  backend in ``supports_backends`` whose runner attaches an SM
  extension (``extension_factory=...``). The vector engine has no
  extension hooks, so every job for that architecture would emit a
  :class:`~repro.engine.base.BackendFallbackWarning` and silently run
  on the object engine — the capability claim is a lie. Either drop
  the backend from ``supports_backends`` or vectorize the hooks.

The pass statically re-derives the flag <-> hook mapping from the
``attach`` body (and the backend claims from ``@register(...)``
decorations), so it tracks the real contract instead of a
hand-maintained table.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "capability"

BASE_CLASS = "SMExtension"
SM_CLASS = "SM"

#: Hooks that fire off the hot path and are deliberately ungated.
UNGATED_HOOKS = {
    "attach",
    "on_cta_launched",
    "on_cta_finished",
    "try_reactivate_cta",
    "finalize",
}

#: Backends that cannot run SM extensions; a runner registered for one
#: of these must never pass ``extension_factory=``.
EXTENSION_FREE_BACKENDS = ("vector",)


def _methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _declared_flags(node: ast.ClassDef) -> dict[str, int]:
    """Class-level ``flag = None``-style declarations -> line."""
    flags: dict[str, int] = {}
    for stmt in node.body:
        target = None
        value = None
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            target, value = stmt.targets[0].id, stmt.value
        if (
            target is not None
            and not target.startswith("_")
            and isinstance(value, ast.Constant)
            and value.value is None
        ):
            flags[target] = stmt.lineno
    return flags


def _attach_resolution(attach: ast.FunctionDef) -> dict[str, tuple[str, int]]:
    """flag -> (hook, line) parsed from the auto-resolution pattern::

        if self.F is None:
            self.F = cls.H is not base.H
    """
    mapping: dict[str, tuple[str, int]] = {}
    for stmt in ast.walk(attach):
        if not isinstance(stmt, ast.If):
            continue
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.left, ast.Attribute)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            continue
        flag = test.left.attr
        for inner in stmt.body:
            if not (
                isinstance(inner, ast.Assign)
                and len(inner.targets) == 1
                and isinstance(inner.targets[0], ast.Attribute)
                and inner.targets[0].attr == flag
            ):
                continue
            value = inner.value
            if (
                isinstance(value, ast.Compare)
                and len(value.ops) == 1
                and isinstance(value.ops[0], (ast.IsNot, ast.NotEq))
                and isinstance(value.left, ast.Attribute)
            ):
                mapping[flag] = (value.left.attr, inner.lineno)
    return mapping


def _sm_gates(sm_node: ast.ClassDef) -> dict[str, tuple[str, int, str]]:
    """flag -> (hook, line, gate attr) from
    ``self._ext_X = flag(ext.F, "H")`` in ``SM.__init__``."""
    init = _methods(sm_node).get("__init__")
    if init is None:
        return {}
    gates: dict[str, tuple[str, int, str]] = {}
    for stmt in ast.walk(init):
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Attribute)
            and stmt.targets[0].attr.startswith("_ext_")
        ):
            continue
        call = stmt.value
        if not (isinstance(call, ast.Call) and len(call.args) == 2):
            continue
        flag_arg, hook_arg = call.args
        if isinstance(flag_arg, ast.Attribute) and isinstance(
            hook_arg, ast.Constant
        ) and isinstance(hook_arg.value, str):
            gates[flag_arg.attr] = (hook_arg.value, stmt.lineno, stmt.targets[0].attr)
    return gates


def _gate_reads(sm_node: ast.ClassDef) -> set[str]:
    """Every ``self._ext_*`` attribute *read* inside the SM class."""
    reads: set[str] = set()
    for node in ast.walk(sm_node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr.startswith("_ext_")
        ):
            reads.add(node.attr)
    return reads


def _project_subclasses(
    project: Project, base: str
) -> list[tuple[SourceFile, ast.ClassDef]]:
    """Classes transitively derived (by name, within the project)."""
    derived: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
    changed = True
    known = {base}
    while changed:
        changed = False
        for src, node in project.iter_all_classes():
            if node.name in known:
                continue
            for b in node.bases:
                name = b.id if isinstance(b, ast.Name) else (
                    b.attr if isinstance(b, ast.Attribute) else None
                )
                if name in known:
                    known.add(node.name)
                    derived[node.name] = (src, node)
                    changed = True
                    break
    return list(derived.values())


def _unconditional_false_pins(node: ast.ClassDef) -> dict[str, int]:
    """flag -> line for pins that are literal ``False`` and unguarded.

    Class-level ``F = False`` always counts. Inside ``__init__`` /
    ``attach``, only statements at the method's top level count — an
    assignment nested under ``if``/``try`` is a guarded pin.
    """
    pins: dict[str, int] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            if isinstance(stmt.value, ast.Constant) and stmt.value.value is False:
                pins[stmt.targets[0].id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if isinstance(stmt.value, ast.Constant) and stmt.value.value is False:
                pins[stmt.target.id] = stmt.lineno
        elif isinstance(stmt, ast.FunctionDef) and stmt.name in {"__init__", "attach"}:
            for inner in stmt.body:  # top level only: nested = guarded
                if (
                    isinstance(inner, ast.Assign)
                    and len(inner.targets) == 1
                    and isinstance(inner.targets[0], ast.Attribute)
                    and isinstance(inner.targets[0].value, ast.Name)
                    and inner.targets[0].value.id == "self"
                    and isinstance(inner.value, ast.Constant)
                    and inner.value.value is False
                ):
                    pins[inner.targets[0].attr] = inner.lineno
    return pins


def _ancestry_overrides(
    name: str,
    project: Project,
    hooks: set[str],
) -> set[str]:
    """Hook methods defined by ``name`` or any project ancestor below
    :data:`BASE_CLASS`."""
    overridden: set[str] = set()
    cursor: Optional[str] = name
    seen: set[str] = set()
    while cursor and cursor != BASE_CLASS and cursor not in seen:
        seen.add(cursor)
        entry = project.find_class(cursor)
        if entry is None:
            break
        _, node = entry
        overridden |= set(_methods(node)) & hooks
        nxt = None
        for b in node.bases:
            if isinstance(b, ast.Name):
                nxt = b.id
                break
        cursor = nxt
    return overridden


def _decorator_name(dec: ast.expr) -> Optional[str]:
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    return None


def _registered_runners(
    project: Project,
) -> Iterable[tuple[SourceFile, ast.FunctionDef, str, tuple[str, ...], int]]:
    """Every ``@register(...)``-decorated runner with its claimed
    backends: ``(src, fn, arch_name, backends, decoration line)``."""
    for src in project.files:
        for fn in (
            n for n in ast.walk(src.tree) if isinstance(n, ast.FunctionDef)
        ):
            yield from _runner_decorations(src, fn)


def _runner_decorations(src: SourceFile, fn: ast.FunctionDef):
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        if _decorator_name(dec.func) != "register":
            continue
        arch = ""
        if dec.args and isinstance(dec.args[0], ast.Constant) and isinstance(
            dec.args[0].value, str
        ):
            arch = dec.args[0].value
        backends: tuple[str, ...] = ()
        for kw in dec.keywords:
            if kw.arg == "supports_backends" and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                backends = tuple(
                    elt.value
                    for elt in kw.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
        yield src, fn, arch, backends, dec.lineno


def _attaches_extension(fn: ast.FunctionDef) -> Optional[int]:
    """Line of the first ``extension_factory=<non-None>`` keyword in
    ``fn``'s body, or None when the runner is extension-free."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg != "extension_factory":
                continue
            if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                continue
            return node.lineno
    return None


RULES = (
    Rule("capability-flag-unresolved", Severity.ERROR,
         "flag declared without attach auto-resolution (or vice versa)"),
    Rule("hook-missing-flag", Severity.ERROR,
         "SMExtension hook without a capability flag"),
    Rule("capability-gate-missing", Severity.ERROR,
         "capability flag not mirrored (or unused) as an SM _ext_ gate"),
    Rule("capability-flag-pinned", Severity.ERROR,
         "overridden hook with its flag pinned False unguarded"),
    Rule("backend-capability-mismatch", Severity.ERROR,
         "arch claims a vectorized backend but its runner attaches an "
         "SM extension"),
)


@lint_pass(
    PASS_NAME,
    RULES,
    "re-derives SMExtension.attach flag resolution statically",
)
def run(project: Project) -> Iterable[Finding]:
    # 0. Registry backend claims vs runner bodies (independent of the
    # SMExtension anchor: the registry may be linted on its own).
    for r_src, r_fn, arch, backends, dec_line in _registered_runners(project):
        claimed = [b for b in backends if b in EXTENSION_FREE_BACKENDS]
        if not claimed:
            continue
        attach_line = _attaches_extension(r_fn)
        if attach_line is not None:
            yield make_finding(
                "backend-capability-mismatch",
                f"architecture {arch or r_fn.name!r} claims backend(s) "
                f"{claimed} in supports_backends but its runner passes "
                "extension_factory=; those engines have no extension "
                "hooks, so every job would warn and fall back to "
                "'object' — drop the claim or vectorize the hooks",
                r_src, attach_line, PASS_NAME,
            )

    entry = project.find_class(BASE_CLASS)
    if entry is None:
        return
    src, base_node = entry
    methods = _methods(base_node)
    flags = _declared_flags(base_node)
    attach = methods.get("attach")
    mapping = _attach_resolution(attach) if attach is not None else {}

    # 1. Declared flags <-> attach resolution, both directions.
    for flag, line in sorted(flags.items()):
        if flag not in mapping:
            yield make_finding(
                "capability-flag-unresolved",
                f"flag {flag!r} is declared but never auto-resolved in "
                f"{BASE_CLASS}.attach",
                src, line, PASS_NAME,
            )
    for flag, (hook, line) in sorted(mapping.items()):
        if flag not in flags:
            yield make_finding(
                "capability-flag-unresolved",
                f"attach resolves {flag!r} (from hook {hook!r}) but the "
                f"flag is not declared on {BASE_CLASS}",
                src, line, PASS_NAME,
            )

    # 2. Every non-lifecycle hook needs a flag.
    gated_hooks = {hook for hook, _ in mapping.values()}
    hook_names = {
        name for name in methods
        if not name.startswith("_") and name not in UNGATED_HOOKS
    }
    for name in sorted(hook_names - gated_hooks):
        yield make_finding(
            "hook-missing-flag",
            f"hook {BASE_CLASS}.{name} has no capability flag; the SM "
            "cannot gate it on the hot path (add a flag + attach "
            "resolution + SM gate, or list it as a lifecycle hook)",
            src, methods[name].lineno, PASS_NAME,
        )

    # 3. SM-side gates mirror the mapping and are actually read.
    sm_entry = project.find_class(SM_CLASS)
    if sm_entry is not None:
        sm_src, sm_node = sm_entry
        gates = _sm_gates(sm_node)
        reads = _gate_reads(sm_node)
        for flag, (hook, _line) in sorted(mapping.items()):
            if flag not in gates:
                yield make_finding(
                    "capability-gate-missing",
                    f"flag {flag!r} has no _ext_ gate in {SM_CLASS}.__init__",
                    sm_src, sm_node.lineno, PASS_NAME,
                )
            elif gates[flag][0] != hook:
                yield make_finding(
                    "capability-gate-missing",
                    f"{SM_CLASS} gate for {flag!r} resolves hook "
                    f"{gates[flag][0]!r} but attach resolves {hook!r}",
                    sm_src, gates[flag][1], PASS_NAME,
                )
        for flag, (hook, line, gate_attr) in sorted(gates.items()):
            if gate_attr not in reads:
                yield make_finding(
                    "capability-gate-missing",
                    f"{SM_CLASS}.{gate_attr} (gate for {flag!r}) is "
                    "assigned but never read; the hook is effectively "
                    "ungated",
                    sm_src, line, PASS_NAME,
                )

    # 4. Subclasses pinning flags over overridden hooks.
    all_hooks = gated_hooks
    flag_for_hook = {hook: flag for flag, (hook, _) in mapping.items()}
    for sub_src, sub_node in _project_subclasses(project, BASE_CLASS):
        pins = _unconditional_false_pins(sub_node)
        if not pins:
            continue
        overridden = _ancestry_overrides(sub_node.name, project, all_hooks)
        for hook in sorted(overridden):
            flag = flag_for_hook[hook]
            if flag in pins:
                yield make_finding(
                    "capability-flag-pinned",
                    f"{sub_node.name} overrides {hook} but pins "
                    f"{flag}=False unconditionally; the override can "
                    "never fire — guard the pin or drop the override",
                    sub_src, pins[flag], PASS_NAME,
                )
