"""Determinism sanitizer.

The simulator's headline numbers are only trustworthy because every
run is bit-identically deterministic (``tests/golden_stats.json``) and
because the persistent result cache may replay any run. This pass
flags the constructs that historically break that property:

* ``set-iteration`` — iterating a ``set``/``frozenset`` (hash order is
  salted per process for strings and id-dependent for objects; even
  int sets make iteration order a function of insertion history in
  ways nobody audits). Wrap in ``sorted(...)`` or use a dict.
* ``id-keyed-dict`` — using ``id(x)`` as a lookup key; ids are reused
  after garbage collection and differ across processes, which silently
  corrupted the Best-SWL memo before PR 1.
* ``unseeded-random`` — module-level ``random`` / ``numpy.random``
  draws without a visible ``seed(...)`` call in the same module.
* ``wall-clock`` — ``time.time()``, ``datetime.now()`` and friends in
  simulation code; results must depend only on the config seed.
* ``float-identity`` — ``is`` / ``is not`` against a float value
  (e.g. a ``float("inf")`` sentinel). Float interning is an
  implementation detail; the engine's ``best is _NO_EVENT`` bug
  compared a *computed* infinity against the sentinel object and only
  matched when CPython happened to reuse it.

Since the dataflow engine landed, the ``set-iteration`` and
``unseeded-random`` rules are **flow-sensitive** inside functions:

* iterating a local name flags only when a set-valued binding actually
  *reaches* the use — a ``sorted(...)``/``list(...)``/``tuple(...)``
  rebinding on any path to the use suppresses the finding (reaching
  definitions over the per-function CFG), so the old "assigned a set
  anywhere in the module" over-approximation no longer fires on
  normalized copies;
* a global-RNG draw is accepted when a ``seed(...)`` call can execute
  before it on some CFG path of the same function (or anywhere outside
  it — cross-function seeding stays conservatively accepted); a seed
  that only runs *after* every draw no longer counts.

Scope: simulation-core packages only. Orchestration layers
(:mod:`repro.runner`, :mod:`repro.service`, :mod:`repro.analysis`,
:mod:`repro.bench`, :mod:`repro.workloads`, :mod:`repro.power`, the
CLI) legitimately read wall clocks for progress reporting, job
deadlines and uptime counters, so they are skipped. Files outside
the ``repro`` package (e.g. lint self-test fixtures) are always in
scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import ReachingDefinitions, any_path_has
from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "determinism"

#: repro subpackages (and top-level modules) outside the simulation
#: core: wall clocks and host-dependent state are allowed there.
_EXCLUDED_SUBPACKAGES = {
    "analysis", "runner", "bench", "workloads", "power", "lint", "service",
}
_EXCLUDED_MODULES = {"__main__.py"}

_WALL_CLOCK_ATTRS = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

_RANDOM_SAFE = {"seed", "Random", "SystemRandom", "getstate", "setstate", "default_rng"}


def _in_scope(src: SourceFile) -> bool:
    parts = src.relpath.split("/")
    if "repro" not in parts:
        return True
    idx = parts.index("repro")
    rest = parts[idx + 1:]
    if not rest or rest[0] in _EXCLUDED_SUBPACKAGES:
        return False
    if len(rest) == 1 and rest[0] in _EXCLUDED_MODULES:
        return False
    return True


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SetTypes:
    """Names statically known to hold sets in one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: set[str] = set()        # module/function locals: "x"
        self.attrs: set[str] = set()        # instance attrs: "self.x" -> "x"
        for node in ast.walk(tree):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if self._is_set_annotation(node.annotation):
                    self._note(target)
            if target is not None and value is not None and self._is_set_expr(value):
                self._note(target)

    def _note(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                self.attrs.add(target.attr)

    @staticmethod
    def _is_set_annotation(node: ast.AST) -> bool:
        base = node.value if isinstance(node, ast.Subscript) else node
        if isinstance(base, ast.Name):
            return base.id in {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}
        return False

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        return False

    def is_set(self, node: ast.AST) -> bool:
        if self._is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return node.value.id == "self" and node.attr in self.attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


class _FloatNames:
    """Module-level names bound to float values (sentinel candidates)."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign) and self._is_float_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)

    @staticmethod
    def _is_float_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "float"
        if isinstance(node, ast.UnaryOp):
            return _FloatNames._is_float_expr(node.operand)
        return False

    def is_float(self, node: ast.AST) -> bool:
        if self._is_float_expr(node):
            return True
        return isinstance(node, ast.Name) and node.id in self.names


_SEED_CALLS = ("random.seed", "numpy.random.seed", "np.random.seed")


def _is_seed_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _dotted(node.func) in _SEED_CALLS


#: Rebinding through these calls yields a deterministically ordered
#: sequence, which kills a set-iteration finding on that path.
_ORDERING_CALLS = {"sorted", "list", "tuple"}


class _Flows:
    """Lazy per-function CFG + reaching-definitions for one module."""

    def __init__(self, parents: dict[ast.AST, ast.AST]) -> None:
        self.parents = parents
        self._cache: dict[ast.AST, tuple] = {}

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def flows(self, fn: ast.AST) -> tuple:
        if fn not in self._cache:
            cfg = build_cfg(fn)
            self._cache[fn] = (cfg, ReachingDefinitions(cfg))
        return self._cache[fn]

    def placed_stmt(self, fn: ast.AST, node: ast.AST) -> Optional[ast.AST]:
        """The CFG-placed statement whose evaluation contains ``node``."""
        cfg, _ = self.flows(fn)
        cur: Optional[ast.AST] = node
        while cur is not None and cur not in cfg.stmt_index:
            cur = self.parents.get(cur)
        return cur


def _check_file(src: SourceFile) -> Iterable[Finding]:
    tree = src.tree
    set_types = _SetTypes(tree)
    float_names = _FloatNames(tree)

    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    flows = _Flows(parents)

    #: Enclosing functions of every seed(...) call (None = module level).
    seed_fns: set[Optional[ast.AST]] = {
        flows.enclosing_function(node)
        for node in ast.walk(tree)
        if _is_seed_call(node)
    }

    def draw_ok(node: ast.AST) -> bool:
        """True when a global-RNG draw at ``node`` is visibly seeded."""
        fn = flows.enclosing_function(node)
        if fn is None:
            return bool(seed_fns)  # module-level draw: any seed counts
        if seed_fns - {fn}:
            return True  # seeded at module level or in another function
        if fn not in seed_fns:
            return False
        # Seeded in this very function: the seed must be able to run
        # before the draw on at least one CFG path.
        cfg, _rd = flows.flows(fn)
        stmt = flows.placed_stmt(fn, node)
        if stmt is None:
            return True  # not a placed statement (decorator/default): punt
        if any(_is_seed_call(n) for n in ast.walk(stmt)):
            return True  # same statement, e.g. seeded helper chain
        return any_path_has(
            cfg, stmt,
            lambda s: any(_is_seed_call(n) for n in ast.walk(s)),
        )

    def is_set_use(expr: ast.AST) -> bool:
        """Flow-sensitive "does this expression hold an unordered set".

        For local names the reaching definitions decide: an ordering
        rebind (``sorted``/``list``/``tuple``) on any path suppresses,
        and only a set-valued binding that actually reaches the use
        convicts. Anything without flow information falls back to the
        module-level type sketch.
        """
        if isinstance(expr, ast.Name):
            fn = flows.enclosing_function(expr)
            if fn is not None:
                _cfg, rd = flows.flows(fn)
                stmt = flows.placed_stmt(fn, expr)
                if stmt is not None:
                    defs = rd.reaching(stmt, expr.id)
                    if defs:
                        has_set = False
                        for d in defs:
                            value = d.value
                            if (
                                isinstance(value, ast.Call)
                                and isinstance(value.func, ast.Name)
                                and value.func.id in _ORDERING_CALLS
                            ):
                                return False
                            if value is not None and set_types.is_set(value):
                                has_set = True
                        return has_set
        return set_types.is_set(expr)

    #: Consumers whose result does not depend on iteration order:
    #: sorting, counting, exact min/max, rebuilding a set.
    _ORDER_SAFE_CALLS = {"sorted", "len", "min", "max", "set", "frozenset",
                         "any", "all"}

    def order_safe_context(node: ast.AST) -> bool:
        parent = parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_SAFE_CALLS
        )

    for node in ast.walk(tree):
        # -- set iteration ----------------------------------------------
        if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_use(node.iter):
            yield make_finding(
                "set-iteration",
                "iteration over an unordered set; wrap in sorted(...) or use a dict",
                src, node.iter.lineno, PASS_NAME,
            )
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.DictComp)):
            # A set comprehension over a set rebuilds a set: order-free.
            # Generators feeding sorted()/len()/min()/... are too.
            if any(is_set_use(gen.iter) for gen in node.generators):
                if not order_safe_context(node):
                    yield make_finding(
                        "set-iteration",
                        "comprehension over an unordered set; wrap in sorted(...)",
                        src, node.lineno, PASS_NAME,
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple", "enumerate", "iter", "next"}
            and node.args
            and is_set_use(node.args[0])
        ):
            yield make_finding(
                "set-iteration",
                f"{node.func.id}() over an unordered set materializes hash order",
                src, node.lineno, PASS_NAME,
            )

        # -- id()-keyed lookups -----------------------------------------
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "id" and len(node.args) == 1:
                yield make_finding(
                    "id-keyed-dict",
                    "id() values are reused after GC and differ across "
                    "processes; key on stable identity instead",
                    src, node.lineno, PASS_NAME,
                )

        # -- RNG and wall clocks ----------------------------------------
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted:
                parts = dotted.split(".")
                if (
                    parts[0] in {"random"}
                    and len(parts) == 2
                    and parts[1] not in _RANDOM_SAFE
                    and not draw_ok(node)
                ):
                    yield make_finding(
                        "unseeded-random",
                        f"{dotted}() draws from the unseeded global RNG; "
                        "use a seeded random.Random(config.seed)",
                        src, node.lineno, PASS_NAME,
                    )
                elif (
                    len(parts) >= 3
                    and parts[0] in {"numpy", "np"}
                    and parts[1] == "random"
                    and parts[2] not in _RANDOM_SAFE
                    and not draw_ok(node)
                ):
                    yield make_finding(
                        "unseeded-random",
                        f"{dotted}() draws from the unseeded numpy RNG; "
                        "use numpy.random.default_rng(config.seed)",
                        src, node.lineno, PASS_NAME,
                    )
                else:
                    base, attr = parts[0], parts[-1]
                    clocky = (
                        (base == "time" and len(parts) == 2
                         and attr in _WALL_CLOCK_ATTRS["time"])
                        or (parts[-2:-1] == ["datetime"]
                            and attr in _WALL_CLOCK_ATTRS["datetime"])
                        or (base == "datetime" and len(parts) == 2
                            and attr in _WALL_CLOCK_ATTRS["datetime"])
                        or (base == "date" and len(parts) == 2
                            and attr in _WALL_CLOCK_ATTRS["date"])
                    )
                    if clocky:
                        yield make_finding(
                            "wall-clock",
                            f"{dotted}() reads the wall clock; simulation "
                            "state must depend only on the config seed",
                            src, node.lineno, PASS_NAME,
                        )

        # -- float identity comparisons ---------------------------------
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Is, ast.IsNot)):
                    if float_names.is_float(left) or float_names.is_float(right):
                        yield make_finding(
                            "float-identity",
                            "'is' comparison against a float; identity of "
                            "floats is an interning accident — use == "
                            "(the best-is-_NO_EVENT bug)",
                            src, node.lineno, PASS_NAME,
                        )


RULES = (
    Rule("set-iteration", Severity.ERROR,
         "iteration over an unordered set in simulation code"),
    Rule("id-keyed-dict", Severity.ERROR,
         "id()-derived keys are unstable across GC and processes"),
    Rule("unseeded-random", Severity.ERROR,
         "global RNG draw without a seed"),
    Rule("wall-clock", Severity.ERROR,
         "wall-clock read inside the simulation core"),
    Rule("float-identity", Severity.ERROR,
         "'is' comparison on float/sentinel expressions"),
)


@lint_pass(
    PASS_NAME,
    RULES,
    "flags constructs that break bit-identical determinism",
)
def run(project: Project) -> Iterable[Finding]:
    for src in project.files:
        if _in_scope(src):
            yield from _check_file(src)
