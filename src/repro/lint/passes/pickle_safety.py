"""Pickle / cache safety for the parallel experiment runner.

The runner ships :class:`~repro.runner.spec.JobSpec`\\ s to
``ProcessPoolExecutor`` workers and content-hashes them into
persistent cache keys. Both operations require that everything
reachable from a spec — architecture runners registered into
``ARCHITECTURES`` and the extension factories they build — is
reconstructible *by name* at module level. Closures, lambdas and
locally-defined classes break this in two escalating ways: pickling
fails loudly in the pool, and (worse) content hashes of closure
objects are not stable across processes, which would poison the
persistent cache silently.

Rules:

* ``factory-closure`` — a ``*_factory`` function (the repo's
  ``ExtensionFactory`` convention) returns a function defined inside
  itself. Use a frozen dataclass with ``__call__`` (see
  ``LinebackerFactory``).
* ``factory-lambda`` — a lambda returned from a factory or passed as
  an ``extension_factory=`` / ``runner=`` argument.
* ``factory-local-class`` — a factory returns an instance of a class
  defined inside the factory body.
* ``registry-local-runner`` — an ``ARCHITECTURES`` registration
  (``@register(...)`` or ``ARCHITECTURES[...] =``) executed inside a
  function: the runner would not exist in a fresh worker process.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "pickle-safety"

FACTORY_SUFFIX = "_factory"
FACTORY_KWARGS = {"extension_factory", "runner", "cta_source"}


def _local_defs(fn: ast.FunctionDef) -> tuple[set[str], set[str]]:
    """Names of functions and classes defined inside ``fn``'s body."""
    funcs: set[str] = set()
    classes: set[str] = set()
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs.add(node.name)
        elif isinstance(node, ast.ClassDef):
            classes.add(node.name)
    return funcs, classes


def _check_factory(src: SourceFile, fn: ast.FunctionDef) -> Iterable[Finding]:
    local_funcs, local_classes = _local_defs(fn)
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Lambda):
            yield make_finding(
                "factory-lambda",
                f"{fn.name} returns a lambda; lambdas cannot be pickled "
                "into worker processes or content-hashed stably",
                src, value.lineno, PASS_NAME,
            )
        elif isinstance(value, ast.Name) and value.id in local_funcs:
            yield make_finding(
                "factory-closure",
                f"{fn.name} returns the locally-defined function "
                f"{value.id!r}; a closure cannot cross the process "
                "boundary — use a frozen dataclass with __call__",
                src, value.lineno, PASS_NAME,
            )
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in local_classes
        ):
            yield make_finding(
                "factory-local-class",
                f"{fn.name} returns an instance of the locally-defined "
                f"class {value.func.id!r}; define it at module level so "
                "workers can reconstruct it",
                src, value.lineno, PASS_NAME,
            )


def _check_file(src: SourceFile) -> Iterable[Finding]:
    # Factories by naming convention, anywhere in the file.
    for node in ast.walk(src.tree):
        if isinstance(node, ast.FunctionDef) and node.name.endswith(FACTORY_SUFFIX):
            yield from _check_factory(src, node)

    # Lambdas handed to factory-consuming keywords.
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg in FACTORY_KWARGS and isinstance(kw.value, ast.Lambda):
                    yield make_finding(
                        "factory-lambda",
                        f"lambda passed as {kw.arg}=; it cannot be "
                        "pickled for the process pool",
                        src, kw.value.lineno, PASS_NAME,
                    )

    # Registry mutations inside function bodies.
    for fn in ast.walk(src.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(fn):
            is_decorator_register = (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn
                and any(
                    isinstance(d, ast.Call)
                    and isinstance(d.func, ast.Name)
                    and d.func.id == "register"
                    for d in node.decorator_list
                )
            )
            is_subscript_register = (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "ARCHITECTURES"
                    for t in node.targets
                )
            )
            if is_decorator_register or is_subscript_register:
                yield make_finding(
                    "registry-local-runner",
                    f"architecture registered inside {fn.name}(); a fresh "
                    "worker process imports modules, not call stacks — "
                    "register at module level",
                    src, node.lineno, PASS_NAME,
                )


RULES = (
    Rule("factory-closure", Severity.ERROR,
         "extension factory returns a closure"),
    Rule("factory-lambda", Severity.ERROR,
         "lambda used where a picklable factory is required"),
    Rule("factory-local-class", Severity.ERROR,
         "factory returns an instance of a locally-defined class"),
    Rule("registry-local-runner", Severity.ERROR,
         "ARCHITECTURES registration inside a function body"),
)


@lint_pass(
    PASS_NAME,
    RULES,
    "keeps everything reachable from a JobSpec picklable and hashable",
)
def run(project: Project) -> Iterable[Finding]:
    for src in project.files:
        yield from _check_file(src)
