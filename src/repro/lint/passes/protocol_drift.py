"""Protocol-drift analysis: encode/decode twins and version discipline.

PR 6 gave the reproduction three independently versioned compatibility
surfaces: the HTTP job document (``JOB_SCHEMA_VERSION``), the wire
protocol (``PROTOCOL_VERSION``) and the result-cache payload shape
(``CACHE_SCHEMA_VERSION``). Each one is a *closed world*: an encoder
emits an exact field set, a decoder validates against an exact accepted
set, and a version constant is the contract peers negotiate with. The
failure mode is silent skew — someone adds ``"retries"`` to the encoder
dict and forgets the decoder's accepted set, or reshapes a document
without bumping the version, so old peers mis-parse instead of refusing.

This pass statically re-derives every field set and enforces two rules:

* ``schema-twin-drift`` — a field appears on one side of an
  encode/decode pair but not its twin. Field sets are extracted from
  the idioms the code actually uses: all-string dict literals and
  ``doc["field"] = ...`` stores on the encode side; closed-world
  ``set(doc) - {"a", "b"}`` accepted sets, ``.get("field")`` reads and
  ``doc["field"]`` loads on the decode side; dataclass ``field: type``
  annotations for :class:`RunOptions` and :class:`JobSpec`. The
  :class:`JobSpec` surface additionally checks *transport*: every spec
  field must be carried by the HTTP job document (``params`` rides in
  ``options``/``overrides``).
* ``schema-version-unbumped`` — a surface's field set no longer matches
  the fingerprint recorded in ``lint_baseline.json`` while its version
  constant is unchanged. Bumping the constant (and re-recording with
  ``--write-baseline``) is the only way to acknowledge a schema change;
  the CI guard enforces the pairing on the commit level.

Anchors are located *by name inside the project* (``encode_hello``,
``decode_jobspec``, class ``JobSpec`` …), so the same pass runs
unchanged against the real tree and against fixture twins.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "protocol-drift"

RULES = (
    Rule(
        "schema-twin-drift", Severity.ERROR,
        "field present on one side of an encode/decode pair but missing "
        "from its twin",
    ),
    Rule(
        "schema-version-unbumped", Severity.ERROR,
        "schema-affecting field set changed without bumping the matching "
        "version constant",
    ),
)


@dataclass(frozen=True)
class _Surface:
    """One versioned compatibility surface and its anchor names."""

    name: str
    encoder: Optional[str]      # function emitting the document
    decoder: Optional[str]      # function validating/reading it
    dataclass: Optional[str]    # class whose annotated fields ARE the schema
    constant: str               # version constant acknowledging changes


SURFACES = (
    _Surface("wire-hello", "encode_hello", "decode_hello", None,
             "PROTOCOL_VERSION"),
    _Surface("http-job", "encode_jobspec", "decode_jobspec", None,
             "JOB_SCHEMA_VERSION"),
    _Surface("config", "encode_config", "decode_config", None,
             "JOB_SCHEMA_VERSION"),
    _Surface("run-options", None, None, "RunOptions", "JOB_SCHEMA_VERSION"),
    _Surface("jobspec", None, None, "JobSpec", "CACHE_SCHEMA_VERSION"),
    _Surface("workload-spec", "encode_workload", "decode_workload", None,
             "WORKLOAD_SPEC_VERSION"),
)


# -- field-set extraction ---------------------------------------------------
def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _record(fields: dict[str, int], name: str, line: int) -> None:
    fields.setdefault(name, line)


def encoded_fields(fn: ast.FunctionDef) -> dict[str, int]:
    """Fields the encoder emits: all-string dict-literal keys plus
    ``doc["field"] = ...`` constant subscript stores."""
    out: dict[str, int] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict) and node.keys:
            names = [_const_str(k) for k in node.keys if k is not None]
            if names and all(n is not None for n in names):
                for key in node.keys:
                    name = _const_str(key)
                    if name is not None:
                        _record(out, name, key.lineno)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Store)
            and (name := _const_str(node.slice)) is not None
        ):
            _record(out, name, node.lineno)
    return out


def decoded_fields(fn: ast.FunctionDef) -> dict[str, int]:
    """Fields the decoder knows: the closed-world accepted set
    (``set(doc) - {"a", "b"}``), ``.get("field")`` reads and
    ``doc["field"]`` constant loads."""
    out: dict[str, int] = {}
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Sub)
            and isinstance(node.right, ast.Set)
            and isinstance(node.left, ast.Call)
            and isinstance(node.left.func, ast.Name)
            and node.left.func.id == "set"
        ):
            for elt in node.right.elts:
                name = _const_str(elt)
                if name is not None:
                    _record(out, name, elt.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and (name := _const_str(node.args[0])) is not None
        ):
            _record(out, name, node.lineno)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and (name := _const_str(node.slice)) is not None
        ):
            _record(out, name, node.lineno)
    return out


def dataclass_fields(node: ast.ClassDef) -> dict[str, int]:
    """Annotated instance fields of a (frozen) dataclass schema."""
    out: dict[str, int] = {}
    for stmt in node.body:
        if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        _record(out, name, stmt.lineno)
    return out


def _find_constant(
    project: Project, name: str
) -> Optional[tuple[SourceFile, int, object]]:
    """Module-level ``NAME = <literal>`` assignment, by constant name."""
    for src in project.files:
        for stmt in src.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
                and isinstance(stmt.value, ast.Constant)
            ):
                return src, stmt.lineno, stmt.value.value
    return None


@dataclass
class _Derived:
    """One surface as found in the project."""

    surface: _Surface
    fields: dict[str, int]              # union field set, name -> line
    src: SourceFile                     # file anchoring the surface
    encode: Optional[dict[str, int]] = None
    decode: Optional[dict[str, int]] = None
    encode_src: Optional[SourceFile] = None
    decode_src: Optional[SourceFile] = None


def _derive(project: Project) -> dict[str, _Derived]:
    """Re-derive every surface whose anchors exist in the project."""
    out: dict[str, _Derived] = {}
    for surface in SURFACES:
        if surface.dataclass is not None:
            entry = project.find_class(surface.dataclass)
            if entry is None:
                continue
            src, node = entry
            out[surface.name] = _Derived(
                surface=surface, fields=dataclass_fields(node), src=src
            )
            continue
        enc = project.find_function(surface.encoder) if surface.encoder else None
        dec = project.find_function(surface.decoder) if surface.decoder else None
        if enc is None and dec is None:
            continue
        encode = encoded_fields(enc[1]) if enc else None
        decode = decoded_fields(dec[1]) if dec else None
        fields: dict[str, int] = {}
        for side in (encode, decode):
            for name, line in (side or {}).items():
                _record(fields, name, line)
        out[surface.name] = _Derived(
            surface=surface,
            fields=fields,
            src=(enc or dec)[0],
            encode=encode,
            decode=decode,
            encode_src=enc[0] if enc else None,
            decode_src=dec[0] if dec else None,
        )
    return out


def derive_schemas(project: Project) -> dict[str, dict]:
    """The fingerprint document ``--write-baseline`` records: per
    surface, the sorted field set and the current version-constant
    value (the pair a future run compares against)."""
    schemas: dict[str, dict] = {}
    for name, derived in sorted(_derive(project).items()):
        found = _find_constant(project, derived.surface.constant)
        schemas[name] = {
            "fields": sorted(derived.fields),
            "constant": derived.surface.constant,
            "version": found[2] if found else None,
        }
    return schemas


# -- the pass ---------------------------------------------------------------
def _twin_findings(derived: _Derived) -> Iterable[Finding]:
    if derived.encode is None or derived.decode is None:
        return
    surface = derived.surface
    for name in sorted(set(derived.encode) - set(derived.decode)):
        yield make_finding(
            "schema-twin-drift",
            f"{surface.name}: field {name!r} is emitted by "
            f"{surface.encoder}() but {surface.decoder}() never accepts "
            "or reads it — a document round-trip silently drops it",
            derived.encode_src, derived.encode[name], PASS_NAME,
        )
    for name in sorted(set(derived.decode) - set(derived.encode)):
        yield make_finding(
            "schema-twin-drift",
            f"{surface.name}: field {name!r} is accepted by "
            f"{surface.decoder}() but {surface.encoder}() never emits it — "
            "dead schema surface or a forgotten encoder field",
            derived.decode_src, derived.decode[name], PASS_NAME,
        )


def _transport_findings(
    derived: dict[str, _Derived]
) -> Iterable[Finding]:
    """Every :class:`JobSpec` field must ride in the HTTP job document."""
    spec = derived.get("jobspec")
    http = derived.get("http-job")
    if spec is None or http is None:
        return
    carried = set(http.fields)
    for name, line in sorted(spec.fields.items()):
        if name in carried:
            continue
        if name == "params" and ("options" in carried or "overrides" in carried):
            continue  # params are split into options/overrides on the wire
        yield make_finding(
            "schema-twin-drift",
            f"jobspec: field {name!r} of JobSpec is never transported by "
            "the HTTP job schema — jobs submitted over HTTP silently lose "
            "it (add it to encode_jobspec/decode_jobspec or drop it)",
            spec.src, line, PASS_NAME,
        )


def _version_findings(
    project: Project, derived: dict[str, _Derived]
) -> Iterable[Finding]:
    baseline = getattr(project, "schema_baseline", None) or {}
    for name, entry in sorted(derived.items()):
        recorded = baseline.get(name)
        if not recorded:
            continue  # no fingerprint yet: --write-baseline records one
        old_fields = set(recorded.get("fields", ()))
        new_fields = set(entry.fields)
        if new_fields == old_fields:
            continue
        found = _find_constant(project, entry.surface.constant)
        if found is None:
            continue  # constant not in project scope (partial lint run)
        src, line, value = found
        if value != recorded.get("version"):
            continue  # version bumped: the change is acknowledged
        added = sorted(new_fields - old_fields)
        removed = sorted(old_fields - new_fields)
        delta = "; ".join(
            part for part in (
                f"added {added}" if added else "",
                f"removed {removed}" if removed else "",
            ) if part
        )
        yield make_finding(
            "schema-version-unbumped",
            f"{name} schema changed ({delta}) but {entry.surface.constant} "
            f"is still {value!r}; bump the constant and re-record with "
            "--write-baseline so peers refuse instead of mis-parse",
            src, line, PASS_NAME,
        )


@lint_pass(
    PASS_NAME,
    RULES,
    "encode/decode twin coherence and schema-version discipline",
)
def run(project: Project) -> Iterable[Finding]:
    derived = _derive(project)
    for entry in derived.values():
        yield from _twin_findings(entry)
    yield from _transport_findings(derived)
    yield from _version_findings(project, derived)
