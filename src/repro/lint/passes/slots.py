"""Hot-path ``__slots__`` audit.

PR 2's speedup leans on ``__slots__`` for every object the cycle
engine touches per instruction. Two things go wrong silently:

* ``slots-attr-missing`` — a method assigns ``self.x`` for an ``x``
  that is not in ``__slots__``. On a pure-slots class this raises
  ``AttributeError`` at runtime, but only on the first execution of
  that line — which for rarely-taken paths (error handling, ablation
  variants) means it ships. The check is cross-method: *any* method of
  the class may introduce the attribute.
* ``hot-class-no-slots`` — a class on the engine's hot list (warps,
  cache lines, schedulers, per-SM stats) was refactored and dropped
  its ``__slots__`` (or ``@dataclass(slots=True)``), quietly
  reinstating a per-instance ``__dict__`` and the ~2x allocation cost
  the overhaul removed.

Classes whose resolved base chain leaves the project (or hits a
non-slots base) have a ``__dict__`` anyway, so attribute checking is
skipped for them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "slots"

#: Classes the cycle engine allocates or scans per instruction/event.
HOT_CLASSES = {
    "Warp",
    "CacheLine",
    "CacheStats",
    "SMStats",
    "LoadBehavior",
    "GTOScheduler",
    "SetAssociativeCache",
}


def _dataclass_slots(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = deco.func.attr if isinstance(deco.func, ast.Attribute) else (
                deco.func.id if isinstance(deco.func, ast.Name) else None
            )
            if name == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _declared_slots(node: ast.ClassDef) -> Optional[set[str]]:
    """The class's own slot names, or None when it has no slots."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if "__slots__" in targets:
                value = stmt.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    return {
                        e.value
                        for e in value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    }
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return {value.value}
                return set()  # dynamic __slots__; treat as empty
    if _dataclass_slots(node):
        return {
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        }
    return None


def _resolved_slots(
    node: ast.ClassDef, project: Project, _seen: Optional[set[str]] = None
) -> Optional[set[str]]:
    """Slots of ``node`` plus every base, or None when the chain is
    open (a base without slots, or one defined outside the project)."""
    seen = _seen or set()
    if node.name in seen:
        return None
    seen.add(node.name)
    own = _declared_slots(node)
    if own is None:
        return None
    total = set(own)
    for base in node.bases:
        if isinstance(base, ast.Name):
            if base.id == "object":
                continue
            entry = project.find_class(base.id)
            if entry is None:
                return None
            inherited = _resolved_slots(entry[1], project, seen)
            if inherited is None:
                return None
            total |= inherited
        else:
            return None  # attribute base (module.Class): outside project
    return total


def _self_assignments(node: ast.ClassDef) -> Iterable[tuple[str, int]]:
    """(attribute, line) for every ``self.X = ...`` in the class body."""
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = stmt.args.posonlyargs + stmt.args.args
        if not args:
            continue
        self_name = args[0].arg
        for sub in ast.walk(stmt):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                nodes = (
                    list(target.elts)
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for t in nodes:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == self_name
                    ):
                        yield t.attr, t.lineno


def _check_class(
    src: SourceFile, node: ast.ClassDef, project: Project
) -> Iterable[Finding]:
    own = _declared_slots(node)
    if own is None:
        if node.name in HOT_CLASSES:
            yield make_finding(
                "hot-class-no-slots",
                f"hot-path class {node.name} has no __slots__ (nor "
                "@dataclass(slots=True)); the engine allocates it per "
                "instruction/event",
                src, node.lineno, PASS_NAME,
            )
        return
    resolved = _resolved_slots(node, project)
    if resolved is None:
        # A base outside the project (or without slots) provides
        # __dict__; stray attributes are legal there.
        return
    reported: set[str] = set()
    for attr, line in _self_assignments(node):
        if attr not in resolved and attr not in reported:
            reported.add(attr)
            yield make_finding(
                "slots-attr-missing",
                f"{node.name}.{attr} assigned but {attr!r} is not in "
                "__slots__; this raises AttributeError the first time "
                "the line runs",
                src, line, PASS_NAME,
            )


RULES = (
    Rule("slots-attr-missing", Severity.ERROR,
         "attribute assigned outside the class's __slots__"),
    Rule("hot-class-no-slots", Severity.ERROR,
         "hot-path class dropped its __slots__ declaration"),
)


@lint_pass(
    PASS_NAME,
    RULES,
    "audits __slots__ coverage on hot-path classes",
)
def run(project: Project) -> Iterable[Finding]:
    for src, node in project.iter_all_classes():
        yield from _check_class(src, node, project)
