"""Stats / snapshot schema parity.

The golden-equivalence gate (``tests/golden_stats.json``) is only as
strong as the fingerprint it pins. A counter added to
:class:`repro.gpu.stats.SMStats` but never folded into
``tests/golden.py``'s ``result_fingerprint`` escapes the gate
entirely: an engine change could corrupt it and every test would stay
green. This pass closes the loop statically:

* ``stats-parity`` — every counter field declared on ``SMStats`` must
  be *read* inside ``result_fingerprint`` (as ``s.<counter>``,
  ``result.<counter>`` or any attribute access of that name).

Derived ``@property`` accessors on ``SMStats`` are not counters and
are exempt. When the project contains no ``SMStats`` class or no
``result_fingerprint`` function (e.g. linting a file subset), the
pass has nothing to check and stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project

PASS_NAME = "stats-parity"

STATS_CLASS = "SMStats"
FINGERPRINT_FN = "result_fingerprint"


def _counter_fields(node: ast.ClassDef) -> dict[str, int]:
    """Dataclass counter fields -> line (annotated, non-property)."""
    fields: dict[str, int] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not stmt.target.id.startswith("_"):
                fields[stmt.target.id] = stmt.lineno
    return fields


def _attribute_reads(fn: ast.FunctionDef) -> set[str]:
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)
    }


RULES = (
    Rule("stats-parity", Severity.ERROR,
         "SMStats counter missing from the golden fingerprint schema"),
)


@lint_pass(
    PASS_NAME,
    RULES,
    "every SMStats counter must be pinned by the golden fingerprint",
)
def run(project: Project) -> Iterable[Finding]:
    stats_entry = project.find_class(STATS_CLASS)
    fp_entry = project.find_function(FINGERPRINT_FN)
    if stats_entry is None or fp_entry is None:
        return
    stats_src, stats_node = stats_entry
    _fp_src, fp_node = fp_entry
    reads = _attribute_reads(fp_node)
    for field, line in sorted(_counter_fields(stats_node).items()):
        if field not in reads:
            yield make_finding(
                "stats-parity",
                f"{STATS_CLASS}.{field} is a counter but "
                f"{FINGERPRINT_FN} never reads it: the golden "
                "equivalence gate cannot see regressions in it",
                stats_src, line, PASS_NAME,
            )
