"""Metric registry / golden fingerprint parity.

The golden-equivalence gate (``tests/golden_stats.json``) is only as
strong as the fingerprint it pins. Since the metrics core landed,
counter sets are declared as ``MetricSet(...)`` registrations
(:mod:`repro.metrics.registry`) and each :class:`Metric` says whether
it participates in the fingerprint (``fingerprint=True``). A metric
*declared* fingerprint-bearing but never folded into
``tests/golden.py``'s ``result_fingerprint`` escapes the gate
entirely: an engine change could corrupt it and every test would stay
green. This pass closes the loop statically:

* ``stats-parity`` — every ``Metric(..., fingerprint=True)`` declared
  in any ``MetricSet(...)`` call must be *read* inside
  ``result_fingerprint`` (as ``s.<name>``, ``result.<name>`` or any
  attribute access of that name).

The declarations are recovered from the AST (the linter never imports
code), so the pass re-derives its coverage list from the registry
source itself — adding a fingerprint metric without extending the
fingerprint is a lint error, not a silent gap. When the project
contains no ``MetricSet`` declarations or no ``result_fingerprint``
function (e.g. linting a file subset), the pass has nothing to check
and stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "stats-parity"

METRIC_SET_CALL = "MetricSet"
METRIC_CALL = "Metric"
FINGERPRINT_FN = "result_fingerprint"


def _call_name(node: ast.Call) -> str:
    """The bare callee name of ``Foo(...)`` or ``mod.Foo(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _metric_declarations(
    src: SourceFile,
) -> Iterator[tuple[str, bool, int]]:
    """Yield ``(name, fingerprint, line)`` per Metric in MetricSet calls.

    Only statically-resolvable declarations are considered: the metric
    name must be a string constant (first positional or ``name=``) and
    the ``fingerprint`` keyword, when present, a boolean constant.
    Dynamic constructions are invisible to the registry source idiom
    and skipped rather than guessed at.
    """
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call) or _call_name(node) != METRIC_SET_CALL:
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call) or _call_name(inner) != METRIC_CALL:
                continue
            name = None
            if inner.args and isinstance(inner.args[0], ast.Constant):
                if isinstance(inner.args[0].value, str):
                    name = inner.args[0].value
            fingerprint = False
            for kw in inner.keywords:
                if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                    if isinstance(kw.value.value, str):
                        name = kw.value.value
                elif kw.arg == "fingerprint" and isinstance(kw.value, ast.Constant):
                    fingerprint = bool(kw.value.value)
            if name is not None:
                yield name, fingerprint, inner.lineno


def _attribute_reads(fn: ast.FunctionDef) -> set[str]:
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)
    }


RULES = (
    Rule("stats-parity", Severity.ERROR,
         "fingerprint-declared metric missing from the golden fingerprint"),
)


@lint_pass(
    PASS_NAME,
    RULES,
    "every Metric declared fingerprint=True must be pinned by the "
    "golden fingerprint",
)
def run(project: Project) -> Iterable[Finding]:
    declarations: list[tuple[SourceFile, str, int]] = []
    seen: set[str] = set()
    for src in project.files:
        for name, fingerprint, line in _metric_declarations(src):
            if fingerprint and name not in seen:
                seen.add(name)
                declarations.append((src, name, line))
    fp_entry = project.find_function(FINGERPRINT_FN)
    if not declarations or fp_entry is None:
        return
    _fp_src, fp_node = fp_entry
    reads = _attribute_reads(fp_node)
    for src, name, line in sorted(
        declarations, key=lambda d: (d[0].relpath, d[2], d[1])
    ):
        if name not in reads:
            yield make_finding(
                "stats-parity",
                f"Metric {name!r} is declared fingerprint=True but "
                f"{FINGERPRINT_FN} never reads it: the golden "
                "equivalence gate cannot see regressions in it",
                src, line, PASS_NAME,
            )
