"""Lock-discipline race detector for the service stack.

PR 6 made the reproduction a long-lived multithreaded service: HTTP
handler threads, a dedicated fleet-dispatcher thread, per-worker pipe
reader threads and degrade-tier fallback threads all share the
coordinator's job table and the fleet's book-keeping. The only
synchronization primitive is ``self._lock`` — so the whole correctness
story is *lock discipline*, which no unit test can watch continuously.
This pass proves it statically, per lock-owning class:

1. **Guarded-attribute inference** — any class that creates a
   ``threading.Lock``/``RLock``/``Condition`` on ``self`` is analyzed.
   An attribute mutated while the lock is provably held (lexically
   inside ``with self._lock:``, via a must-held ``acquire()`` region,
   or inside a private method *all* of whose intra-class call sites
   hold the lock) joins the guarded set.
2. **Thread roots** — the entry points concurrency flows in from:
   public methods (HTTP handlers and API callers), ``do_GET``-style
   handler methods, and any method escaped as a callback
   (``threading.Thread(target=self._loop)``, ``on_outcome=self._cb``).
   The intra-class call graph then tells which roots reach each method.
3. **Findings** —

   * ``unguarded-attribute``: a guarded attribute is read or mutated
     without the lock in a method reachable from a thread root, while
     the attribute is shared across ≥ 2 roots;
   * ``unsynchronized-attribute``: an attribute written after
     ``__init__`` and accessed from ≥ 2 distinct thread roots with *no*
     lock anywhere — the PR 6-era stats/``last_error`` pattern;
   * ``lock-order``: two locks acquired in opposite nesting orders
     anywhere in the class (ABBA deadlock), or a non-reentrant lock
     re-acquired while already held;
   * ``lock-held-blocking``: pipe I/O, ``subprocess`` spawning,
     ``time.sleep`` or thread/process joins executed while holding the
     lock — every HTTP request then stalls behind worker latency.

Intentionally thread-safe containers created in ``__init__``
(``queue.Queue``, ``threading.Event`` …) are exempt, as are attributes
only ever touched from a single root (thread confinement) or never
written after construction (immutable configuration).

Suppressions for this pass **require a justification**:
``# repro-lint: ignore[unguarded-attribute] <why it is safe>`` — a bare
ignore is itself kept as a finding. ``ignore[thread-safety]`` (the pass
name) suppresses any of its rules on that line, with the same
justification requirement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.cfg import CFG, build_cfg, dotted_name, stmt_owned_exprs
from repro.lint.dataflow import HeldLocks
from repro.lint.finding import Finding, Severity
from repro.lint.registry import Rule, lint_pass, make_finding
from repro.lint.source import Project, SourceFile

PASS_NAME = "thread-safety"

#: Constructors that make a lock-ish attribute (the class is analyzed).
_LOCK_CTORS = {"Lock", "RLock"}
_CONDITION_CTORS = {"Condition"}
#: Constructors whose product is intrinsically thread-safe: attributes
#: holding one are exempt from the attribute rules.
_THREADSAFE_CTORS = {
    "Queue", "LifoQueue", "PriorityQueue", "SimpleQueue",
    "Event", "Semaphore", "BoundedSemaphore", "Barrier", "local",
}

#: ``self.X.<method>(...)`` calls that mutate the container behind X.
_MUTATOR_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "add", "update", "setdefault", "sort", "reverse", "rotate",
}

#: ``http.server`` dispatches ``do_<VERB>`` per request thread.
_HTTP_HANDLER_PREFIX = "do_"

_BLOCKING_SUBPROCESS = {"Popen", "run", "call", "check_call", "check_output"}
_PIPE_SEGMENTS = {"stdin", "stdout", "stderr"}
_PIPE_METHODS = {"read", "readline", "readlines", "write", "flush"}
_JOINISH = {"wait", "join"}


def _is_blocking_call(node: ast.Call) -> Optional[str]:
    """A short description when ``node`` is a known blocking call."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if dotted == "time.sleep":
        return "time.sleep()"
    if len(parts) >= 2 and parts[-2] == "subprocess" and parts[-1] in _BLOCKING_SUBPROCESS:
        return f"subprocess.{parts[-1]}()"
    if parts[0] == "subprocess" and parts[-1] in _BLOCKING_SUBPROCESS:
        return f"subprocess.{parts[-1]}()"
    if parts[-1] in _PIPE_METHODS and any(p in _PIPE_SEGMENTS for p in parts[:-1]):
        return f"pipe {parts[-1]}() on {'.'.join(parts[:-1])}"
    if parts[-1] in _JOINISH and any(
        "proc" in p or "thread" in p for p in parts[:-1]
    ):
        return f"{dotted}()"
    return None


@dataclass
class _Access:
    """One touch of ``self.<attr>`` inside a method body."""

    attr: str
    method: str
    line: int
    is_write: bool
    held: frozenset[str]   # normalized lock names held at the access


@dataclass
class _MethodInfo:
    name: str
    node: ast.FunctionDef
    cfg: CFG
    locks: HeldLocks
    #: child AST node -> parent, for write classification and
    #: escaped-callback detection.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: locks held at every call site of this method (propagated).
    inherited: frozenset[str] = frozenset()
    calls: list[tuple[str, ast.stmt]] = field(default_factory=list)


class _ClassAnalysis:
    """Everything the rules need about one lock-owning class."""

    def __init__(self, src: SourceFile, node: ast.ClassDef) -> None:
        self.src = src
        self.node = node
        self.lock_attrs: set[str] = set()
        #: condition attr -> underlying lock attr (Condition(self._lock)).
        self.aliases: dict[str, str] = {}
        self.exempt_attrs: set[str] = set()
        self.methods: dict[str, _MethodInfo] = {}
        self._roots: Optional[set[str]] = None
        self._scan_init()
        if not self.lock_attrs:
            return
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(
                    isinstance(d, ast.Name) and d.id in ("staticmethod", "classmethod")
                    for d in item.decorator_list
                ):
                    continue
                cfg = build_cfg(item)
                parents: dict[ast.AST, ast.AST] = {}
                for parent in ast.walk(item):
                    for child in ast.iter_child_nodes(parent):
                        parents[child] = parent
                self.methods[item.name] = _MethodInfo(
                    name=item.name, node=item, cfg=cfg,
                    locks=HeldLocks(cfg), parents=parents,
                )
        self._collect_calls()
        self._propagate_call_site_locks()

    # -- construction-time attribute classification -----------------------
    def _scan_init(self) -> None:
        for item in self.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(item):
                if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                    continue
                target = stmt.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                ctor = dotted_name(value.func) or ""
                tail = ctor.split(".")[-1]
                if tail in _LOCK_CTORS:
                    self.lock_attrs.add(target.attr)
                elif tail in _CONDITION_CTORS:
                    if value.args:
                        inner = dotted_name(value.args[0])
                        if inner and inner.startswith("self."):
                            self.aliases[target.attr] = inner.split(".", 1)[1]
                    self.lock_attrs.add(target.attr)
                    self.exempt_attrs.add(target.attr)
                elif tail in _THREADSAFE_CTORS:
                    self.exempt_attrs.add(target.attr)
        self.exempt_attrs.update(self.lock_attrs)

    def _normalize(self, held: Iterable[str]) -> frozenset[str]:
        """Map held context expressions to canonical ``self.<lock>``."""
        out = set()
        for name in held:
            if not name.startswith("self."):
                continue
            attr = name.split(".", 1)[1]
            attr = self.aliases.get(attr, attr)
            if attr in self.lock_attrs:
                out.add(f"self.{attr}")
        return frozenset(out)

    # -- call graph and lock propagation ----------------------------------
    def _collect_calls(self) -> None:
        for info in self.methods.values():
            for _block, _idx, stmt in info.cfg.statements():
                for expr in stmt_owned_exprs(stmt):
                    for node in ast.walk(expr):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id == "self"
                            and node.func.attr in self.methods
                        ):
                            info.calls.append((node.func.attr, stmt))

    def held_at(self, info: _MethodInfo, stmt: ast.stmt) -> frozenset[str]:
        return self._normalize(info.locks.held_at(stmt)) | info.inherited

    def _propagate_call_site_locks(self) -> None:
        """A private method whose *every* intra-class call site holds a
        lock inherits it (the ``_spawn`` "caller holds the lock" idiom)."""
        roots = self.thread_roots()
        for _ in range(len(self.methods) + 1):
            changed = False
            sites: dict[str, list[frozenset[str]]] = {}
            for info in self.methods.values():
                for callee, stmt in info.calls:
                    sites.setdefault(callee, []).append(self.held_at(info, stmt))
            for name, info in self.methods.items():
                if name in roots or not name.startswith("_") or name.startswith("__"):
                    continue
                call_holds = sites.get(name)
                if not call_holds:
                    continue
                inherited = frozenset.intersection(*call_holds)
                if inherited != info.inherited:
                    info.inherited = inherited
                    changed = True
            if not changed:
                break

    # -- thread roots ------------------------------------------------------
    def thread_roots(self) -> set[str]:
        if self._roots is not None:
            return self._roots
        roots = set()
        for name in self.methods:
            if name.startswith(_HTTP_HANDLER_PREFIX):
                roots.add(name)
            elif not name.startswith("_"):
                roots.add(name)
        # Methods escaped as callbacks: ``self._m`` referenced without
        # being immediately called (Thread targets, on_outcome=...).
        for info in self.methods.values():
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in self.methods
                    and isinstance(node.ctx, ast.Load)
                ):
                    parent_call = info.parents.get(node)
                    if not (
                        isinstance(parent_call, ast.Call)
                        and parent_call.func is node
                    ):
                        roots.add(node.attr)
        roots.discard("__init__")
        self._roots = roots
        return roots

    def roots_reaching(self) -> dict[str, set[str]]:
        """method name -> thread roots whose call chains reach it."""
        roots = self.thread_roots()
        reach: dict[str, set[str]] = {name: set() for name in self.methods}
        for root in roots:
            if root not in self.methods:
                continue
            seen = {root}
            work = [root]
            while work:
                current = work.pop()
                reach[current].add(root)
                for callee, _stmt in self.methods[current].calls:
                    if callee not in seen:
                        seen.add(callee)
                        work.append(callee)
        return reach

    # -- attribute accesses ------------------------------------------------
    def accesses(self) -> list[_Access]:
        out: list[_Access] = []
        for name, info in self.methods.items():
            if name == "__init__":
                continue
            for _block, _idx, stmt in info.cfg.statements():
                held = self.held_at(info, stmt)
                for expr in stmt_owned_exprs(stmt):
                    for node in ast.walk(expr):
                        if not (
                            isinstance(node, ast.Attribute)
                            and isinstance(node.value, ast.Name)
                            and node.value.id == "self"
                        ):
                            continue
                        attr = node.attr
                        if attr in self.exempt_attrs or attr in self.methods:
                            continue
                        out.append(
                            _Access(
                                attr=attr,
                                method=name,
                                line=node.lineno,
                                is_write=self._is_write(node, info.parents),
                                held=held,
                            )
                        )
        return out

    @staticmethod
    def _is_write(node: ast.Attribute, parents: dict[ast.AST, ast.AST]) -> bool:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        parent = parents.get(node)
        if isinstance(parent, ast.AugAssign) and parent.target is node:
            return True
        # self.x[k] = v / del self.x[k] / self.x[k] += v
        if isinstance(parent, ast.Subscript) and parent.value is node:
            if isinstance(parent.ctx, (ast.Store, ast.Del)):
                return True
            grand = parents.get(parent)
            if isinstance(grand, ast.AugAssign) and grand.target is parent:
                return True
        # self.x.append(v) and friends
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is node
            and parent.attr in _MUTATOR_METHODS
        ):
            call = parents.get(parent)
            if isinstance(call, ast.Call) and call.func is parent:
                return True
        return False

    # -- lock acquisition sites (for ordering) -----------------------------
    def acquisitions(self) -> list[tuple[frozenset[str], str, int]]:
        """``(already_held, acquired_lock, line)`` per acquisition."""
        out = []
        for info in self.methods.values():
            for _block, _idx, stmt in info.cfg.statements():
                if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                    continue
                held = self.held_at(info, stmt)
                for item in stmt.items:
                    name = dotted_name(item.context_expr)
                    normalized = self._normalize([name] if name else [])
                    for lock in normalized:
                        out.append((held, lock, stmt.lineno))
        return out


RULES = (
    Rule(
        "unguarded-attribute", Severity.ERROR,
        "lock-guarded attribute accessed without the lock from another "
        "thread root",
        needs_justification=True,
    ),
    Rule(
        "unsynchronized-attribute", Severity.ERROR,
        "attribute shared across thread roots with no synchronization",
        needs_justification=True,
    ),
    Rule(
        "lock-order", Severity.ERROR,
        "inconsistent lock acquisition order (ABBA) or non-reentrant "
        "re-acquire",
        needs_justification=True,
    ),
    Rule(
        "lock-held-blocking", Severity.ERROR,
        "blocking call (pipe I/O, subprocess, sleep, join) while "
        "holding the lock",
        needs_justification=True,
    ),
)


def _check_class(src: SourceFile, node: ast.ClassDef) -> Iterable[Finding]:
    analysis = _ClassAnalysis(src, node)
    if not analysis.lock_attrs or not analysis.methods:
        return
    reach = analysis.roots_reaching()

    # -- attribute discipline ---------------------------------------------
    by_attr: dict[str, list[_Access]] = {}
    for access in analysis.accesses():
        if reach.get(access.method):  # unreachable helpers: no threads
            by_attr.setdefault(access.attr, []).append(access)
    for attr in sorted(by_attr):
        accesses = by_attr[attr]
        roots = set()
        for access in accesses:
            roots.update(reach[access.method])
        if len(roots) < 2:
            continue  # thread-confined: one root ever touches it
        written = any(a.is_write for a in accesses)
        if not written:
            continue  # read-only after __init__: immutable configuration
        guarded = any(a.held for a in accesses)
        if guarded:
            for access in accesses:
                if not access.held:
                    kind = "written" if access.is_write else "read"
                    yield make_finding(
                        "unguarded-attribute",
                        f"self.{attr} is guarded by "
                        f"{sorted(analysis.lock_attrs)} elsewhere but "
                        f"{kind} lock-free in {access.method}() "
                        f"(reachable from threads: "
                        f"{', '.join(sorted(roots))})",
                        src, access.line, PASS_NAME,
                    )
        else:
            for access in accesses:
                kind = "written" if access.is_write else "read"
                yield make_finding(
                    "unsynchronized-attribute",
                    f"self.{attr} is {kind} in {access.method}() with no "
                    f"lock, yet shared across thread roots "
                    f"{', '.join(sorted(roots))}; guard it with "
                    f"{sorted(analysis.lock_attrs)[0]}",
                    src, access.line, PASS_NAME,
                )

    # -- lock ordering -----------------------------------------------------
    acquisitions = analysis.acquisitions()
    pair_sites: dict[tuple[str, str], list[int]] = {}
    for held, lock, line in acquisitions:
        if lock in held:
            yield make_finding(
                "lock-order",
                f"{lock} is re-acquired while already held; "
                "threading.Lock is not reentrant — this deadlocks",
                src, line, PASS_NAME,
            )
            continue
        for outer in held:
            pair_sites.setdefault((outer, lock), []).append(line)
    for (outer, inner), lines in sorted(pair_sites.items()):
        if (inner, outer) in pair_sites:
            for line in lines:
                yield make_finding(
                    "lock-order",
                    f"{inner} acquired while holding {outer}, but the "
                    f"opposite order exists at line "
                    f"{min(pair_sites[(inner, outer)])}; pick one global "
                    "order to avoid ABBA deadlock",
                    src, line, PASS_NAME,
                )

    # -- blocking calls under the lock --------------------------------------
    for info in analysis.methods.values():
        for _block, _idx, stmt in info.cfg.statements():
            held = analysis.held_at(info, stmt)
            if not held:
                continue
            for expr in stmt_owned_exprs(stmt):
                for node_ in ast.walk(expr):
                    if isinstance(node_, ast.Call):
                        what = _is_blocking_call(node_)
                        if what is not None:
                            yield make_finding(
                                "lock-held-blocking",
                                f"{what} runs while holding "
                                f"{', '.join(sorted(held))}; every thread "
                                "contending for the lock stalls behind it — "
                                "move the blocking call outside the region",
                                src, node_.lineno, PASS_NAME,
                            )


@lint_pass(
    PASS_NAME,
    RULES,
    "dataflow lock-discipline audit of lock-owning service classes",
)
def run(project: Project) -> Iterable[Finding]:
    for src, node in project.iter_all_classes():
        yield from _check_class(src, node)
