"""Pass and rule registry.

A lint pass is a module-level function ``run(project) -> iterable of
Finding`` registered with :func:`lint_pass`, which also declares the
rules the pass can emit (with their default severities). Keeping the
rule table central means the CLI can list every rule, reporters can
validate rule names in ``ignore[...]`` comments, and a pass cannot
emit a rule it never declared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.lint.finding import Finding, Severity
from repro.lint.source import Project

PassFn = Callable[[Project], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One diagnostic a pass can raise."""

    name: str
    severity: Severity
    summary: str
    #: ``# repro-lint: ignore[...]`` for this rule must carry a
    #: justification string after the bracket; a bare ignore is kept
    #: as a finding (used by the thread-safety rules, where "trust me"
    #: is not an acceptable concurrency argument).
    needs_justification: bool = False


@dataclass(frozen=True)
class LintPass:
    """One registered analysis pass."""

    name: str
    run: PassFn
    rules: tuple[Rule, ...]
    description: str = ""


#: pass name -> LintPass, in registration order.
PASSES: dict[str, LintPass] = {}
#: rule name -> Rule (flat view across passes).
RULES: dict[str, Rule] = {}


def lint_pass(name: str, rules: Iterable[Rule], description: str = ""):
    """Register ``fn`` as lint pass ``name`` emitting ``rules``."""

    rules = tuple(rules)

    def wrap(fn: PassFn) -> PassFn:
        if name in PASSES:
            raise ValueError(f"duplicate lint pass {name!r}")
        PASSES[name] = LintPass(name=name, run=fn, rules=rules, description=description)
        for rule in rules:
            if rule.name in RULES:
                raise ValueError(f"duplicate lint rule {rule.name!r}")
            RULES[rule.name] = rule
        return fn

    return wrap


def make_finding(
    rule: str,
    message: str,
    src,
    line: int,
    pass_name: str = "",
) -> Finding:
    """Build a Finding for ``rule`` anchored at ``src:line``.

    Severity comes from the rule table; the flagged line's text is
    captured for the baseline fingerprint.
    """
    spec = RULES[rule]
    return Finding(
        rule=rule,
        message=message,
        path=src.relpath,
        line=line,
        severity=spec.severity,
        source_line=src.line_text(line),
        pass_name=pass_name,
    )


def all_passes() -> list[LintPass]:
    """Every registered pass (importing the bundled ones on demand)."""
    import repro.lint.passes  # noqa: F401  (registration side effect)

    return list(PASSES.values())
