"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.finding import Finding, Severity


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)     # actionable
    baselined: list[Finding] = field(default_factory=list)    # accepted
    suppressed: int = 0
    files_checked: int = 0
    passes_run: list[str] = field(default_factory=list)
    #: current schema fingerprints (protocol-drift), for --write-baseline.
    schemas: dict = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0


def render_text(result: LintResult, verbose: bool = False) -> str:
    out = []
    for f in sorted(result.findings, key=Finding.sort_key):
        out.append(f"{f.location}: {f.severity.value}[{f.rule}] {f.message}")
        if f.source_line:
            out.append(f"    {f.source_line}")
    summary = (
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s)"
        f" in {result.files_checked} file(s)"
        f" [{len(result.passes_run)} pass(es)"
        f", {result.suppressed} suppressed"
        f", {len(result.baselined)} baselined]"
    )
    if result.findings:
        out.append("")
    out.append(summary)
    if verbose and result.baselined:
        out.append("baselined (accepted) findings:")
        for f in sorted(result.baselined, key=Finding.sort_key):
            out.append(f"  {f.location}: [{f.rule}] {f.message}")
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.to_json() for f in sorted(result.findings, key=Finding.sort_key)],
        "baselined": [
            f.to_json() for f in sorted(result.baselined, key=Finding.sort_key)
        ],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "suppressed": result.suppressed,
            "baselined": len(result.baselined),
            "files_checked": result.files_checked,
            "passes_run": result.passes_run,
        },
    }
    return json.dumps(payload, indent=2) + "\n"
