"""SARIF 2.1.0 reporter, for GitHub code-scanning upload.

One run, one tool (``repro-lint``), every registered rule in the
driver's rule table, one result per actionable finding. Fingerprints
ride in ``partialFingerprints`` so code scanning tracks a finding
across commits the same way the JSON baseline does (both are derived
from the rule + path + source-line triple, not the line number).
"""

from __future__ import annotations

import json

from repro.lint.finding import Finding, Severity
from repro.lint.registry import all_passes
from repro.lint.report import LintResult

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def _rules_table() -> list[dict]:
    rules = []
    for lint in all_passes():
        for rule in lint.rules:
            rules.append(
                {
                    "id": rule.name,
                    "shortDescription": {"text": rule.summary},
                    "properties": {"pass": lint.name},
                    "defaultConfiguration": {
                        "level": _LEVELS.get(rule.severity, "warning")
                    },
                }
            )
    return rules


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }


def render_sarif(result: LintResult) -> str:
    """The SARIF document for ``result``'s actionable findings."""
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": _rules_table(),
                    }
                },
                "results": [
                    _result(f)
                    for f in sorted(result.findings, key=Finding.sort_key)
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
