"""Source loading: parsed files, projects and suppression comments.

The checker is **pure-AST**: files are read and parsed, never imported
or executed, so linting cannot trigger side effects, and broken or
dependency-missing modules still get checked.

Suppressions
------------
A finding is suppressed by a trailing comment on the flagged line::

    t0 = time.time()  # repro-lint: ignore[wall-clock] progress display only

``ignore[rule-a,rule-b]`` suppresses the named rules; a bare
``ignore`` (no bracket) suppresses every rule on that line. A *pass
name* inside the bracket (``ignore[thread-safety]``) suppresses every
rule of that pass. Text after the bracket is the one-line
justification — encouraged everywhere, and **required** for rules
declared with ``needs_justification`` (the CLI keeps the finding when
the justification is missing).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([\w\-, ]*)\])?")


@dataclass
class SourceFile:
    """One parsed Python source file."""

    path: Path                 # absolute filesystem path
    relpath: str               # project-relative, '/'-separated
    text: str
    tree: ast.Module
    #: line -> set of suppressed rule/pass names ('*' = every rule).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: line -> justification text following the ignore bracket.
    notes: dict[int, str] = field(default_factory=dict)

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    def line_text(self, line: int) -> str:
        lines = self.lines
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, rule: str, pass_name: str = "") -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        if "*" in rules or rule in rules:
            return True
        return bool(pass_name) and pass_name in rules

    def suppression_note(self, line: int) -> str:
        """The justification text of the ignore comment on ``line``."""
        return self.notes.get(line, "")

    def iter_classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


def _extract_suppressions(text: str) -> tuple[dict[int, set[str]], dict[int, str]]:
    out: dict[int, set[str]] = {}
    notes: dict[int, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        inner = m.group(1)
        if inner is None:
            out[lineno] = {"*"}
        else:
            rules = {r.strip() for r in inner.split(",") if r.strip()}
            out[lineno] = rules or {"*"}
        note = line[m.end():].strip()
        if note:
            notes[lineno] = note
    return out, notes


def load_source(path: Path, root: Path) -> Optional[SourceFile]:
    """Parse one file; returns None when it is not valid Python."""
    path = path.resolve()
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return None
    try:
        relpath = path.relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.name
    suppressions, notes = _extract_suppressions(text)
    return SourceFile(
        path=path,
        relpath=relpath,
        text=text,
        tree=tree,
        suppressions=suppressions,
        notes=notes,
    )


class Project:
    """The set of files one lint invocation analyzes.

    Cross-file passes (capability flags, stats parity) locate their
    anchor definitions *by name inside the project* — e.g. "the class
    named ``SMExtension``" — so the same passes run unchanged against
    the real tree and against self-test fixture twins.
    """

    def __init__(self, files: list[SourceFile], root: Path) -> None:
        self.files = files
        self.root = root
        self._class_index: dict[str, list[tuple[SourceFile, ast.ClassDef]]] = {}
        for src in files:
            for node in src.iter_classes():
                self._class_index.setdefault(node.name, []).append((src, node))

    def find_class(self, name: str) -> Optional[tuple[SourceFile, ast.ClassDef]]:
        entries = self._class_index.get(name)
        return entries[0] if entries else None

    def find_classes(self, name: str) -> list[tuple[SourceFile, ast.ClassDef]]:
        return list(self._class_index.get(name, ()))

    def iter_all_classes(self) -> Iterator[tuple[SourceFile, ast.ClassDef]]:
        for src in self.files:
            for node in src.iter_classes():
                yield src, node

    def find_function(self, name: str) -> Optional[tuple[SourceFile, ast.FunctionDef]]:
        for src in self.files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return src, node
        return None


def collect_files(paths: list[Path], root: Path) -> list[SourceFile]:
    """Expand files/directories into parsed sources (sorted, deduped)."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for p in paths:
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            c = c.resolve()
            if c.suffix == ".py" and c not in seen and c.is_file():
                seen.add(c)
                ordered.append(c)
    files = []
    for path in ordered:
        src = load_source(path, root)
        if src is not None:
            files.append(src)
    return files
