"""Memory hierarchy substrate: L1 cache machinery, MSHRs, shared L2,
and a bandwidth/latency DRAM model."""

from repro.memory.cache import CacheLine, CacheStats, SetAssociativeCache
from repro.memory.dram import DRAMModel, DRAMStats
from repro.memory.dram_timing import DRAMTimings, TimingDRAMModel
from repro.memory.interconnect import Interconnect
from repro.memory.l2 import L2Cache
from repro.memory.mshr import MSHRFile
from repro.memory.subsystem import MemorySubsystem, TrafficStats

__all__ = [
    "CacheLine",
    "CacheStats",
    "SetAssociativeCache",
    "DRAMModel",
    "DRAMStats",
    "DRAMTimings",
    "Interconnect",
    "TimingDRAMModel",
    "L2Cache",
    "MSHRFile",
    "MemorySubsystem",
    "TrafficStats",
]
