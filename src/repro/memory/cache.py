"""Set-associative cache with LRU replacement and eviction hooks.

This models the L1 data cache of one SM (and, with different
parameters, the shared L2). Lines are identified by 128-byte-aligned
line addresses. Each line carries:

* a data ``token`` — an opaque value used by the correctness tests to
  prove that victim-cache hits return the data that was evicted, and
* an ``hpc`` — the 5-bit hashed PC of the load that last touched the
  line (the paper adds this field to every L1 line so Linebacker can
  tell whether a victim line belongs to a selected high-locality load).

The cache distinguishes cold misses (line never seen before) from
capacity/conflict ("2C") misses (line was previously resident), which
is exactly the classification behind the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.metrics import Metric, MetricSet


@dataclass(slots=True)
class CacheLine:
    """One resident cache line.

    ``owner`` is the warp id of the last accessor — CCWS's lost-
    locality detection needs to know whether a re-reference to an
    evicted line comes from the warp that lost it.
    """

    tag: int
    token: int = 0
    hpc: int = 0
    owner: int = -1
    last_use: int = 0
    dirty: bool = False


#: Called as eviction_hook(line_addr, line) when a valid line is replaced.
EvictionHook = Callable[[int, CacheLine], None]


#: Per-cache counters. None participate in the golden fingerprint
#: directly — the fingerprint pins the SM-level l1_hits/l1_misses view.
CACHE_STATS = MetricSet(
    "CacheStats",
    owner="memory.cache",
    metrics=(
        Metric("hits", description="lookup hits"),
        Metric("misses", description="lookup misses"),
        Metric("cold_misses", description="misses to never-seen lines"),
        Metric("capacity_conflict_misses", description="misses to previously resident lines"),
        Metric("evictions", description="valid lines replaced"),
        Metric("write_hits", description="store hits"),
        Metric("write_misses", description="store misses"),
    ),
)

_CacheStatsBase = CACHE_STATS.build()


class CacheStats(_CacheStatsBase):
    __slots__ = ()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache keyed by line address."""

    __slots__ = (
        "line_bytes",
        "assoc",
        "num_sets",
        "_sets",
        "_ever_seen",
        "eviction_hook",
        "stats",
        "_clock",
    )

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 128,
        eviction_hook: Optional[EvictionHook] = None,
    ) -> None:
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError("cache size must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._ever_seen: set[int] = set()
        self.eviction_hook = eviction_hook
        self.stats = CacheStats()
        self._clock = 0

    # -- address helpers -------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def tag_of(self, line_addr: int) -> int:
        return line_addr // self.num_sets

    # -- lookups ---------------------------------------------------------
    def probe(self, line_addr: int) -> Optional[CacheLine]:
        """Tag check without any state change (no LRU update, no stats)."""
        return self._sets[self.set_index(line_addr)].get(self.tag_of(line_addr))

    def lookup(self, line_addr: int, hpc: int = 0, owner: int = -1) -> Optional[CacheLine]:
        """Read access: returns the line on hit (updating LRU, the
        line's HPC field and owner), records hit/miss statistics.

        LRU order is the set dict's insertion order: every touch moves
        the line to the end, so the victim is always the first key and
        :meth:`fill` never scans the ways. The touch clock is unique
        and monotone, so this is exactly the order an explicit
        min-``last_use`` scan would produce.
        """
        clock = self._clock = self._clock + 1
        stats = self.stats
        num_sets = self.num_sets
        ways = self._sets[line_addr % num_sets]
        tag = line_addr // num_sets
        line = ways.get(tag)
        if line is not None:
            del ways[tag]
            ways[tag] = line
            line.last_use = clock
            line.hpc = hpc
            line.owner = owner
            stats.hits += 1
            return line
        stats.misses += 1
        if line_addr in self._ever_seen:
            stats.capacity_conflict_misses += 1
        else:
            stats.cold_misses += 1
        return None

    def fill(
        self, line_addr: int, token: int = 0, hpc: int = 0, owner: int = -1
    ) -> Optional[tuple[int, CacheLine]]:
        """Allocate ``line_addr``, evicting the LRU way when the set is
        full. Returns ``(evicted_addr, evicted_line)`` when an eviction
        happened, else None. Filling a resident line refreshes it.
        """
        clock = self._clock = self._clock + 1
        self._ever_seen.add(line_addr)
        num_sets = self.num_sets
        set_idx = line_addr % num_sets
        ways = self._sets[set_idx]
        tag = line_addr // num_sets
        line = ways.get(tag)
        if line is not None:
            del ways[tag]
            ways[tag] = line
            line.token = token
            line.hpc = hpc
            line.owner = owner
            line.last_use = clock
            return None

        evicted: Optional[tuple[int, CacheLine]] = None
        if len(ways) >= self.assoc:
            # The ways dict is kept in LRU order (see lookup), so the
            # victim is the first key — no scan over the set.
            victim_tag = next(iter(ways))
            victim = ways.pop(victim_tag)
            victim_addr = victim_tag * num_sets + set_idx
            self.stats.evictions += 1
            evicted = (victim_addr, victim)
            if self.eviction_hook is not None:
                self.eviction_hook(victim_addr, victim)

        ways[tag] = CacheLine(
            tag=tag, token=token, hpc=hpc, owner=owner, last_use=clock
        )
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Drop ``line_addr`` if resident (write-evict store policy)."""
        ways = self._sets[self.set_index(line_addr)]
        return ways.pop(self.tag_of(line_addr), None) is not None

    def write_access(self, line_addr: int) -> bool:
        """Store handling under write-evict / write-no-allocate.

        On a hit the line is invalidated (evicted without the eviction
        hook, per the paper: stores send data directly down the
        hierarchy and never leave dirty data behind); on a miss nothing
        is allocated. Returns True on hit.
        """
        if self.probe(line_addr) is not None:
            self.invalidate(line_addr)
            self.stats.write_hits += 1
            return True
        self.stats.write_misses += 1
        return False

    # -- introspection ---------------------------------------------------
    def resident_lines(self) -> list[int]:
        """All resident line addresses (for invariants in tests)."""
        out = []
        for set_idx, ways in enumerate(self._sets):
            out.extend(tag * self.num_sets + set_idx for tag in ways)
        return out

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def reset_stats(self) -> None:
        self.stats = CacheStats()
