"""Off-chip DRAM model: fixed access latency plus a bandwidth server.

The paper's baseline provides 352.5 GB/s of off-chip bandwidth
(Table 1). We model DRAM as a single shared server: each 128-byte line
transfer occupies the channel for ``line_bytes / bytes_per_cycle``
cycles, and a request completes at

    max(arrival, channel_free) + access_latency + service_time.

This captures the two behaviours the evaluation depends on: long
memory latency when the channel is idle, and queueing delay when many
SMs saturate bandwidth (which is what makes extreme warp throttling
hurt — see paper Section 3.2, "If too few warps run, GPUs may suffer
from slowdown due to the underutilization of DRAM bandwidth").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    busy_cycles: float = 0.0

    @property
    def bytes_transferred(self) -> int:
        return (self.reads + self.writes) * 128

    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0


class DRAMModel:
    """Shared bandwidth/latency server for all SMs."""

    def __init__(
        self,
        lines_per_cycle: float,
        access_latency: int = 220,
        line_bytes: int = 128,
    ) -> None:
        if lines_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        self.service_cycles = 1.0 / lines_per_cycle
        self.access_latency = access_latency
        self.line_bytes = line_bytes
        self._channel_free: float = 0.0
        self.stats = DRAMStats()

    def access(self, cycle: int, is_write: bool = False, line_addr: int = 0) -> int:
        """Issue one line transfer at ``cycle``; returns completion cycle.

        ``line_addr`` is accepted for API compatibility with the
        bank-level :class:`~repro.memory.dram_timing.TimingDRAMModel`;
        the simple model is address-blind.
        """
        start = max(float(cycle), self._channel_free)
        self._channel_free = start + self.service_cycles
        self.stats.busy_cycles += self.service_cycles
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return int(start + self.service_cycles + self.access_latency)

    def queue_delay(self, cycle: int) -> float:
        """Current queueing delay seen by a request arriving at ``cycle``."""
        return max(0.0, self._channel_free - cycle)
