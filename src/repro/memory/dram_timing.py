"""Bank-level DRAM timing model (paper Table 1's timing row).

Table 1 specifies the off-chip DRAM timing as
``RCD=12, RP=12, RC=40, RRD=5.5, CL=12, WR=12, RAS=28`` (memory-clock
cycles). The simple :class:`~repro.memory.dram.DRAMModel` folds all of
this into one latency + a bandwidth server; this module models what
those parameters actually mean:

* the address space is interleaved across ``num_banks`` banks over
  ``num_channels`` channels;
* each bank has an open row (row buffer). A **row hit** pays only CAS
  latency (CL); a **row miss** pays precharge (RP) + activate (RCD) +
  CAS, and activates cannot violate tRC (activate-to-activate in the
  same bank) or tRAS (activate-to-precharge);
* activates to *different* banks of the same channel are separated by
  tRRD;
* each channel's data bus serializes bursts (the bandwidth component).

The model is O(1) per access — per-bank state is just the open row and
two timestamps — so it can replace the simple model wholesale
(``GPUConfig.dram_model="timing"``). Streaming accesses enjoy high
row-buffer locality; scattered victim/divergent traffic pays the
row-miss penalty, which is exactly the asymmetry the simple model
cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """Timing parameters in core-clock cycles (paper Table 1)."""

    rcd: float = 12.0   # RAS-to-CAS delay (activate -> read/write)
    rp: float = 12.0    # row precharge
    rc: float = 40.0    # activate-to-activate, same bank
    rrd: float = 5.5    # activate-to-activate, different banks
    cl: float = 12.0    # CAS latency
    wr: float = 12.0    # write recovery
    ras: float = 28.0   # activate-to-precharge minimum


@dataclass
class BankState:
    """Row-buffer and timing state of one DRAM bank."""

    open_row: int = -1
    last_activate: float = -1e18   # for tRC/tRAS
    ready_at: float = 0.0          # bank busy until (covers WR)


@dataclass
class TimingDRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_cycles: float = 0.0

    @property
    def row_hit_ratio(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def bytes_transferred(self) -> int:
        return (self.reads + self.writes) * 128

    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0


class TimingDRAMModel:
    """Bank/row-buffer DRAM model, API-compatible with DRAMModel.

    Address mapping (line-granular addresses): the low bits pick the
    channel, the next bits the bank, and the remainder the row —
    consecutive lines stripe across channels and banks, and
    ``lines_per_row`` consecutive same-bank lines share a row.
    """

    def __init__(
        self,
        lines_per_cycle: float,
        access_latency: int = 220,
        line_bytes: int = 128,
        timings: DRAMTimings | None = None,
        num_channels: int = 8,
        banks_per_channel: int = 16,
        lines_per_row: int = 16,   # 2 KB rows of 128 B lines
    ) -> None:
        if lines_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        if num_channels < 1 or banks_per_channel < 1:
            raise ValueError("need at least one channel and bank")
        self.timings = timings or DRAMTimings()
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        self.lines_per_row = lines_per_row
        self.line_bytes = line_bytes
        #: Bus occupancy per line per channel: the total device
        #: bandwidth is split evenly over channels.
        self.bus_cycles = num_channels / lines_per_cycle
        #: Base transfer latency (interconnect + controller overhead);
        #: the row/CAS components are added per access.
        self.base_latency = max(0, access_latency - int(self.timings.cl))
        self._banks = [
            [BankState() for _ in range(banks_per_channel)]
            for _ in range(num_channels)
        ]
        self._bus_free = [0.0] * num_channels
        self._last_activate_in_channel = [-1e18] * num_channels
        self.stats = TimingDRAMStats()

    # -- address mapping ---------------------------------------------------
    def channel_of(self, line_addr: int) -> int:
        return line_addr % self.num_channels

    def bank_of(self, line_addr: int) -> int:
        return (line_addr // self.num_channels) % self.banks_per_channel

    def row_of(self, line_addr: int) -> int:
        per_channel = line_addr // self.num_channels
        return per_channel // (self.banks_per_channel * self.lines_per_row)

    # -- access ------------------------------------------------------------
    def access(self, cycle: int, is_write: bool = False, line_addr: int = 0) -> int:
        """Issue one line transfer; returns its completion cycle."""
        t = self.timings
        channel = self.channel_of(line_addr)
        bank = self._banks[channel][self.bank_of(line_addr)]
        row = self.row_of(line_addr)

        start = max(float(cycle), bank.ready_at)
        if bank.open_row == row:
            self.stats.row_hits += 1
            cas_done = start + t.cl
        else:
            self.stats.row_misses += 1
            # Precharge may not start before tRAS after the activate,
            # and the new activate must respect tRC (same bank) and
            # tRRD (same channel).
            precharge_start = max(start, bank.last_activate + t.ras)
            activate_at = max(
                precharge_start + t.rp,
                bank.last_activate + t.rc,
                self._last_activate_in_channel[channel] + t.rrd,
            )
            bank.last_activate = activate_at
            self._last_activate_in_channel[channel] = activate_at
            bank.open_row = row
            cas_done = activate_at + t.rcd + t.cl

        # Data bus: bursts serialize per channel.
        bus_start = max(cas_done, self._bus_free[channel])
        bus_done = bus_start + self.bus_cycles
        self._bus_free[channel] = bus_done
        self.stats.busy_cycles += self.bus_cycles

        bank.ready_at = bus_done + (t.wr if is_write else 0.0)
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return int(bus_done + self.base_latency)

    def queue_delay(self, cycle: int) -> float:
        """Worst-case current bus queueing delay across channels."""
        return max(0.0, max(self._bus_free) - cycle)
