"""SM-to-L2 interconnect model.

GPGPU-Sim routes memory requests from SMs through a crossbar to the
memory partitions; under heavy miss traffic the network itself queues.
This model captures that with two serialization points per request:

* an **injection port** per SM (one request per ``injection_interval``
  cycles), and
* a **crossbar** shared by all SMs (aggregate request rate bound).

Both directions share the same ports (replies ride the same model with
the latency already folded into L2/DRAM response times). The model is
O(1) per request and disabled by default (``GPUConfig.noc_enable``) —
the L2 port server already provides the primary congestion signal; the
NoC adds per-SM fairness effects (one SM cannot monopolize the L2
port from a single injection port).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class InterconnectStats:
    requests: int = 0
    total_queue_cycles: float = 0.0

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0


class Interconnect:
    """Two-stage serialization: per-SM injection port + shared crossbar."""

    def __init__(
        self,
        num_sms: int,
        latency: int = 12,
        injection_interval: float = 1.0,
        crossbar_lines_per_cycle: float = 8.0,
    ) -> None:
        if num_sms < 1:
            raise ValueError("need at least one SM")
        if injection_interval <= 0 or crossbar_lines_per_cycle <= 0:
            raise ValueError("interconnect rates must be positive")
        self.latency = latency
        self.injection_interval = injection_interval
        self.crossbar_interval = 1.0 / crossbar_lines_per_cycle
        self._port_free = [0.0] * num_sms
        self._crossbar_free = 0.0
        self.stats = InterconnectStats()

    def traverse(self, sm_id: int, cycle: int) -> int:
        """Send one request from ``sm_id``; returns arrival time at L2."""
        inject_at = max(float(cycle), self._port_free[sm_id])
        self._port_free[sm_id] = inject_at + self.injection_interval
        cross_at = max(inject_at, self._crossbar_free)
        self._crossbar_free = cross_at + self.crossbar_interval
        self.stats.requests += 1
        self.stats.total_queue_cycles += cross_at - cycle
        return int(cross_at + self.latency)
