"""Shared L2 cache in front of DRAM.

All SMs share one L2 (2 MB, 8-way in the baseline, Table 1). The L2 is
modeled as a tag array plus a *bandwidth server*: every access (hit or
miss) occupies the L2 port for ``1/lines_per_cycle`` cycles, so under
heavy load requests queue behind each other and the effective miss
latency grows with traffic. This congestion behaviour is what makes
cache thrashing expensive on real GPUs (paper Section 2.2: "Congestion
of such long-latency memory operations increases stalls in the memory
system") and what makes warp throttling profitable at all.
"""

from __future__ import annotations

from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DRAMModel


class L2Cache:
    """Shared L2: a set-associative tag array + port bandwidth over DRAM."""

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        latency: int,
        dram: DRAMModel,
        line_bytes: int = 128,
        lines_per_cycle: float = 4.0,
    ) -> None:
        if lines_per_cycle <= 0:
            raise ValueError("L2 bandwidth must be positive")
        self.cache = SetAssociativeCache(size_bytes, assoc, line_bytes)
        self.latency = latency
        self.dram = dram
        self.service_cycles = 1.0 / lines_per_cycle
        self._port_free: float = 0.0
        self.queue_delay_sum: float = 0.0
        self.accesses: int = 0

    def _occupy_port(self, cycle: int) -> float:
        """Claim the L2 port; returns the cycle service starts."""
        start = max(float(cycle), self._port_free)
        self._port_free = start + self.service_cycles
        self.queue_delay_sum += start - cycle
        self.accesses += 1
        return start

    def read(self, line_addr: int, cycle: int) -> int:
        """Read one line; returns the cycle the data is back at the SM."""
        return self.read_demand(line_addr, cycle)[0]

    def read_demand(self, line_addr: int, cycle: int) -> tuple[int, bool]:
        """Read one line; returns ``(ready_cycle, was_hit)``.

        The combined form lets the memory subsystem account off-chip
        traffic without a separate tag probe in front of the read.
        Port occupancy is inlined (one call per L1 miss).
        """
        start = self._port_free
        if cycle > start:
            start = float(cycle)
        self._port_free = start + self.service_cycles
        self.queue_delay_sum += start - cycle
        self.accesses += 1
        if self.cache.lookup(line_addr) is not None:
            return int(start + self.latency), True
        ready = self.dram.access(int(start + self.latency), line_addr=line_addr)
        self.cache.fill(line_addr, token=line_addr)
        return ready, False

    def write(self, line_addr: int, cycle: int) -> int:
        """Write one line through to DRAM; returns completion cycle."""
        # Write-through, no-allocate at L2 for modeling simplicity; the
        # line is invalidated so a later read refetches fresh data.
        start = self._occupy_port(cycle)
        self.cache.invalidate(line_addr)
        return self.dram.access(
            int(start + self.latency), is_write=True, line_addr=line_addr
        )

    @property
    def mean_queue_delay(self) -> float:
        return self.queue_delay_sum / self.accesses if self.accesses else 0.0

    @property
    def stats(self):
        return self.cache.stats
