"""Miss Status Holding Registers (MSHRs).

An MSHR file tracks outstanding cache misses so that multiple requests
to the same in-flight line merge into a single off-chip fetch. The L1
in the baseline GPU has 64 MSHR entries (Table 1); when all entries are
occupied and a new miss arrives for a line that is not already in
flight, the memory stage stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class MSHRFile:
    """Fixed-capacity merge table for outstanding misses."""

    capacity: int
    _entries: dict[int, list[Any]] = field(default_factory=dict)
    merged_requests: int = 0
    allocations: int = 0
    stalls: int = 0

    def lookup(self, line_addr: int) -> bool:
        """True when ``line_addr`` already has an in-flight miss."""
        return line_addr in self._entries

    def can_allocate(self, line_addr: int) -> bool:
        """True when a miss to ``line_addr`` can be accepted now."""
        return line_addr in self._entries or len(self._entries) < self.capacity

    def allocate(self, line_addr: int, waiter: Any) -> bool:
        """Register ``waiter`` on the miss for ``line_addr``.

        Returns True when this call created a new entry (a new off-chip
        fetch is needed) and False when it merged into an existing one.
        Raises when the file is full and the line is not in flight —
        callers must check :meth:`can_allocate` first.
        """
        if line_addr in self._entries:
            self._entries[line_addr].append(waiter)
            self.merged_requests += 1
            return False
        if len(self._entries) >= self.capacity:
            self.stalls += 1
            raise RuntimeError("MSHR file full; caller must stall")
        self._entries[line_addr] = [waiter]
        self.allocations += 1
        return True

    def release(self, line_addr: int) -> list[Any]:
        """Complete the miss for ``line_addr``; returns its waiters."""
        return self._entries.pop(line_addr, [])

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
