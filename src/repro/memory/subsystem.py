"""Glue: the memory hierarchy shared by all SMs (L2 + DRAM) and the
off-chip traffic accounting used by the paper's Figure 17.

Traffic is accounted in 128-byte line transfers, split into demand
reads, store writes, and Linebacker's register backup/restore traffic
(the "Linebacker overhead" series in Figure 17).
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.memory.dram import DRAMModel
from repro.memory.l2 import L2Cache
from repro.metrics import Metric, MetricSet

#: Off-chip traffic counters (line = 128 B granularity).
TRAFFIC_STATS = MetricSet(
    "TrafficStats",
    owner="memory.subsystem",
    metrics=(
        Metric("demand_read_lines", description="demand reads missing L2", fingerprint=True),
        Metric("store_write_lines", description="store write-throughs", fingerprint=True),
        Metric("backup_write_lines", description="register backup writes", fingerprint=True),
        Metric("restore_read_lines", description="register restore reads", fingerprint=True),
    ),
)

_TrafficStatsBase = TRAFFIC_STATS.build()


class TrafficStats(_TrafficStatsBase):
    """Off-chip traffic in line (128 B) granularity."""

    __slots__ = ()

    @property
    def total_lines(self) -> int:
        return (
            self.demand_read_lines
            + self.store_write_lines
            + self.backup_write_lines
            + self.restore_read_lines
        )

    @property
    def register_overhead_lines(self) -> int:
        return self.backup_write_lines + self.restore_read_lines

    @property
    def total_bytes(self) -> int:
        return self.total_lines * 128


class MemorySubsystem:
    """Shared L2 + DRAM with traffic accounting.

    All latencies returned are absolute cycles at which the requesting
    SM observes completion.
    """

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        if config.dram_model == "timing":
            from repro.memory.dram_timing import TimingDRAMModel

            self.dram = TimingDRAMModel(
                lines_per_cycle=config.dram_lines_per_cycle,
                access_latency=config.dram_latency,
                line_bytes=config.l1_line_bytes,
                num_channels=config.dram_channels,
                banks_per_channel=config.dram_banks_per_channel,
            )
        elif config.dram_model == "simple":
            self.dram = DRAMModel(
                lines_per_cycle=config.dram_lines_per_cycle,
                access_latency=config.dram_latency,
                line_bytes=config.l1_line_bytes,
            )
        else:
            raise ValueError(f"unknown dram_model {config.dram_model!r}")
        self.l2 = L2Cache(
            size_bytes=config.l2_size_bytes,
            assoc=config.l2_assoc,
            latency=config.l2_latency,
            dram=self.dram,
            line_bytes=config.l1_line_bytes,
            lines_per_cycle=config.l2_lines_per_cycle,
        )
        self.traffic = TrafficStats()
        self._backup_cursor = 0
        self.noc = None
        if config.noc_enable:
            from repro.memory.interconnect import Interconnect

            self.noc = Interconnect(
                num_sms=config.num_sms,
                latency=config.noc_latency,
                injection_interval=config.noc_injection_interval,
                crossbar_lines_per_cycle=config.noc_crossbar_lines_per_cycle,
            )

    # -- demand path -----------------------------------------------------
    def fetch_line(self, line_addr: int, cycle: int, sm_id: int = 0) -> int:
        """Demand read after an L1 (and victim cache) miss."""
        if self.noc is not None:
            cycle = self.noc.traverse(sm_id, cycle)
        ready, l2_hit = self.l2.read_demand(line_addr, cycle)
        if not l2_hit:
            self.traffic.demand_read_lines += 1
        return ready

    def write_line(self, line_addr: int, cycle: int, sm_id: int = 0) -> int:
        """Store write-through from an SM."""
        if self.noc is not None:
            cycle = self.noc.traverse(sm_id, cycle)
        self.traffic.store_write_lines += 1
        return self.l2.write(line_addr, cycle)

    # -- Linebacker register backup/restore path --------------------------
    #: Line-granular base of the dedicated register backup region.
    BACKUP_REGION_BASE = 1 << 40

    def backup_registers(self, num_lines: int, cycle: int) -> int:
        """Write ``num_lines`` warp registers to the backup region.

        Returns the cycle at which the last write completes. Register
        backup bypasses L2 (the backup region is not demand data) and
        streams sequential addresses, so under the bank-level DRAM
        model it enjoys row-buffer locality.
        """
        ready = cycle
        base = self.BACKUP_REGION_BASE + self._backup_cursor
        for i in range(num_lines):
            ready = self.dram.access(cycle, is_write=True, line_addr=base + i)
        self._backup_cursor += num_lines
        self.traffic.backup_write_lines += num_lines
        return ready

    def restore_registers(self, num_lines: int, cycle: int) -> int:
        """Read ``num_lines`` warp registers back from the backup region."""
        ready = cycle
        base = self.BACKUP_REGION_BASE + max(0, self._backup_cursor - num_lines)
        for i in range(num_lines):
            ready = self.dram.access(cycle, line_addr=base + i)
        self.traffic.restore_read_lines += num_lines
        return ready
