"""Declarative metrics core.

The simulator's statistics used to be hand-rolled ``@dataclass(slots=True)``
counter bags scattered across ``gpu/``, ``memory/`` and ``core/``, with
the golden-fingerprint coverage list maintained by hand in a lint pass.
This package replaces that with a single declarative registry:

* :class:`~repro.metrics.registry.Metric` — one named counter or gauge
  with an owner-facing description and a ``fingerprint`` bit that says
  whether the golden-equivalence gate pins it.
* :class:`~repro.metrics.registry.MetricSet` — a named group of
  metrics that *generates* the ``__slots__``-based counter class the
  hot path mutates (``SMStats``, ``TrafficStats``, ...), so the
  declaration and the storage can never drift apart.
* :class:`~repro.metrics.timeseries.WindowSeries` /
  :class:`~repro.metrics.timeseries.WindowRecorder` — the opt-in
  per-window timeseries layer: a ring of window snapshots keyed on the
  simulator's existing ``window_cycles`` boundary, with counter deltas
  derived from the registry.

The lint ``stats-parity`` pass re-derives its coverage list from the
``MetricSet`` declarations, and ``python -m repro trace`` exposes the
recorded windows from the CLI.
"""

from repro.metrics.registry import (
    Metric,
    MetricSet,
    fingerprint_metric_names,
    metric_set,
    metric_sets,
)
from repro.metrics.timeseries import (
    DEFAULT_WINDOW_CAPACITY,
    TIMESERIES_VERSION,
    WindowRecorder,
    WindowSeries,
)

__all__ = [
    "DEFAULT_WINDOW_CAPACITY",
    "Metric",
    "MetricSet",
    "TIMESERIES_VERSION",
    "WindowRecorder",
    "WindowSeries",
    "fingerprint_metric_names",
    "metric_set",
    "metric_sets",
]
