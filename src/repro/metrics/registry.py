"""Declarative metric registry.

Every statistics bag in the simulator is declared once, as data: a
:class:`MetricSet` names the counters, says which component owns them,
and marks the subset the golden-fingerprint gate pins. The set then
*generates* the ``__slots__``-based storage class the hot path mutates
(via :meth:`MetricSet.build`), so the declaration can never drift from
the fields that actually exist.

Two consumers read the registry instead of hand-maintained lists:

* the ``stats-parity`` lint pass, which re-derives the set of
  fingerprint-participating counters straight from the ``MetricSet``
  declarations in the source tree (purely syntactically — the
  declarations below are the runtime mirror of the same data);
* the :class:`~repro.metrics.timeseries.WindowRecorder`, which asks a
  set for its delta-able counter names when folding end-of-window
  snapshots.

Kinds
-----
``counter``
    Monotonic accumulator (instructions, hits, ...). Timeseries rows
    report per-window deltas.
``gauge``
    Point-in-time value (``cycles``). Excluded from delta folding.
"""

from __future__ import annotations

import dataclasses
import keyword
from dataclasses import dataclass, field

_KINDS = ("counter", "gauge")

#: class_name -> MetricSet, populated as owning modules import.
METRIC_SETS: dict[str, "MetricSet"] = {}


@dataclass(frozen=True, slots=True)
class Metric:
    """One named statistic inside a :class:`MetricSet`."""

    name: str
    kind: str = "counter"
    description: str = ""
    #: True when ``tests/golden.py::result_fingerprint`` pins this
    #: metric — the stats-parity lint pass enforces that every such
    #: metric is actually read there.
    fingerprint: bool = False


@dataclass(frozen=True, slots=True)
class MetricSet:
    """A named group of metrics owned by one component.

    Instantiating a set registers it in :data:`METRIC_SETS`;
    re-executing an identical declaration (module reload) is a no-op,
    while a *conflicting* redeclaration under the same class name
    raises.
    """

    class_name: str
    owner: str
    metrics: tuple[Metric, ...] = field(default=())

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for metric in self.metrics:
            if not metric.name.isidentifier() or keyword.iskeyword(metric.name):
                raise ValueError(
                    f"{self.class_name}: metric name {metric.name!r} is not "
                    "a valid attribute name"
                )
            if metric.name.startswith("_"):
                raise ValueError(
                    f"{self.class_name}: metric name {metric.name!r} must "
                    "not be underscore-prefixed"
                )
            if metric.name in seen:
                raise ValueError(
                    f"{self.class_name}: duplicate metric {metric.name!r}"
                )
            if metric.kind not in _KINDS:
                raise ValueError(
                    f"{self.class_name}.{metric.name}: unknown kind "
                    f"{metric.kind!r} (expected one of {_KINDS})"
                )
            seen.add(metric.name)
        existing = METRIC_SETS.get(self.class_name)
        if existing is not None and existing != self:
            raise ValueError(
                f"conflicting MetricSet redeclaration for {self.class_name!r}"
            )
        METRIC_SETS[self.class_name] = self

    def names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.metrics)

    def counter_names(self) -> tuple[str, ...]:
        """Names eligible for per-window delta folding."""
        return tuple(m.name for m in self.metrics if m.kind == "counter")

    def fingerprint_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.metrics if m.fingerprint)

    def build(self):
        """Generate the ``__slots__``-based storage base class.

        The result is a slotted dataclass with every metric as an
        ``int = 0`` field, in declaration order. Owning modules
        subclass it (adding ``__slots__ = ()`` plus derived
        properties) under the public ``class_name`` so pickling by
        reference keeps working.
        """
        return dataclasses.make_dataclass(
            f"_{self.class_name}Base",
            [
                (m.name, int, dataclasses.field(default=0))
                for m in self.metrics
            ],
            slots=True,
        )


def metric_set(class_name: str) -> "MetricSet":
    """Look up a registered set by its public class name."""
    return METRIC_SETS[class_name]


def metric_sets() -> tuple["MetricSet", ...]:
    """All registered sets, in registration order."""
    return tuple(METRIC_SETS.values())


def fingerprint_metric_names() -> tuple[str, ...]:
    """Every fingerprint-participating metric across all sets."""
    names: list[str] = []
    for ms in METRIC_SETS.values():
        names.extend(ms.fingerprint_names())
    return tuple(names)
