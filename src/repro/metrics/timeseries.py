"""Opt-in per-window timeseries recording.

Linebacker's mechanisms are defined over ``window_cycles`` monitoring
windows (load-monitor selection, IPC-variation throttling, VP
activation), so the natural time resolution for dynamics is one row
per window. :class:`WindowRecorder` folds a counter set's cumulative
values into per-window deltas at each boundary; :class:`WindowSeries`
is the bounded ring the rows land in, and the object that travels
through snapshots, the wire protocol, and the result cache.

Recording is opt-in (``run_kernel(..., timeseries=True)``); when it is
off the SM holds no recorder and the per-tick cost is a single float
compare against an infinite sentinel — the same trick the event
fast-forward uses.
"""

from __future__ import annotations

from collections import deque

#: Bump when the row schema or payload layout changes shape.
TIMESERIES_VERSION = 1

#: Ring capacity: at the default 50 000-cycle window this covers 200M
#: cycles of history before old windows are shed, while bounding the
#: payload a cached/wired result can carry.
DEFAULT_WINDOW_CAPACITY = 4096


class WindowSeries:
    """A bounded ring of per-window metric rows.

    Each row is a plain ``dict`` (JSON-friendly: str keys, numeric or
    list values) whose ``"cycle"`` key is the window's *end* boundary.
    When the ring is full the oldest row is shed and ``dropped`` is
    incremented, so consumers can tell a truncated series from a
    complete one.
    """

    __slots__ = ("version", "window_cycles", "capacity", "rows", "dropped")

    def __init__(
        self,
        window_cycles: int,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
    ) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.version = TIMESERIES_VERSION
        self.window_cycles = window_cycles
        self.capacity = capacity
        self.rows: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, row: dict) -> None:
        if len(self.rows) == self.capacity:
            self.dropped += 1
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowSeries(window_cycles={self.window_cycles}, "
            f"rows={len(self.rows)}, dropped={self.dropped})"
        )

    def to_payload(self) -> dict:
        """A JSON-serialisable dict capturing the full series state."""
        return {
            "version": self.version,
            "window_cycles": self.window_cycles,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WindowSeries":
        series = cls(payload["window_cycles"], payload["capacity"])
        series.version = payload["version"]
        series.dropped = payload["dropped"]
        for row in payload["rows"]:
            series.rows.append(dict(row))
        return series

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowSeries):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __hash__(self):  # mutable container
        raise TypeError("WindowSeries is unhashable")


class WindowRecorder:
    """Folds cumulative counters into per-window delta rows.

    ``counters`` names the monotonic fields of ``stats`` to difference
    at each boundary (a :class:`~repro.metrics.registry.MetricSet`'s
    ``counter_names()``). Rows additionally carry the window-end
    cycle, per-window IPC, the CTA occupancy split, and whatever the
    attached extension's ``timeseries_sample`` hook contributes.
    """

    __slots__ = ("series", "counters", "_prev")

    def __init__(
        self,
        window_cycles: int,
        counters: tuple,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
    ) -> None:
        self.series = WindowSeries(window_cycles, capacity)
        self.counters = counters
        self._prev = {name: 0 for name in counters}

    def capture(
        self,
        boundary: int,
        stats,
        active: int,
        inactive: int,
        extra: "dict | None" = None,
    ) -> None:
        prev = self._prev
        row: dict = {
            "cycle": boundary,
            "ipc": 0.0,
            "active": active,
            "inactive": inactive,
        }
        for name in self.counters:
            current = getattr(stats, name)
            row[name] = current - prev[name]
            prev[name] = current
        if "instructions" in row:
            row["ipc"] = row["instructions"] / self.series.window_cycles
        if extra:
            row.update(extra)
        self.series.append(row)
