"""Run options: the knobs of one simulation, as one frozen record.

:func:`repro.gpu.gpu.run_kernel` historically grew one boolean keyword
per feature (``track_loads``, ``keep_objects``, ``timeseries``,
``max_concurrent_ctas``). :class:`RunOptions` consolidates that surface
into a single frozen dataclass shared by three layers:

* :func:`~repro.gpu.gpu.run_kernel` accepts ``options=RunOptions(...)``
  (the old keywords remain as a thin compatibility shim for one
  release);
* :meth:`repro.runner.spec.JobSpec.build` accepts ``options=`` and
  folds the **non-default** fields into the spec's sorted override
  params — exactly the pairs the keywords produced, so content hashes
  (and therefore every cache entry) are unchanged;
* the HTTP job schema (:mod:`repro.service.schema`) carries the same
  fields under the ``"options"`` key, so a JSON job submitted over the
  wire names precisely the knobs an in-process call would.

The module sits below :mod:`repro.config` in the import graph (it
depends on nothing inside the package), so every layer can import it
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional


@dataclass(frozen=True)
class RunOptions:
    """Per-run simulation knobs, independent of app/arch/config.

    Every field default means "off": a default-constructed
    ``RunOptions()`` encodes to an empty override mapping, which keeps
    it invisible to content hashing.
    """

    #: Record per-load reuse/streaming classification (Figs 2-4 inputs).
    track_loads: bool = False
    #: Retain live SM/extension objects on the result instead of
    #: portable snapshots (tests that poke MSHRs need this).
    keep_objects: bool = False
    #: Record per-window :class:`~repro.metrics.WindowSeries` samples.
    timeseries: bool = False
    #: Static CTA-residency cap (SWL-style throttling); ``None`` = off.
    max_concurrent_ctas: Optional[int] = None
    #: Execution backend (``"object"`` | ``"vector"``); ``None`` means
    #: the default backend. Participates in cache identity when set:
    #: results computed by different backends never alias, so a
    #: divergence between engines can always be bisected from cache.
    backend: Optional[str] = None

    def to_overrides(self) -> dict[str, Any]:
        """The non-default fields, as the override/kwarg mapping.

        Only non-defaults are emitted so that
        ``JobSpec.build(options=RunOptions())`` hashes identically to a
        spec built with no overrides at all.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_overrides(
        cls, overrides: Mapping[str, Any]
    ) -> tuple["RunOptions", dict[str, Any]]:
        """Split a mapping into ``(RunOptions, leftover)``.

        Keys that are not ``RunOptions`` fields (e.g. ``lb_config``,
        ``cta_limit``) pass through in ``leftover`` untouched.
        """
        known = {f.name for f in fields(cls)}
        ours = {k: v for k, v in overrides.items() if k in known}
        leftover = {k: v for k, v in overrides.items() if k not in known}
        return cls(**ours), leftover

    def replace(self, **changes: Any) -> "RunOptions":
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


#: Field names of :class:`RunOptions`, for schema validation.
RUN_OPTION_FIELDS = tuple(f.name for f in fields(RunOptions))
