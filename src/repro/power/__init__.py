"""Analytic power/energy model (GPUWattch/CACTI-style accounting)."""

from repro.power.energy import (
    EnergyBreakdown,
    EnergyModel,
    estimate_energy,
    relative_energy,
)

__all__ = ["EnergyBreakdown", "EnergyModel", "estimate_energy", "relative_energy"]
