"""GPU power and energy model (GPUWattch/CACTI-style accounting).

The paper evaluates energy with GPUWattch plus CACTI estimates for the
new Linebacker structures (Table 3: CTA manager 1.94 pJ, HPC field
0.09 pJ, LM 0.32 pJ, VTT 2.05 pJ per access). We reproduce the same
accounting structure analytically:

    energy = static_power x execution_time
           + sum(per-event dynamic energies)

Per-event energies for the baseline structures are representative
values from the GPGPU power literature (register file read/write, L1
and L2 accesses, DRAM per-line transfer); what Figure 18 measures is
*relative* energy versus the baseline, which is dominated by the
execution-time reduction and the DRAM traffic reduction — both of
which come from the simulator, not from the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.gpu import SimulationResult

PJ = 1e-12


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (joules) and static power (watts)."""

    # Baseline structures.
    alu_op: float = 25.0 * PJ
    rf_access: float = 6.0 * PJ
    l1_access: float = 30.0 * PJ
    l2_access: float = 80.0 * PJ
    dram_line: float = 2000.0 * PJ      # per 128-byte line transfer
    static_power_per_sm: float = 1.2    # watts

    # Linebacker structures (paper Table 3).
    cta_manager_access: float = 1.94 * PJ
    hpc_access: float = 0.09 * PJ
    lm_access: float = 0.32 * PJ
    vtt_access: float = 2.05 * PJ

    clock_hz: float = 1126e6


@dataclass
class EnergyBreakdown:
    """Energy per component for one simulation (joules)."""

    static: float = 0.0
    alu: float = 0.0
    register_file: float = 0.0
    l1: float = 0.0
    l2: float = 0.0
    dram: float = 0.0
    linebacker: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.static + self.alu + self.register_file
            + self.l1 + self.l2 + self.dram + self.linebacker
        )


def estimate_energy(
    result: SimulationResult,
    model: EnergyModel | None = None,
    num_sms: int | None = None,
) -> EnergyBreakdown:
    """Post-process a simulation result into an energy estimate."""
    m = model or EnergyModel()
    sms = num_sms if num_sms is not None else len(result.sm_stats)
    out = EnergyBreakdown()

    seconds = result.cycles / m.clock_hz
    out.static = m.static_power_per_sm * sms * seconds

    instructions = result.instructions
    loads = sum(s.loads for s in result.sm_stats)
    stores = sum(s.stores for s in result.sm_stats)
    out.alu = (instructions - loads - stores) * m.alu_op

    rf_ops = sum(rf.reads + rf.writes for rf in result.rf_stats)
    out.register_file = rf_ops * m.rf_access

    l1_accesses = sum(c.accesses for c in result.l1_stats)
    out.l1 = l1_accesses * m.l1_access
    out.l2 = result.traffic.total_lines * m.l2_access
    out.dram = (result.dram_reads + result.dram_writes) * m.dram_line

    # Linebacker structure energy, when the run used it.
    lb_energy = 0.0
    for ext in result.extensions:
        vtt = getattr(ext, "vtt", None)
        if vtt is not None:
            lb_energy += (vtt.stats.lookups + vtt.stats.inserts) * m.vtt_access
        lm = getattr(ext, "load_monitor", None)
        if lm is not None:
            accesses = sum(e.hits + e.misses for e in lm.entries)
            lb_energy += accesses * m.lm_access
        stats = getattr(ext, "stats", None)
        if stats is not None and hasattr(stats, "throttle_events"):
            events = stats.throttle_events + stats.reactivate_events
            lb_energy += events * m.cta_manager_access
    out.linebacker = lb_energy
    return out


def relative_energy(result: SimulationResult, baseline: SimulationResult) -> float:
    """Energy of ``result`` normalized to ``baseline`` (Figure 18)."""
    return estimate_energy(result).total / max(1e-30, estimate_energy(baseline).total)
