"""repro.runner — parallel experiment engine with a persistent cache.

The runner expresses every simulation as a picklable, content-hashed
:class:`JobSpec`, fans jobs out over a process pool (falling back to
in-process execution), and memoizes portable results both in-process
and on disk (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``). The
string-keyed :data:`ARCHITECTURES` registry is the API every consumer
(figure runners, CLI, benchmarks) uses to name a simulation.
"""

from repro.runner.cache import (
    CACHE_SCHEMA_VERSION,
    CacheInfo,
    MISS,
    ResultCache,
    cache_salt,
    code_salt,
    default_cache_dir,
)
from repro.runner.engine import (
    ExperimentRunner,
    JobRecord,
    RunnerStats,
    default_workers,
    execute_job,
)
from repro.runner.registry import ARCHITECTURES, ArchSpec, register, resolve
from repro.runner.snapshot import (
    ExtensionSnapshot,
    L1Snapshot,
    SMSnapshot,
    portable,
    portable_best_swl,
    portable_result,
)
from repro.runner.spec import JobSpec

__all__ = [
    "ARCHITECTURES",
    "ArchSpec",
    "CACHE_SCHEMA_VERSION",
    "CacheInfo",
    "ExperimentRunner",
    "ExtensionSnapshot",
    "JobRecord",
    "JobSpec",
    "L1Snapshot",
    "MISS",
    "ResultCache",
    "RunnerStats",
    "SMSnapshot",
    "cache_salt",
    "code_salt",
    "default_cache_dir",
    "default_workers",
    "execute_job",
    "portable",
    "portable_best_swl",
    "portable_result",
    "register",
    "resolve",
]
