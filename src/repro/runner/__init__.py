"""repro.runner — parallel experiment engine with a persistent cache.

The runner expresses every simulation as a picklable, content-hashed
:class:`JobSpec`, executes it through a pluggable
:class:`~repro.runner.executors.Executor` (in-process, process pool,
wire-protocol loopback, or worker subprocesses that can sit on other
hosts), and memoizes portable results both in-process and on disk
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) through a pluggable
:class:`CacheBackend`. The string-keyed :data:`ARCHITECTURES` registry
is the API every consumer (figure runners, CLI, benchmarks) uses to
name a simulation.
"""

from repro.runner.cache import (
    CACHE_SCHEMA_VERSION,
    CacheBackend,
    CacheInfo,
    DirectoryBackend,
    MISS,
    ResultCache,
    SharedDirectoryBackend,
    cache_salt,
    code_salt,
    default_cache_dir,
)
from repro.runner.engine import (
    ExperimentRunner,
    JobRecord,
    RunnerStats,
    default_executor,
    default_workers,
    execute_job,
)
from repro.runner.executors import (
    EXECUTOR_NAMES,
    Executor,
    ExecutorUnavailable,
    InlineExecutor,
    JobOutcome,
    LoopbackExecutor,
    PoolExecutor,
    RemoteExecutor,
    RemoteJobError,
    build_executor,
)
from repro.runner.registry import ARCHITECTURES, ArchSpec, register, resolve
from repro.runner.snapshot import (
    ExtensionSnapshot,
    L1Snapshot,
    SMSnapshot,
    portable,
    portable_best_swl,
    portable_result,
)
from repro.options import RunOptions
from repro.runner.spec import JobSpec
from repro.runner.wire import (
    PROTOCOL_VERSION,
    ProtocolMismatch,
    WireError,
    WireResult,
)

__all__ = [
    "ARCHITECTURES",
    "ArchSpec",
    "CACHE_SCHEMA_VERSION",
    "CacheBackend",
    "CacheInfo",
    "DirectoryBackend",
    "EXECUTOR_NAMES",
    "Executor",
    "ExecutorUnavailable",
    "ExperimentRunner",
    "ExtensionSnapshot",
    "InlineExecutor",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "L1Snapshot",
    "LoopbackExecutor",
    "MISS",
    "PROTOCOL_VERSION",
    "PoolExecutor",
    "ProtocolMismatch",
    "RemoteExecutor",
    "RemoteJobError",
    "ResultCache",
    "RunOptions",
    "RunnerStats",
    "SMSnapshot",
    "SharedDirectoryBackend",
    "WireError",
    "WireResult",
    "build_executor",
    "cache_salt",
    "code_salt",
    "default_cache_dir",
    "default_executor",
    "default_workers",
    "execute_job",
    "portable",
    "portable_best_swl",
    "portable_result",
    "register",
    "resolve",
]
