"""Persistent on-disk result cache for the experiment runner.

Layout: one pickle per job under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``), named ``<key>.pkl`` inside a two-character fan-out
directory. The key is ``stable_hash(spec)`` salted with a cache schema
version and the package version, so

* re-running an identical figure is a pure cache read (near-instant),
* any config/app/arch/scale change — however deep — misses, and
* payload-format changes are invalidated by bumping
  :data:`CACHE_SCHEMA_VERSION` (documented in DESIGN.md).

Writes are atomic (temp file + ``os.replace``), so concurrent workers
or interrupted runs can never leave a half-written entry behind.
Unreadable or mismatched entries are treated as misses and deleted —
the caller falls back to re-simulation, never crashes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import repro
from repro.config import stable_hash

#: Bump when the cached payload format changes (snapshot classes,
#: pickled structure, ...). Old entries then miss and are re-simulated.
CACHE_SCHEMA_VERSION = 1

#: Sentinel distinguishing "entry absent" from a cached ``None``.
MISS = object()


_code_salt: "str | None" = None


def code_salt() -> str:
    """Digest of the installed ``repro`` sources.

    Simulator behaviour changes between commits without a version
    bump; folding the actual source bytes into the cache key means any
    code edit invalidates every prior entry instead of silently
    serving results from an older simulator. Computed once per process
    (~40 small files).
    """
    global _code_salt
    if _code_salt is None:
        digest = hashlib.sha256()
        pkg_root = Path(repro.__file__).resolve().parent
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            try:
                digest.update(path.read_bytes())
            except OSError:
                pass
        _code_salt = digest.hexdigest()
    return _code_salt


def cache_salt() -> str:
    """The invalidation salt folded into every cache key."""
    extra = os.environ.get("REPRO_CACHE_SALT", "")
    return (
        f"repro-cache-v{CACHE_SCHEMA_VERSION}:{repro.__version__}:"
        f"{code_salt()}:{extra}"
    )


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


@dataclass
class CacheInfo:
    root: Path
    entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed pickle store for portable simulation results."""

    def __init__(self, root: "Path | str | None" = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self._salt = cache_salt()

    def key_for(self, spec) -> str:
        return stable_hash(self._salt, spec)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- lookup ----------------------------------------------------------
    def get(self, key: str) -> Any:
        """The cached payload for ``key``, or :data:`MISS`.

        Any failure mode — missing file, truncated pickle, foreign
        schema, classes that no longer unpickle — degrades to a miss;
        corrupted entries are deleted so they are rewritten cleanly.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            return MISS
        except Exception:
            self._discard(path)
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
            or "payload" not in entry
        ):
            self._discard(path)
            return MISS
        return entry["payload"]

    def put(self, key: str, payload: Any) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA_VERSION, "key": key, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- maintenance -----------------------------------------------------
    def _entry_paths(self):
        if not self.root.is_dir():
            return
        yield from self.root.glob("??/*.pkl")

    def info(self) -> CacheInfo:
        entries = 0
        total = 0
        for path in self._entry_paths():
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheInfo(root=self.root, entries=entries, total_bytes=total)

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
