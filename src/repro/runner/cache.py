"""Persistent result cache: pickled entries over pluggable backends.

:class:`ResultCache` owns the *semantics* — key derivation
(``stable_hash(salt, spec)``), the entry envelope (schema version +
key echo + payload), and the corruption contract (anything unreadable
degrades to a miss and is discarded, never served). *Storage* is a
:class:`CacheBackend`:

* :class:`DirectoryBackend` — the historical layout: one pickle per
  job under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), named
  ``<key>.pkl`` inside a two-character fan-out directory, written
  atomically (temp file + ``os.replace``) so an interrupted writer can
  never leave a half-written entry behind.
* :class:`SharedDirectoryBackend` — the same layout hardened for
  *many concurrent writers on a shared (e.g. network) filesystem*: an
  advisory per-key ``flock`` serializes writers, and a read-through
  check under the lock makes the first completed write win — later
  writers of the same key (which, for a deterministic simulator,
  carry an identical payload) skip their write instead of churning
  the file underneath readers. On platforms without ``fcntl`` the
  lock degrades to plain atomic-replace semantics.

The key is salted with a cache schema version, the package version and
a digest of the installed sources, so

* re-running an identical figure is a pure cache read (near-instant),
* any config/app/arch/scale change — however deep — misses, and
* payload-format changes are invalidated by bumping
  :data:`CACHE_SCHEMA_VERSION` (documented in DESIGN.md).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional

import repro
from repro.config import stable_hash

#: Bump when the cached payload format changes (snapshot classes,
#: pickled structure, ...). Old entries then miss and are re-simulated.
#: v2: SMSnapshot grew a ``timeseries`` field (opt-in WindowSeries
#: payload recorded at window boundaries).
#: v3: JobSpec grew a ``workload`` field (declarative workload specs
#: as first-class apps), which changes every content-hash key.
CACHE_SCHEMA_VERSION = 3

#: Sentinel distinguishing "entry absent" from a cached ``None``.
MISS = object()


_code_salt: "str | None" = None


def code_salt() -> str:
    """Digest of the installed ``repro`` sources.

    Simulator behaviour changes between commits without a version
    bump; folding the actual source bytes into the cache key means any
    code edit invalidates every prior entry instead of silently
    serving results from an older simulator. Computed once per process
    (~40 small files).
    """
    global _code_salt
    if _code_salt is None:
        digest = hashlib.sha256()
        pkg_root = Path(repro.__file__).resolve().parent
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            try:
                digest.update(path.read_bytes())
            except OSError:
                pass
        _code_salt = digest.hexdigest()
    return _code_salt


def cache_salt() -> str:
    """The invalidation salt folded into every cache key."""
    extra = os.environ.get("REPRO_CACHE_SALT", "")
    return (
        f"repro-cache-v{CACHE_SCHEMA_VERSION}:{repro.__version__}:"
        f"{code_salt()}:{extra}"
    )


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------
class CacheBackend:
    """Raw entry-byte storage contract behind :class:`ResultCache`.

    A backend maps keys to opaque byte blobs. It must guarantee that
    :meth:`read` never observes a torn write (it may return garbage if
    the *medium* corrupts data — the front-end's envelope check covers
    that) and that :meth:`write`/:meth:`discard` failures surface as
    exceptions rather than silent data loss.
    """

    root: Path

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def read(self, key: str) -> "bytes | None":
        """The stored bytes for ``key``, or ``None`` when absent."""
        raise NotImplementedError

    def write(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def discard(self, key: str) -> None:
        """Best-effort removal; never raises for a missing entry."""
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from self.root.glob("??/*.pkl")


class DirectoryBackend(CacheBackend):
    """One file per entry, atomic replace, single-writer-friendly."""

    def __init__(self, root: "Path | str | None" = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()

    def read(self, key: str) -> "bytes | None":
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            return None

    def write(self, key: str, data: bytes) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class SharedDirectoryBackend(DirectoryBackend):
    """Advisory-lock variant for concurrent writers on one directory.

    Writers take an exclusive ``flock`` on ``<key>.lock`` next to the
    entry, then re-check existence *under the lock* (read-through):
    if another writer already landed the key, this write is skipped —
    first writer wins and the entry file is only ever replaced when
    absent. Readers stay lock-free; atomic replace guarantees they
    see a complete entry or none.
    """

    @contextmanager
    def _locked(self, key: str):
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_suffix(".lock")
        try:
            import fcntl
        except ImportError:  # non-POSIX: degrade to lockless atomic replace
            yield
            return
        with open(lock_path, "a+b") as lock_fh:
            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh.fileno(), fcntl.LOCK_UN)

    def write(self, key: str, data: bytes) -> None:
        with self._locked(key):
            if self.path_for(key).exists():
                return  # first writer won; identical payload by determinism
            super().write(key, data)

    def discard(self, key: str) -> None:
        super().discard(key)
        try:
            self.path_for(key).with_suffix(".lock").unlink()
        except OSError:
            pass


@dataclass
class CacheInfo:
    root: Path
    entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed pickle store for portable simulation results."""

    def __init__(
        self,
        root: "Path | str | None" = None,
        backend: Optional[CacheBackend] = None,
    ) -> None:
        if backend is not None and root is not None:
            raise ValueError("pass either root or backend, not both")
        self.backend = backend if backend is not None else DirectoryBackend(root)
        self.root = self.backend.root
        self._salt = cache_salt()

    def key_for(self, spec) -> str:
        return stable_hash(self._salt, spec)

    def path_for(self, key: str) -> Path:
        return self.backend.path_for(key)

    # -- lookup ----------------------------------------------------------
    def get(self, key: str) -> Any:
        """The cached payload for ``key``, or :data:`MISS`.

        Any failure mode — missing file, truncated pickle, foreign
        schema, classes that no longer unpickle — degrades to a miss;
        corrupted entries are deleted so they are rewritten cleanly.
        """
        try:
            data = self.backend.read(key)
        except Exception:
            return MISS
        if data is None:
            return MISS
        try:
            entry = pickle.loads(data)
        except Exception:
            self.backend.discard(key)
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
            or "payload" not in entry
        ):
            self.backend.discard(key)
            return MISS
        return entry["payload"]

    def put(self, key: str, payload: Any) -> None:
        entry = {"schema": CACHE_SCHEMA_VERSION, "key": key, "payload": payload}
        self.backend.write(
            key, pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        )

    # -- maintenance -----------------------------------------------------
    def info(self) -> CacheInfo:
        entries = 0
        total = 0
        for path in self.backend.entry_paths():
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheInfo(root=self.root, entries=entries, total_bytes=total)

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in list(self.backend.entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
