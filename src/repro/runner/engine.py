"""The parallel experiment-execution engine.

:class:`ExperimentRunner` turns content-hashed
:class:`~repro.runner.spec.JobSpec`\\ s into portable results through
three layers, cheapest first:

1. an **in-process memo** (same object returned for the same spec —
   the identity guarantee the old ``ExperimentContext._memo`` gave),
2. the **persistent on-disk cache** (survives process restarts; a warm
   figure rerun is almost pure unpickling), and
3. **execution** — in-process when ``workers == 1``, fanned out over a
   ``ProcessPoolExecutor`` otherwise, with graceful degradation to
   in-process execution if the pool cannot be used (broken pool,
   unpicklable spec, sandboxed environment without semaphores, ...).

Every execution is timed and counted in :class:`RunnerStats` so the
CLI and benchmarks can report per-job wall-clock and hit ratios.

Simulations are deterministic given ``config.seed``, so serial,
parallel and cached executions of the same spec produce identical
statistics — the engine only changes *where and when* a job runs.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.runner.cache import MISS, ResultCache
from repro.runner.registry import resolve
from repro.runner.snapshot import portable
from repro.runner.spec import JobSpec
from repro.workloads.suite import kernel_for


def default_workers() -> int:
    """Worker-count default: ``$REPRO_WORKERS`` or 1 (in-process)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


def execute_job(spec: JobSpec) -> tuple[Any, float]:
    """Run one job to completion; the process-pool entry point.

    Rebuilds the kernel trace from (app, scale) and resolves the
    architecture runner by name, so only the plain-data spec ever
    crosses a process boundary. Returns ``(portable payload, seconds)``.
    """
    started = time.perf_counter()
    arch = resolve(spec.arch)
    kernel = kernel_for(spec.app, spec.scale)
    value = arch.runner(spec.config, kernel, **spec.overrides)
    return portable(value), time.perf_counter() - started


@dataclass
class JobRecord:
    """Timing/provenance of one resolved job."""

    label: str
    key: str
    seconds: float
    source: str  # "run" | "cache" | "memo"


@dataclass
class RunnerStats:
    """Observability counters for one runner's lifetime."""

    simulated: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    pool_fallbacks: int = 0
    sim_seconds: float = 0.0
    records: list[JobRecord] = field(default_factory=list)

    def record(self, spec: JobSpec, seconds: float, source: str) -> None:
        self.records.append(
            JobRecord(label=spec.label, key=spec.key, seconds=seconds, source=source)
        )
        if source == "run":
            self.simulated += 1
            self.sim_seconds += seconds
        elif source == "cache":
            self.cache_hits += 1
        else:
            self.memo_hits += 1

    def summary(self) -> str:
        return (
            f"{self.simulated} simulated ({self.sim_seconds:.1f}s), "
            f"{self.cache_hits} cache hits, {self.memo_hits} memo hits"
        )


class ExperimentRunner:
    """Fan-out + memoization front-end for experiment jobs.

    Parameters
    ----------
    workers:
        Process count for fan-out; ``None`` reads ``$REPRO_WORKERS``
        (default 1 = run in-process, no pool).
    cache:
        A :class:`ResultCache`, or ``None`` for the default directory.
    use_cache:
        Disable the persistent layer entirely with ``False`` (the
        in-process memo always stays on). ``None`` honours
        ``$REPRO_NO_CACHE``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        use_cache: Optional[bool] = None,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        if use_cache is None:
            use_cache = not os.environ.get("REPRO_NO_CACHE")
        self.cache = (cache or ResultCache()) if use_cache else None
        self.stats = RunnerStats()
        self._memo: dict[str, Any] = {}

    # -- public API ------------------------------------------------------
    def run(self, spec: JobSpec) -> Any:
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[JobSpec]) -> list[Any]:
        """Resolve every spec, exploiting memo, cache and parallelism.

        Duplicate specs are coalesced; results come back in input
        order. Repeated calls with a spec return the *same object*
        (in-process memo), preserving the old context's identity
        semantics.
        """
        specs = list(specs)
        pending: dict[str, JobSpec] = {}
        for spec in specs:
            key = spec.key
            if key in self._memo:
                self.stats.record(spec, 0.0, "memo")
            elif key not in pending and not self._load_cached(spec, key):
                pending[key] = spec
        if pending:
            self._execute(pending)
        return [self._memo[spec.key] for spec in specs]

    # -- internals -------------------------------------------------------
    def _load_cached(self, spec: JobSpec, key: str) -> bool:
        if self.cache is None:
            return False
        payload = self.cache.get(self.cache.key_for(spec))
        if payload is MISS:
            return False
        self._memo[key] = payload
        self.stats.record(spec, 0.0, "cache")
        return True

    def _store(self, spec: JobSpec, key: str, payload: Any, seconds: float) -> None:
        self._memo[key] = payload
        self.stats.record(spec, seconds, "run")
        if self.cache is not None:
            try:
                self.cache.put(self.cache.key_for(spec), payload)
            except Exception as exc:  # cache write failure is never fatal
                warnings.warn(f"result cache write failed: {exc}", RuntimeWarning)

    def _execute(self, pending: dict[str, JobSpec]) -> None:
        if self.workers > 1 and len(pending) > 1:
            remaining = self._execute_pool(pending)
        else:
            remaining = pending
        for key, spec in remaining.items():
            payload, seconds = execute_job(spec)
            self._store(spec, key, payload, seconds)

    def _execute_pool(self, pending: dict[str, JobSpec]) -> dict[str, JobSpec]:
        """Fan pending jobs out over a process pool.

        Returns the jobs that still need in-process execution (all of
        them when the pool cannot be created, the unfinished tail when
        it breaks mid-flight). Job-level simulation errors propagate
        unchanged — only *pool infrastructure* failures degrade.
        """
        import concurrent.futures as cf
        import pickle

        remaining = dict(pending)
        try:
            with cf.ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {
                    pool.submit(execute_job, spec): (key, spec)
                    for key, spec in pending.items()
                }
                for future in cf.as_completed(futures):
                    key, spec = futures[future]
                    payload, seconds = future.result()
                    self._store(spec, key, payload, seconds)
                    del remaining[key]
        except cf.process.BrokenProcessPool:
            self.stats.pool_fallbacks += 1
            warnings.warn(
                "process pool died; finishing jobs in-process", RuntimeWarning
            )
        except (OSError, ValueError, ImportError, pickle.PicklingError) as exc:
            # No /dev/shm, sandboxed semaphores, fork unavailable, ...
            self.stats.pool_fallbacks += 1
            warnings.warn(
                f"process pool unavailable ({exc}); running in-process",
                RuntimeWarning,
            )
        return remaining
