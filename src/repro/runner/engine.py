"""The parallel experiment-execution engine.

:class:`ExperimentRunner` turns content-hashed
:class:`~repro.runner.spec.JobSpec`\\ s into portable results through
three layers, cheapest first:

1. an **in-process memo** (same object returned for the same spec —
   the identity guarantee the old ``ExperimentContext._memo`` gave),
2. the **persistent on-disk cache** (survives process restarts; a warm
   figure rerun is almost pure unpickling), and
3. **execution** through a pluggable
   :class:`~repro.runner.executors.Executor` — in-process (inline),
   fanned out over a ``ProcessPoolExecutor`` (pool), shipped to worker
   subprocesses over the wire protocol (remote), or round-tripped
   through that protocol in-process (loopback). Infrastructure
   failures at any executor — a broken pool, a dead worker after its
   retry budget, an unlaunchable worker command — degrade to
   in-process execution; job-level simulation errors propagate.

Every execution is timed and counted in :class:`RunnerStats` so the
CLI and benchmarks can report per-job wall-clock, hit ratios and
distributed-execution health (dispatched / retried / requeued /
worker deaths).

Simulations are deterministic given ``config.seed``, so serial,
parallel, remote and cached executions of the same spec produce
identical statistics — the engine only changes *where and when* a job
runs.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.runner.cache import MISS, ResultCache
from repro.runner.executors import (
    DEFAULT_MAX_ATTEMPTS,
    EXECUTOR_NAMES,
    Executor,
    ExecutorUnavailable,
    RemoteJobError,
    build_executor,
)
from repro.runner.registry import resolve
from repro.runner.snapshot import portable
from repro.runner.spec import JobSpec
from repro.workloads.suite import kernel_for


def default_workers() -> int:
    """Worker-count default: ``$REPRO_WORKERS`` or 1 (in-process)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


def default_executor() -> Optional[str]:
    """Executor default: ``$REPRO_EXECUTOR`` or ``None`` (auto).

    ``None`` preserves the historical behaviour: a process pool when
    ``workers > 1`` and more than one job is pending, in-process
    otherwise.
    """
    name = os.environ.get("REPRO_EXECUTOR", "").strip()
    return name or None


def execute_job(spec: JobSpec) -> tuple[Any, float]:
    """Run one job to completion; the worker-side entry point.

    Rebuilds the kernel trace from (app, scale) and resolves the
    architecture runner by name, so only the plain-data spec ever
    crosses a process boundary. Returns ``(portable payload, seconds)``.
    """
    started = time.perf_counter()
    arch = resolve(spec.arch)
    if spec.workload is not None:
        from repro.workloads.spec import build_workload

        kernel = build_workload(spec.workload, spec.scale)
    else:
        kernel = kernel_for(spec.app, spec.scale)
    value = arch.runner(spec.config, kernel, **spec.overrides)
    return portable(value), time.perf_counter() - started


@dataclass
class JobRecord:
    """Timing/provenance of one resolved job."""

    label: str
    key: str
    seconds: float
    source: str  # "run" | "cache" | "memo" | "coalesced"


@dataclass
class RunnerStats:
    """Observability counters for one runner's lifetime."""

    simulated: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    coalesced: int = 0
    pool_fallbacks: int = 0
    sim_seconds: float = 0.0
    # Executor-path counters: jobs handed to an executor, redispatches
    # after an infrastructure fault, jobs put back on the backlog, and
    # worker subprocesses declared dead (crash, timeout, garbage).
    dispatched: int = 0
    retried: int = 0
    requeued: int = 0
    worker_deaths: int = 0
    records: list[JobRecord] = field(default_factory=list)

    def record(self, spec: JobSpec, seconds: float, source: str) -> None:
        self.records.append(
            JobRecord(label=spec.label, key=spec.key, seconds=seconds, source=source)
        )
        if source == "run":
            self.simulated += 1
            self.sim_seconds += seconds
        elif source == "cache":
            self.cache_hits += 1
        elif source == "coalesced":
            self.coalesced += 1
        else:
            self.memo_hits += 1

    def summary(self) -> str:
        base = (
            f"{self.simulated} simulated ({self.sim_seconds:.1f}s), "
            f"{self.cache_hits} cache hits, {self.memo_hits} memo hits"
        )
        if self.dispatched:
            base += (
                f"; {self.dispatched} dispatched, {self.retried} retried, "
                f"{self.requeued} requeued, {self.worker_deaths} worker deaths"
            )
        return base

    def to_dict(self, include_records: bool = True) -> dict:
        """JSON-ready report (the CI artifact / ``--stats-report``)."""
        report = {
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "memo_hits": self.memo_hits,
            "coalesced": self.coalesced,
            "pool_fallbacks": self.pool_fallbacks,
            "sim_seconds": self.sim_seconds,
            "dispatched": self.dispatched,
            "retried": self.retried,
            "requeued": self.requeued,
            "worker_deaths": self.worker_deaths,
        }
        if include_records:
            report["records"] = [
                {
                    "label": r.label,
                    "key": r.key,
                    "seconds": r.seconds,
                    "source": r.source,
                }
                for r in self.records
            ]
        return report


class ExperimentRunner:
    """Fan-out + memoization front-end for experiment jobs.

    Parameters
    ----------
    workers:
        Process count for fan-out; ``None`` reads ``$REPRO_WORKERS``
        (default 1 = run in-process, no pool).
    cache:
        A :class:`ResultCache`, or ``None`` for the default directory.
    use_cache:
        Disable the persistent layer entirely with ``False`` (the
        in-process memo always stays on). ``None`` honours
        ``$REPRO_NO_CACHE``.
    executor:
        ``"inline" | "pool" | "remote" | "loopback"``, an
        :class:`~repro.runner.executors.Executor` instance, or ``None``
        for the historical auto choice (pool iff ``workers > 1`` and
        more than one job is pending). ``None`` honours
        ``$REPRO_EXECUTOR``.
    hosts / worker_command / job_timeout / max_attempts / backoff:
        Remote-executor tuning; see
        :class:`~repro.runner.executors.RemoteExecutor`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        use_cache: Optional[bool] = None,
        executor: Union[str, Executor, None] = None,
        hosts: Optional[list] = None,
        worker_command: Optional[str] = None,
        job_timeout: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = 0.1,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        if use_cache is None:
            use_cache = not os.environ.get("REPRO_NO_CACHE")
        self.cache = (cache or ResultCache()) if use_cache else None
        self.executor = executor if executor is not None else default_executor()
        if isinstance(self.executor, str) and self.executor not in EXECUTOR_NAMES:
            known = ", ".join(EXECUTOR_NAMES)
            raise ValueError(
                f"unknown executor {self.executor!r}; known: {known}"
            )
        self.hosts = hosts
        self.worker_command = worker_command
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.stats = RunnerStats()
        self._memo: dict[str, Any] = {}

    # -- public API ------------------------------------------------------
    def run(self, spec: JobSpec) -> Any:
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[JobSpec]) -> list[Any]:
        """Resolve every spec, exploiting memo, cache and parallelism.

        Duplicate specs are coalesced; results come back in input
        order. Repeated calls with a spec return the *same object*
        (in-process memo), preserving the old context's identity
        semantics. Every input spec gets exactly one
        :class:`JobRecord` — duplicates coalesced within one batch are
        recorded with source ``"coalesced"``.
        """
        specs = list(specs)
        pending: dict[str, JobSpec] = {}
        for spec in specs:
            key = spec.key
            if key in self._memo:
                self.stats.record(spec, 0.0, "memo")
            elif key in pending:
                self.stats.record(spec, 0.0, "coalesced")
            elif not self._load_cached(spec, key):
                pending[key] = spec
        if pending:
            self._execute(pending)
        return [self._memo[spec.key] for spec in specs]

    # -- internals -------------------------------------------------------
    def _load_cached(self, spec: JobSpec, key: str) -> bool:
        if self.cache is None:
            return False
        payload = self.cache.get(self.cache.key_for(spec))
        if payload is MISS:
            return False
        self._memo[key] = payload
        self.stats.record(spec, 0.0, "cache")
        return True

    def _store(self, spec: JobSpec, key: str, payload: Any, seconds: float) -> None:
        self._memo[key] = payload
        self.stats.record(spec, seconds, "run")
        if self.cache is not None:
            try:
                self.cache.put(self.cache.key_for(spec), payload)
            except Exception as exc:  # cache write failure is never fatal
                warnings.warn(f"result cache write failed: {exc}", RuntimeWarning)

    def _make_executor(self, n_pending: int) -> Optional[Executor]:
        """Build the executor for this batch; ``None`` means inline.

        The auto choice (``executor=None``) reproduces the historical
        engine exactly: a process pool only when it can actually help.
        """
        choice = self.executor
        if choice is None:
            if self.workers > 1 and n_pending > 1:
                choice = "pool"
            else:
                return None
        if not isinstance(choice, str):
            return choice  # a pre-built Executor instance
        if choice == "inline":
            return None
        return build_executor(
            choice,
            workers=self.workers,
            hosts=self.hosts,
            command=self.worker_command,
            job_timeout=self.job_timeout,
            max_attempts=self.max_attempts,
            backoff=self.backoff,
            stats=self.stats,
        )

    def _execute(self, pending: dict[str, JobSpec]) -> None:
        executor = self._make_executor(len(pending))
        remaining = pending if executor is None else self._drive(executor, pending)
        for key, spec in remaining.items():
            payload, seconds = execute_job(spec)
            self._store(spec, key, payload, seconds)

    def _drive(
        self, executor: Executor, pending: dict[str, JobSpec]
    ) -> dict[str, JobSpec]:
        """Run pending jobs through an executor.

        Returns the jobs that still need in-process execution: all of
        them when the executor infrastructure is unavailable, the
        retry-exhausted stragglers otherwise. Job-level simulation
        errors propagate (as :class:`RemoteJobError` when the failure
        happened on the other side of the wire).
        """
        remaining = dict(pending)
        name = getattr(executor, "name", type(executor).__name__)
        try:
            try:
                for key, spec in pending.items():
                    executor.submit(key, spec)
                    self.stats.dispatched += 1
                finished = 0
                while finished < len(pending):
                    for outcome in executor.poll():
                        finished += 1
                        spec = pending[outcome.key]
                        if outcome.ok:
                            self._store(
                                spec, outcome.key, outcome.payload, outcome.seconds
                            )
                            del remaining[outcome.key]
                        elif outcome.give_up:
                            warnings.warn(
                                f"{spec.label}: {name} execution gave up "
                                f"({outcome.error}); running in-process",
                                RuntimeWarning,
                            )
                        else:
                            raise RemoteJobError(
                                f"{spec.label} failed on the {name} executor:\n"
                                f"{outcome.error}"
                            )
            except ExecutorUnavailable as exc:
                self.stats.pool_fallbacks += 1
                warnings.warn(
                    f"{name} executor unavailable ({exc}); "
                    "finishing jobs in-process",
                    RuntimeWarning,
                )
        finally:
            executor.shutdown()
        return remaining
