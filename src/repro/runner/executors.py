"""Pluggable job executors: *where* a simulation runs.

The engine resolves every :class:`~repro.runner.spec.JobSpec` through
its memo and the persistent cache; whatever survives is handed to an
**executor** behind a three-method protocol:

* ``submit(key, spec)`` — enqueue one job,
* ``poll()``            — block until progress, return finished
  :class:`JobOutcome`\\ s (possibly none, when the call only advanced
  internal state such as a respawn),
* ``shutdown()``        — release workers/pools; idempotent.

Four implementations cover the deployment spectrum:

=================  ========================================================
``InlineExecutor``   runs jobs on ``poll()`` in the calling process — the
                     zero-infrastructure reference semantics.
``PoolExecutor``     the historical ``ProcessPoolExecutor`` fan-out.
``LoopbackExecutor`` round-trips every spec through the full wire
                     protocol (encode → decode → execute → encode →
                     decode) *in-process*: every byte that would cross a
                     network crosses a string, deterministically, which
                     is what makes protocol faults unit-testable.
``RemoteExecutor``   one worker subprocess per host entry, launched from
                     a command template (``{python} -u -m repro worker``
                     by default; set ``ssh {host} python -m repro
                     worker`` for real remote hosts) and fed over
                     line-delimited stdin/stdout.
=================  ========================================================

Failure semantics are uniform and deliberate:

* a **simulation error** (the job itself raised) is final — it comes
  back as ``JobOutcome(ok=False, error=...)`` and the engine re-raises,
  because deterministic failures do not heal on retry;
* an **infrastructure fault** (worker death, response timeout, a
  corrupted wire line) requeues the job with bounded retries and
  linear backoff; a job that exhausts its attempts is returned with
  ``give_up=True`` and the engine finishes it in-process;
* a **dead executor** (nothing can run at all: unlaunchable command,
  no spawn budget left, broken pool) raises
  :class:`ExecutorUnavailable` and the engine degrades to in-process
  execution for everything still pending — the same graceful path the
  pool has always had.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.runner.spec import JobSpec
from repro.runner.wire import (
    WireError,
    decode_hello,
    decode_job,
    decode_result,
    encode_error,
    encode_job,
    encode_result,
)

#: Executor names accepted by the engine and the CLI.
EXECUTOR_NAMES = ("inline", "pool", "remote", "loopback")

#: Default per-job redispatch budget for wire-level executors.
DEFAULT_MAX_ATTEMPTS = 3


class ExecutorUnavailable(RuntimeError):
    """The executor cannot run anything; degrade to in-process."""


class RemoteJobError(RuntimeError):
    """A job raised inside a worker; carries the remote traceback."""


@dataclass
class JobOutcome:
    """One finished job as reported by an executor."""

    key: str
    ok: bool
    payload: Any = None
    seconds: float = 0.0
    error: str = ""
    #: True when infrastructure retries were exhausted: the engine
    #: should run this job in-process rather than raise.
    give_up: bool = False


@runtime_checkable
class Executor(Protocol):
    """The pluggable "where does a job run" surface."""

    name: str

    def submit(self, key: str, spec: JobSpec) -> None: ...

    def poll(self) -> "list[JobOutcome]": ...

    def shutdown(self) -> None: ...


class _NullCounters:
    """Stats sink used when an executor runs without a RunnerStats."""

    retried = 0
    requeued = 0
    worker_deaths = 0


# ---------------------------------------------------------------------------
# Inline
# ---------------------------------------------------------------------------
class InlineExecutor:
    """Run each job in the calling process, one per ``poll()``."""

    name = "inline"

    def __init__(self) -> None:
        self._queue: deque[tuple[str, JobSpec]] = deque()

    def submit(self, key: str, spec: JobSpec) -> None:
        self._queue.append((key, spec))

    def poll(self) -> list[JobOutcome]:
        from repro.runner.engine import execute_job

        if not self._queue:
            return []
        key, spec = self._queue.popleft()
        payload, seconds = execute_job(spec)
        return [JobOutcome(key=key, ok=True, payload=payload, seconds=seconds)]

    def shutdown(self) -> None:
        self._queue.clear()


# ---------------------------------------------------------------------------
# Process pool
# ---------------------------------------------------------------------------
class PoolExecutor:
    """``ProcessPoolExecutor`` fan-out with infra-fault translation.

    Pool-infrastructure failures (broken pool, sandboxed semaphores,
    unpicklable payloads, fork unavailable) surface as
    :class:`ExecutorUnavailable`; job-level simulation errors propagate
    unchanged, exactly as the engine's historical pool path did.
    """

    name = "pool"

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = None
        self._futures: dict[Any, str] = {}

    def _ensure_pool(self):
        import concurrent.futures as cf

        if self._pool is None:
            try:
                self._pool = cf.ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError, ImportError) as exc:
                raise ExecutorUnavailable(f"cannot create process pool: {exc}")
        return self._pool

    def submit(self, key: str, spec: JobSpec) -> None:
        import pickle

        from repro.runner.engine import execute_job

        pool = self._ensure_pool()
        try:
            future = pool.submit(execute_job, spec)
        except (RuntimeError, OSError, pickle.PicklingError) as exc:
            raise ExecutorUnavailable(f"pool submit failed: {exc}")
        self._futures[future] = key

    def poll(self) -> list[JobOutcome]:
        import concurrent.futures as cf
        import pickle

        if not self._futures:
            return []
        done, _ = cf.wait(self._futures, return_when=cf.FIRST_COMPLETED)
        outcomes = []
        for future in done:
            key = self._futures.pop(future)
            try:
                payload, seconds = future.result()
            except cf.process.BrokenProcessPool as exc:
                raise ExecutorUnavailable(f"process pool died: {exc}")
            except (OSError, ValueError, ImportError, pickle.PicklingError) as exc:
                raise ExecutorUnavailable(f"process pool unusable: {exc}")
            outcomes.append(
                JobOutcome(key=key, ok=True, payload=payload, seconds=seconds)
            )
        return outcomes

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._futures.clear()


# ---------------------------------------------------------------------------
# Loopback
# ---------------------------------------------------------------------------
class LoopbackExecutor:
    """Full wire-protocol round trip, in-process and deterministic.

    Each job is encoded to a job line, decoded as a worker would,
    executed, encoded to a result line, and decoded back. The
    ``mutate_job`` / ``mutate_result`` hooks let tests corrupt either
    line and watch the retry/give-up machinery react — the exact
    behaviour a flipped bit on a real socket would trigger, with none
    of the nondeterminism.
    """

    name = "loopback"

    def __init__(
        self,
        stats=None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        mutate_job: Optional[Callable[[str], str]] = None,
        mutate_result: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.stats = stats if stats is not None else _NullCounters()
        self.max_attempts = max(1, max_attempts)
        self.mutate_job = mutate_job
        self.mutate_result = mutate_result
        self._queue: deque[tuple[str, JobSpec]] = deque()

    def submit(self, key: str, spec: JobSpec) -> None:
        self._queue.append((key, spec))

    def _round_trip(self, key: str, spec: JobSpec) -> JobOutcome:
        """One attempt through the full encode/decode/execute cycle."""
        from repro.runner.engine import execute_job

        job_line = encode_job(key, spec)
        if self.mutate_job is not None:
            job_line = self.mutate_job(job_line)
        wire_key, wire_spec = decode_job(job_line)  # may raise WireError

        try:
            payload, seconds = execute_job(wire_spec)
            result_line = encode_result(wire_key, payload, seconds)
        except Exception as exc:
            result_line = encode_error(wire_key, f"{type(exc).__name__}: {exc}")
        if self.mutate_result is not None:
            result_line = self.mutate_result(result_line)
        result = decode_result(result_line)  # may raise WireError
        if result.ok:
            return JobOutcome(
                key=result.key, ok=True, payload=result.payload,
                seconds=result.seconds,
            )
        return JobOutcome(key=result.key, ok=False, error=result.error)

    def poll(self) -> list[JobOutcome]:
        if not self._queue:
            return []
        key, spec = self._queue.popleft()
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                self.stats.retried += 1
            try:
                return [self._round_trip(key, spec)]
            except WireError:
                self.stats.requeued += 1
        return [JobOutcome(key=key, ok=False, give_up=True,
                           error="wire corruption persisted across retries")]

    def shutdown(self) -> None:
        self._queue.clear()


# ---------------------------------------------------------------------------
# Remote (subprocess-per-host)
# ---------------------------------------------------------------------------
#: Default worker launch template; ``{python}`` and ``{host}`` are
#: substituted. Swap for e.g. ``ssh {host} python -m repro worker`` to
#: cross real machines — the engine-side machinery is identical.
DEFAULT_WORKER_COMMAND = "{python} -u -m repro worker"


def _worker_env() -> dict:
    """Subprocess environment with the installed ``repro`` importable."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    return env


@dataclass
class _Worker:
    """Book-keeping for one live worker subprocess."""

    wid: int
    host: str
    proc: subprocess.Popen
    #: (key, spec, attempt) currently dispatched, or None when idle.
    job: Optional[tuple] = None
    deadline: Optional[float] = None
    greeted: bool = False
    recycled: bool = False

    @property
    def alive(self) -> bool:
        return not self.recycled and self.proc.poll() is None


@dataclass
class _QueuedJob:
    key: str
    spec: JobSpec
    attempt: int = 1
    not_before: float = 0.0


class RemoteExecutor:
    """Ship jobs to worker subprocesses over the wire protocol.

    Parameters
    ----------
    hosts:
        One worker per entry. Entries are only *names* interpolated
        into ``command``; with the default local template the names are
        cosmetic, with an SSH template they select machines. ``None``
        spawns ``workers`` local workers.
    command:
        Launch template; ``{python}`` → ``sys.executable``, ``{host}``
        → the host entry. Split with :func:`shlex.split`.
    job_timeout:
        Seconds a dispatched job may run before its worker is declared
        wedged, killed, and the job requeued. ``None`` disables.
    max_attempts / backoff:
        Per-job redispatch budget for infrastructure faults, with
        ``backoff * attempt`` seconds of delay before each redispatch.
    """

    name = "remote"

    def __init__(
        self,
        hosts: Optional[list] = None,
        workers: int = 2,
        command: Optional[str] = None,
        job_timeout: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = 0.1,
        stats=None,
    ) -> None:
        self.hosts = list(hosts) if hosts else ["local"] * max(1, workers)
        self.command = command or DEFAULT_WORKER_COMMAND
        self.job_timeout = job_timeout
        self.max_attempts = max(1, max_attempts)
        self.backoff = backoff
        self.stats = stats if stats is not None else _NullCounters()
        self._workers: dict[int, _Worker] = {}
        self._events: "queue.Queue[tuple[int, str, str]]" = queue.Queue()
        self._backlog: deque[_QueuedJob] = deque()
        self._next_wid = 0
        #: Spawn budget: a hard cap on subprocess launches so a command
        #: that dies instantly cannot fork-bomb the machine.
        self._spawn_budget = len(self.hosts) * (self.max_attempts + 1)
        self._shutdown = False
        self._pending_outcome: Optional[JobOutcome] = None

    # -- worker lifecycle ------------------------------------------------
    def _argv(self, host: str) -> list:
        return shlex.split(self.command.format(python=sys.executable, host=host))

    def _spawn(self, host: str) -> Optional[_Worker]:
        if self._spawn_budget <= 0:
            return None
        self._spawn_budget -= 1
        try:
            proc = subprocess.Popen(
                self._argv(host),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                bufsize=1,
                env=_worker_env(),
            )
        except (OSError, ValueError) as exc:
            self._events.put((-1, "spawn-error", f"{host}: {exc}"))
            return None
        wid = self._next_wid
        self._next_wid += 1
        worker = _Worker(wid=wid, host=host, proc=proc)
        self._workers[wid] = worker
        threading.Thread(
            target=self._read_loop, args=(wid, proc), daemon=True
        ).start()
        return worker

    def _read_loop(self, wid: int, proc: subprocess.Popen) -> None:
        try:
            for line in proc.stdout:
                self._events.put((wid, "line", line))
        except (OSError, ValueError):
            pass
        self._events.put((wid, "eof", ""))

    def _ensure_workers(self) -> None:
        alive = sum(1 for w in self._workers.values() if w.alive)
        for host in self.hosts[alive:]:
            if self._spawn_budget <= 0:
                break
            self._spawn(host)

    def _recycle(self, worker: _Worker, reason: str) -> Optional[JobOutcome]:
        """Kill a faulted worker and requeue its in-flight job."""
        worker.recycled = True
        try:
            worker.proc.kill()
        except OSError:
            pass
        self.stats.worker_deaths += 1
        outcome = None
        if worker.job is not None:
            key, spec, attempt = worker.job
            worker.job = None
            outcome = self._requeue(key, spec, attempt, reason)
        return outcome

    def _requeue(
        self, key: str, spec: JobSpec, attempt: int, reason: str
    ) -> Optional[JobOutcome]:
        if attempt >= self.max_attempts:
            return JobOutcome(
                key=key, ok=False, give_up=True,
                error=f"{reason}; gave up after {attempt} attempts",
            )
        self.stats.requeued += 1
        self._backlog.append(
            _QueuedJob(
                key=key, spec=spec, attempt=attempt + 1,
                not_before=time.monotonic() + self.backoff * attempt,
            )
        )
        return None

    # -- dispatch --------------------------------------------------------
    def _dispatch_ready(self) -> Optional[JobOutcome]:
        """Hand backlog jobs to idle workers; respects backoff delays."""
        now = time.monotonic()
        idle = deque(
            w for w in self._workers.values() if w.alive and w.job is None
        )
        pending = len(self._backlog)
        for _ in range(pending):
            if not idle:
                break
            job = self._backlog.popleft()
            if job.not_before > now:
                self._backlog.append(job)
                continue
            worker = idle.popleft()
            if job.attempt > 1:
                self.stats.retried += 1
            worker.job = (job.key, job.spec, job.attempt)
            worker.deadline = (
                now + self.job_timeout if self.job_timeout else None
            )
            try:
                worker.proc.stdin.write(encode_job(job.key, job.spec) + "\n")
                worker.proc.stdin.flush()
            except (OSError, ValueError):
                outcome = self._recycle(worker, "worker pipe broke on dispatch")
                if outcome is not None:
                    return outcome
        return None

    # -- protocol --------------------------------------------------------
    def submit(self, key: str, spec: JobSpec) -> None:
        if self._shutdown:
            raise ExecutorUnavailable("executor already shut down")
        self._backlog.append(_QueuedJob(key=key, spec=spec))
        self._ensure_workers()
        if not any(w.alive for w in self._workers.values()):
            raise ExecutorUnavailable(
                f"no worker could be launched from template {self.command!r}"
            )
        outcome = self._dispatch_ready()
        if outcome is not None:
            # A dispatch pipe broke and retries were exhausted already;
            # park the outcome for the next poll().
            self._pending_outcome = outcome

    def _handle_line(self, worker: _Worker, line: str) -> Optional[JobOutcome]:
        line = line.strip()
        if not line:
            return None
        if not worker.greeted:
            try:
                decode_hello(line)
            except WireError:
                return self._recycle(
                    worker, f"worker spoke garbage instead of hello: {line[:80]!r}"
                )
            worker.greeted = True
            return None
        try:
            result = decode_result(line)
        except WireError as exc:
            return self._recycle(worker, f"corrupted result line ({exc})")
        if worker.job is None or result.key != worker.job[0]:
            return self._recycle(
                worker, f"result for unexpected key {result.key[:12]!r}"
            )
        key, spec, attempt = worker.job
        worker.job = None
        worker.deadline = None
        if result.ok:
            return JobOutcome(
                key=key, ok=True, payload=result.payload, seconds=result.seconds
            )
        # Remote simulation error: final, no retry.
        return JobOutcome(key=key, ok=False, error=result.error)

    def _next_deadline(self) -> Optional[float]:
        deadlines = [
            w.deadline
            for w in self._workers.values()
            if w.alive and w.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def poll(self) -> list[JobOutcome]:
        outcomes: list[JobOutcome] = []
        pending = getattr(self, "_pending_outcome", None)
        if pending is not None:
            self._pending_outcome = None
            outcomes.append(pending)
            return outcomes

        outcome = self._dispatch_ready()
        if outcome is not None:
            return [outcome]

        in_flight = any(
            w.job is not None for w in self._workers.values() if w.alive
        )
        if not in_flight and not self._backlog:
            # The engine believes jobs are outstanding but this executor
            # holds none: state was lost. Failing loudly (and letting the
            # engine degrade to in-process execution) beats spinning.
            raise ExecutorUnavailable("executor lost track of pending jobs")
        if not in_flight and self._backlog:
            self._ensure_workers()
            if not any(w.alive for w in self._workers.values()):
                raise ExecutorUnavailable(
                    "all workers dead and spawn budget exhausted"
                )

        deadline = self._next_deadline()
        timeout = 0.25
        if deadline is not None:
            timeout = max(0.0, min(timeout, deadline - time.monotonic()))
        try:
            wid, kind, line = self._events.get(timeout=timeout)
        except queue.Empty:
            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.alive and worker.deadline and worker.deadline <= now:
                    outcome = self._recycle(
                        worker,
                        f"job exceeded timeout of {self.job_timeout}s",
                    )
                    if outcome is not None:
                        outcomes.append(outcome)
            self._ensure_workers()
            return outcomes

        if kind == "line":
            worker = self._workers.get(wid)
            if worker is not None and not worker.recycled:
                outcome = self._handle_line(worker, line)
                if outcome is not None:
                    outcomes.append(outcome)
        elif kind == "eof":
            worker = self._workers.get(wid)
            if worker is not None and not worker.recycled:
                outcome = self._recycle(worker, "worker died")
                if outcome is not None:
                    outcomes.append(outcome)
            self._ensure_workers()
        # "spawn-error" events carry no job state; _ensure_workers and
        # the ExecutorUnavailable check above handle systemic failure.
        return outcomes

    def shutdown(self) -> None:
        self._shutdown = True
        for worker in self._workers.values():
            try:
                if worker.proc.stdin:
                    worker.proc.stdin.close()
            except OSError:
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers.values():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------
def build_executor(
    name: str,
    *,
    workers: int = 1,
    hosts: Optional[list] = None,
    command: Optional[str] = None,
    job_timeout: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff: float = 0.1,
    stats=None,
) -> Executor:
    """Construct a named executor with the engine's tuning knobs."""
    if name == "inline":
        return InlineExecutor()
    if name == "pool":
        return PoolExecutor(workers=workers)
    if name == "loopback":
        return LoopbackExecutor(stats=stats, max_attempts=max_attempts)
    if name == "remote":
        return RemoteExecutor(
            hosts=hosts,
            workers=workers,
            command=command,
            job_timeout=job_timeout,
            max_attempts=max_attempts,
            backoff=backoff,
            stats=stats,
        )
    known = ", ".join(EXECUTOR_NAMES)
    raise ValueError(f"unknown executor {name!r}; known: {known}")
