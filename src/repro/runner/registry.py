"""String-keyed registry of every architecture the paper evaluates.

This is the single source of truth for "what can be simulated":
``ARCHITECTURES`` maps a name (``"baseline"``, ``"linebacker"``,
``"pcal_svc"``, ...) to an :class:`ArchSpec` whose runner is a
module-level function ``run(config, kernel, **params)``. Figure
runners, the CLI and the parallel engine all go through this table —
:meth:`ExperimentContext.run(app, arch) <repro.analysis.context.ExperimentContext.run>`
instead of one hand-written method per architecture.

Because runners are looked up *by name* inside worker processes, a
:class:`~repro.runner.spec.JobSpec` stays a plain data record: no
closures or bound methods ever cross the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.baselines.cache_ext import (
    config_with_cache_ext,
    run_cache_ext,
    run_swl_cache_ext,
)
from repro.baselines.cerf import PCALCERFFactory, cerf_factory
from repro.baselines.pcal import pcal_factory
from repro.baselines.swl import best_swl
from repro.config import LinebackerConfig, SimulationConfig
from repro.core.linebacker import linebacker_factory
from repro.gpu.gpu import run_kernel
from repro.options import RunOptions
from repro.gpu.trace import KernelTrace


@dataclass(frozen=True)
class ArchSpec:
    """One registered architecture.

    ``returns`` distinguishes plain simulations (``"result"``, a
    :class:`SimulationResult`) from the Best-SWL oracle sweep
    (``"best_swl"``, a :class:`BestSWLResult`).
    """

    name: str
    runner: Callable
    description: str = ""
    returns: str = "result"
    #: Whether the runner accepts ``timeseries=True`` and threads it to
    #: :func:`run_kernel` (the ``trace`` CLI and ``run --timeseries``
    #: only pass the override to architectures that advertise it).
    supports_timeseries: bool = False
    #: Execution backends this architecture can run on. Architectures
    #: whose runner attaches an SM extension (Linebacker, PCAL, CERF)
    #: are object-only until those hooks vectorize; extension-free
    #: architectures run on every engine. Submission surfaces (CLI,
    #: HTTP schema, figure contexts) validate/drop a ``backend``
    #: override against this, mirroring ``supports_timeseries``.
    supports_backends: tuple = ("object",)


ARCHITECTURES: dict[str, ArchSpec] = {}


def register(
    name: str,
    description: str = "",
    returns: str = "result",
    supports_timeseries: bool = False,
    supports_backends: tuple = ("object",),
):
    """Register a module-level run function as architecture ``name``."""

    def wrap(fn: Callable) -> Callable:
        # This *is* the module-level registration mechanism; the
        # decorator runs at import time, so workers re-register too.
        ARCHITECTURES[name] = ArchSpec(  # repro-lint: ignore[registry-local-runner]
            name=name,
            runner=fn,
            description=description,
            returns=returns,
            supports_timeseries=supports_timeseries,
            supports_backends=supports_backends,
        )
        return fn

    return wrap


def resolve(name: str) -> ArchSpec:
    try:
        return ARCHITECTURES[name]
    except KeyError:
        known = ", ".join(sorted(ARCHITECTURES))
        raise KeyError(f"unknown architecture {name!r}; known: {known}") from None


# ---------------------------------------------------------------------------
# Architecture runners. Signature: run(config, kernel, **params).
# ---------------------------------------------------------------------------
@register(
    "baseline",
    "stock GPU, no memory-path policy",
    supports_timeseries=True,
    supports_backends=("object", "vector"),
)
def _run_baseline(
    config: SimulationConfig,
    kernel: KernelTrace,
    track_loads: bool = False,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    return run_kernel(
        config, kernel,
        options=RunOptions(
            track_loads=track_loads, timeseries=timeseries, backend=backend
        ),
    )


@register(
    "best_swl",
    "oracle static CTA-limit sweep",
    returns="best_swl",
    supports_backends=("object", "vector"),
)
def _run_best_swl(
    config: SimulationConfig,
    kernel: KernelTrace,
    backend: Optional[str] = None,
):
    return best_swl(config, kernel, backend=backend)


@register(
    "linebacker",
    "full Linebacker (throttling + selective victim cache)",
    supports_timeseries=True,
)
def _run_linebacker(
    config: SimulationConfig,
    kernel: KernelTrace,
    lb_config: Optional[LinebackerConfig] = None,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    lb = lb_config or config.linebacker
    return run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(lb),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register(
    "victim_caching",
    "Fig 11: keep every victim, no throttling",
    supports_timeseries=True,
)
def _run_victim_caching(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    lb = replace(config.linebacker, enable_selective=False, enable_throttling=False)
    return run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(lb),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register(
    "selective_victim_caching",
    "Fig 11: SUR space only, no throttling",
    supports_timeseries=True,
)
def _run_selective_victim_caching(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    lb = replace(config.linebacker, enable_throttling=False)
    return run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(lb),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register("pcal", "PCAL bypass-token throttling (HPCA 2015)", supports_timeseries=True)
def _run_pcal(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    return run_kernel(
        config,
        kernel,
        extension_factory=pcal_factory(config.linebacker),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register("cerf", "CERF unified RF/L1 caching (MICRO 2016)", supports_timeseries=True)
def _run_cerf(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    return run_kernel(
        config,
        kernel,
        extension_factory=cerf_factory(config.linebacker),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register(
    "pcal_svc",
    "Fig 15: PCAL bypass throttling + SUR victim cache",
    supports_timeseries=True,
)
def _run_pcal_svc(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    lb = replace(config.linebacker, enable_throttling=False)
    return run_kernel(
        config,
        kernel,
        extension_factory=linebacker_factory(lb, enable_bypass_throttling=True),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register(
    "pcal_cerf",
    "Fig 15: PCAL bypass throttling over a CERF cache",
    supports_timeseries=True,
)
def _run_pcal_cerf(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    return run_kernel(
        config,
        kernel,
        extension_factory=PCALCERFFactory(config.linebacker),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )


@register(
    "cache_ext",
    "Sec 2.4: idealized SUR-enlarged L1",
    supports_backends=("object", "vector"),
)
def _run_cache_ext(
    config: SimulationConfig,
    kernel: KernelTrace,
    backend: Optional[str] = None,
):
    return run_cache_ext(config, kernel, backend=backend)


@register(
    "best_swl_cache_ext",
    "Sec 2.4: oracle throttling + (SUR+DUR)-enlarged L1",
    supports_backends=("object", "vector"),
)
def _run_best_swl_cache_ext(
    config: SimulationConfig,
    kernel: KernelTrace,
    cta_limit: Optional[int] = None,
    backend: Optional[str] = None,
):
    limit = (
        cta_limit
        if cta_limit is not None
        else best_swl(config, kernel, backend=backend).best_limit
    )
    return run_swl_cache_ext(config, kernel, limit, backend=backend)


@register(
    "lb_cache_ext",
    "Fig 15: Linebacker over the idealized enlarged L1",
    supports_timeseries=True,
)
def _run_lb_cache_ext(
    config: SimulationConfig,
    kernel: KernelTrace,
    timeseries: bool = False,
    backend: Optional[str] = None,
):
    cfg = config_with_cache_ext(config, kernel)
    return run_kernel(
        cfg,
        kernel,
        extension_factory=linebacker_factory(cfg.linebacker),
        options=RunOptions(timeseries=timeseries, backend=backend),
    )
