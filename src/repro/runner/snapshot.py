"""Portable snapshots of simulation results.

A live :class:`~repro.gpu.gpu.SimulationResult` built with
``keep_objects=True`` drags the entire simulation graph behind it:
each SM holds its memory subsystem, the kernel trace, and a
``cta_source`` closure, none of which can cross a process boundary or
be written to the persistent result cache. The analysis layer,
however, only ever touches a narrow slice of that graph. The snapshot
classes (now defined in :mod:`repro.gpu.snapshot`, re-exported here)
capture exactly that slice — the self-contained stat objects
(``SMStats``, ``TrafficStats``, cache and register-file stats,
``LinebackerStats``, the ``LoadMonitor``, ``VictimTagTable`` and
``LoadTracker``, which hold no SM references) plus a few scalars — so
a "portable" result pickles in kilobytes and behaves identically for
every figure runner, test, and the energy model.

Since ``run_kernel`` snapshots by default, :func:`portable` is usually
a pass-through; it still guarantees portability for results produced
with ``keep_objects=True`` (e.g. by driving :class:`~repro.gpu.gpu.GPU`
directly).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.swl import BestSWLResult
from repro.gpu.gpu import SimulationResult
from repro.gpu.snapshot import (
    ExtensionSnapshot,
    L1Snapshot,
    SMSnapshot,
    snapshot_extension,
    snapshot_sm,
)

__all__ = [
    "ExtensionSnapshot",
    "L1Snapshot",
    "SMSnapshot",
    "snapshot_extension",
    "snapshot_sm",
    "portable_result",
    "portable_best_swl",
    "portable",
]


def portable_result(result: SimulationResult) -> SimulationResult:
    """Strip a result down to picklable state.

    Idempotent: a result whose SMs are already snapshots passes
    through unchanged, so cached payloads can be re-portabilized
    safely.
    """
    if all(isinstance(sm, SMSnapshot) for sm in result.sms):
        return result
    return replace(
        result,
        sms=[snapshot_sm(sm) for sm in result.sms],
        extensions=[snapshot_extension(ext) for ext in result.extensions],
    )


def portable_best_swl(outcome: BestSWLResult) -> BestSWLResult:
    return BestSWLResult(
        best_limit=outcome.best_limit,
        best_result=portable_result(outcome.best_result),
        sweep_ipc=dict(outcome.sweep_ipc),
    )


def portable(value):
    """Portabilize any runner payload (simulation or Best-SWL sweep)."""
    if isinstance(value, BestSWLResult):
        return portable_best_swl(value)
    if isinstance(value, SimulationResult):
        return portable_result(value)
    return value
