"""Portable snapshots of simulation results.

A live :class:`~repro.gpu.gpu.SimulationResult` drags the entire
simulation graph behind it: each SM holds its memory subsystem, the
kernel trace, and a ``cta_source`` closure, none of which can cross a
process boundary or be written to the persistent result cache. The
analysis layer, however, only ever touches a narrow slice of that
graph. These snapshot classes capture exactly that slice — the
self-contained stat objects (``SMStats``, ``TrafficStats``, cache and
register-file stats, ``LinebackerStats``, the ``LoadMonitor``,
``VictimTagTable`` and ``LoadTracker``, which hold no SM references)
plus a few scalars — so a "portable" result pickles in kilobytes and
behaves identically for every figure runner, test, and the energy
model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.baselines.swl import BestSWLResult
from repro.gpu.gpu import SimulationResult


@dataclass
class L1Snapshot:
    """The L1 attributes the analysis layer reads off ``sm.l1``."""

    num_sets: int
    size_bytes: int
    assoc: int


@dataclass
class SMSnapshot:
    """Stand-in for a live SM inside a portable result."""

    sm_id: int
    done: bool
    l1: L1Snapshot
    load_tracker: Optional[object] = None  # a self-contained LoadTracker


@dataclass
class ExtensionSnapshot:
    """Stand-in for a live SM extension inside a portable result.

    Carries the extension's self-contained stat structures under their
    original attribute names, so ``ext.stats``, ``ext.load_monitor``
    and ``ext.vtt`` keep working for Figures 9/10/17 and the energy
    model's ``getattr`` probes.
    """

    kind: str
    stats: Optional[object] = None  # LinebackerStats (or None for baseline)
    load_monitor: Optional[object] = None  # LoadMonitor
    vtt: Optional[object] = None  # VictimTagTable (tags only, no data)


def snapshot_extension(ext) -> ExtensionSnapshot:
    return ExtensionSnapshot(
        kind=type(ext).__name__,
        stats=getattr(ext, "stats", None),
        load_monitor=getattr(ext, "load_monitor", None),
        vtt=getattr(ext, "vtt", None),
    )


def snapshot_sm(sm) -> SMSnapshot:
    return SMSnapshot(
        sm_id=sm.sm_id,
        done=sm.done,
        l1=L1Snapshot(
            num_sets=sm.l1.num_sets,
            size_bytes=sm.l1.num_sets * sm.l1.assoc * sm.l1.line_bytes,
            assoc=sm.l1.assoc,
        ),
        load_tracker=sm.load_tracker,
    )


def portable_result(result: SimulationResult) -> SimulationResult:
    """Strip a result down to picklable state.

    Idempotent: a result whose SMs are already snapshots passes
    through unchanged, so cached payloads can be re-portabilized
    safely.
    """
    if all(isinstance(sm, SMSnapshot) for sm in result.sms):
        return result
    return replace(
        result,
        sms=[snapshot_sm(sm) for sm in result.sms],
        extensions=[snapshot_extension(ext) for ext in result.extensions],
    )


def portable_best_swl(outcome: BestSWLResult) -> BestSWLResult:
    return BestSWLResult(
        best_limit=outcome.best_limit,
        best_result=portable_result(outcome.best_result),
        sweep_ipc=dict(outcome.sweep_ipc),
    )


def portable(value):
    """Portabilize any runner payload (simulation or Best-SWL sweep)."""
    if isinstance(value, BestSWLResult):
        return portable_best_swl(value)
    if isinstance(value, SimulationResult):
        return portable_result(value)
    return value
