"""Content-hashed experiment job specifications.

A :class:`JobSpec` is the unit of work of the parallel experiment
engine: one (app, architecture, configuration, scale) simulation. It
is a frozen dataclass of frozen dataclasses, so it is

* **picklable** — it can be shipped to a ``ProcessPoolExecutor``
  worker, which rebuilds the kernel trace and extension factory from
  it (no closures cross the process boundary), and
* **content-hashable** — :func:`repro.config.stable_hash` folds every
  field into a key that is stable across processes and interpreter
  restarts, which is what makes the persistent result cache sound.

Overrides (e.g. ``track_loads=True`` or a ``LinebackerConfig`` ablation
variant) are carried as a sorted tuple of ``(name, value)`` pairs so
two specs built from the same keyword arguments always hash equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.config import SimulationConfig, stable_hash
from repro.options import RunOptions
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class JobSpec:
    """One simulation to run: app x architecture x config x scale.

    ``workload`` carries a declarative
    :class:`~repro.workloads.spec.WorkloadSpec` when ``app`` is not a
    built-in Table-2 name. The spec rides *inside* the job — plain
    frozen data, so it pickles to pool workers and encodes onto the
    HTTP job document — which means a fuzzed or file-defined workload
    runs on any executor with no registration step on the far side.
    """

    app: str
    arch: str
    config: SimulationConfig
    scale: float = 1.0
    params: tuple[tuple[str, Any], ...] = ()
    workload: Optional[WorkloadSpec] = None

    @classmethod
    def build(
        cls,
        app: str,
        arch: str,
        config: SimulationConfig,
        scale: float = 1.0,
        overrides: Mapping[str, Any] | None = None,
        options: Optional[RunOptions] = None,
        workload: Optional[WorkloadSpec] = None,
    ) -> "JobSpec":
        """Build a spec from overrides and/or a :class:`RunOptions`.

        ``options`` folds its **non-default** fields into the params,
        producing exactly the pairs the equivalent keyword overrides
        would — content hashes are identical either way. Explicit
        ``overrides`` win over ``options`` on key collisions.

        When ``app`` names a registered workload (and no explicit
        ``workload`` is given), the registered spec is attached so the
        job stays self-contained across process boundaries.
        """
        merged = dict(options.to_overrides()) if options is not None else {}
        merged.update(overrides or {})
        params = tuple(sorted(merged.items()))
        if workload is None:
            from repro.workloads.spec import registered_workload

            workload = registered_workload(app)
        elif workload.name != app:
            raise ValueError(
                f"job app {app!r} does not match its attached workload "
                f"{workload.name!r}"
            )
        return cls(app=app, arch=arch, config=config, scale=scale,
                   params=params, workload=workload)

    @property
    def overrides(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def options(self) -> RunOptions:
        """The :class:`RunOptions` view of this spec's params."""
        opts, _ = RunOptions.from_overrides(self.overrides)
        return opts

    @property
    def key(self) -> str:
        """Stable content hash identifying this job everywhere."""
        return stable_hash(self)

    @property
    def label(self) -> str:
        """Short human-readable name for progress reporting."""
        extra = ",".join(k for k, _ in self.params)
        suffix = f"[{extra}]" if extra else ""
        return f"{self.arch}:{self.app}{suffix}"
