"""Line-delimited wire protocol between the engine and remote workers.

One message per line, JSON envelope, pickled Python values carried as
base64 with a SHA-256 digest:

* ``hello``  — worker → engine, first line after startup; carries the
  protocol version and the worker pid so the engine can verify it is
  talking to a live ``repro`` worker and not, say, an SSH banner.
* ``job``    — engine → worker: a content-hashed key plus the pickled
  :class:`~repro.runner.spec.JobSpec`.
* ``result`` — worker → engine: ``ok=True`` with the pickled portable
  payload and the measured wall-clock seconds, or ``ok=False`` with a
  traceback string when the *simulation itself* raised (infrastructure
  failures never produce a result line — the worker just dies and the
  engine requeues).

Every decoding failure — malformed JSON, a foreign message type, a
protocol-version mismatch, undecodable base64, a digest mismatch, an
unpicklable body — raises :class:`WireError`. Callers treat a
``WireError`` as evidence the *transport* is compromised (a corrupted
line, a worker printing to stdout, an SSH warning interleaved) and
respond by killing/requeueing rather than guessing: the digest check
makes it impossible for a bit-flipped payload to be silently accepted.

The protocol is deliberately text-line based so a worker can sit
behind any byte pipe (``ssh host python -m repro worker``, a container
exec, a local subprocess) without framing negotiation.

Payloads are opaque to the protocol: a portable result may carry
opt-in extras such as per-window timeseries
(:class:`~repro.metrics.WindowSeries`) without a protocol change —
payload-shape versioning is owned by the result cache
(``CACHE_SCHEMA_VERSION``), not the wire.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any

#: Bump on any incompatible message-shape change; mismatched peers
#: refuse each other loudly instead of mis-parsing.
PROTOCOL_VERSION = 1


class WireError(ValueError):
    """A line on the wire could not be decoded as a protocol message."""


class ProtocolMismatch(WireError):
    """The peer speaks a *different version* of the wire protocol.

    Distinct from generic :class:`WireError` corruption: the line was a
    well-formed hello from a real ``repro`` worker, just one built
    against another protocol revision. Coordinators treat this as a
    permanent condition for that worker binary (retrying cannot heal a
    version skew) and report the actionable message instead of
    recycling forever.
    """


def _pack(value: Any) -> dict:
    """Pickle ``value`` into a digest-protected transport dict."""
    data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "b64": base64.b64encode(data).decode("ascii"),
        "sha": hashlib.sha256(data).hexdigest(),
    }


def _unpack(box: Any) -> Any:
    if not isinstance(box, dict) or "b64" not in box or "sha" not in box:
        raise WireError("malformed payload box")
    try:
        data = base64.b64decode(box["b64"], validate=True)
    except (binascii.Error, ValueError, TypeError) as exc:
        raise WireError(f"undecodable payload base64: {exc}") from None
    if hashlib.sha256(data).hexdigest() != box["sha"]:
        raise WireError("payload digest mismatch (corrupted in transit)")
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise WireError(f"unpicklable payload: {exc}") from None


def _decode_envelope(line: str, expect: str) -> dict:
    try:
        msg = json.loads(line)
    except (json.JSONDecodeError, TypeError) as exc:
        raise WireError(f"not a protocol line: {exc}") from None
    if not isinstance(msg, dict):
        raise WireError("protocol message is not an object")
    if msg.get("v") != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch (got {msg.get('v')!r}, "
            f"want {PROTOCOL_VERSION})"
        )
    if msg.get("type") != expect:
        raise WireError(f"expected {expect!r} message, got {msg.get('type')!r}")
    return msg


# -- hello -----------------------------------------------------------------
def encode_hello() -> str:
    """The worker banner: envelope version, explicit ``proto``, pid.

    ``proto`` duplicates the envelope ``v`` *by design*: the envelope
    field guards every message against mis-parsing, while ``proto`` is
    the negotiated protocol revision a coordinator checks once at
    handshake so version skew between a long-lived coordinator and an
    independently upgraded worker fleet fails with a clear, actionable
    error instead of a generic corruption report on some later line.
    """
    return json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "type": "hello",
            "proto": PROTOCOL_VERSION,
            "pid": os.getpid(),
        }
    )


def decode_hello(line: str) -> int:
    """Validate a hello line; returns the worker pid.

    Raises :class:`ProtocolMismatch` (before any envelope check) when
    the line *is* a hello but carries a different ``proto``, so the
    caller can distinguish "wrong software version" from "garbage on
    the pipe".
    """
    try:
        peek = json.loads(line)
    except (json.JSONDecodeError, TypeError):
        peek = None
    if isinstance(peek, dict) and peek.get("type") == "hello":
        proto = peek.get("proto", peek.get("v"))
        if proto != PROTOCOL_VERSION:
            raise ProtocolMismatch(
                f"worker speaks wire protocol {proto!r}, this side speaks "
                f"{PROTOCOL_VERSION}; upgrade the older peer (coordinator "
                "and worker fleets version independently of pickled payloads)"
            )
    msg = _decode_envelope(line, "hello")
    pid = msg.get("pid")
    if not isinstance(pid, int):
        raise WireError("hello without a pid")
    return pid


# -- jobs ------------------------------------------------------------------
def encode_job(key: str, spec: Any) -> str:
    return json.dumps(
        {"v": PROTOCOL_VERSION, "type": "job", "key": key, "spec": _pack(spec)}
    )


def decode_job(line: str) -> tuple[str, Any]:
    msg = _decode_envelope(line, "job")
    key = msg.get("key")
    if not isinstance(key, str) or not key:
        raise WireError("job without a key")
    return key, _unpack(msg.get("spec"))


# -- results ---------------------------------------------------------------
@dataclass(frozen=True)
class WireResult:
    """A decoded result line: either a payload or a remote traceback."""

    key: str
    ok: bool
    payload: Any = None
    seconds: float = 0.0
    error: str = ""


def encode_result(key: str, payload: Any, seconds: float) -> str:
    return json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "type": "result",
            "key": key,
            "ok": True,
            "seconds": seconds,
            "payload": _pack(payload),
        }
    )


def encode_error(key: str, error: str) -> str:
    return json.dumps(
        {"v": PROTOCOL_VERSION, "type": "result", "key": key, "ok": False,
         "error": error}
    )


def decode_result(line: str) -> WireResult:
    msg = _decode_envelope(line, "result")
    key = msg.get("key")
    if not isinstance(key, str) or not key:
        raise WireError("result without a key")
    if msg.get("ok"):
        seconds = msg.get("seconds")
        if not isinstance(seconds, (int, float)):
            raise WireError("result without a wall-clock measurement")
        return WireResult(
            key=key, ok=True, payload=_unpack(msg.get("payload")),
            seconds=float(seconds),
        )
    error = msg.get("error")
    if not isinstance(error, str):
        raise WireError("failed result without an error string")
    return WireResult(key=key, ok=False, error=error)
