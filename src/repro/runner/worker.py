"""The remote-execution worker: ``python -m repro worker``.

A worker is a dumb, stateless job servant on the other end of any byte
pipe. It announces itself with a ``hello`` line, then loops: read one
``job`` line from stdin, simulate it, write one ``result`` line to
stdout. EOF on stdin is the shutdown signal, so the engine tears a
worker down simply by closing the pipe — no control messages, no
signal handling, and an ``ssh host python -m repro worker`` behaves
exactly like a local subprocess.

Error containment mirrors the engine's contract:

* a **simulation** exception becomes an ``ok=False`` result carrying
  the traceback (the engine re-raises it; retrying a deterministic
  failure is pointless), after which the worker keeps serving;
* an **undecodable job line** gets an ``ok=False`` result against the
  sentinel key ``"?"`` — the engine treats any unattributable reply as
  transport corruption and recycles the worker;
* stdout carries protocol lines *only*; diagnostics go to stderr.

With ``--cache-dir`` the worker reads and writes the persistent result
cache itself (read-through: a hit skips the simulation entirely). On a
shared filesystem pass ``--shared-cache`` so concurrent writers on
different hosts serialize through the advisory-lock backend.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import IO, Optional

from repro.runner.cache import MISS, ResultCache, SharedDirectoryBackend
from repro.runner.wire import (
    WireError,
    decode_job,
    encode_error,
    encode_hello,
    encode_result,
)


def _emit(stream: IO[str], line: str) -> None:
    stream.write(line + "\n")
    stream.flush()


def serve(
    stdin: IO[str],
    stdout: IO[str],
    cache: Optional[ResultCache] = None,
    stderr: Optional[IO[str]] = None,
) -> int:
    """Serve jobs from ``stdin`` until EOF; returns a process exit code."""
    _emit(stdout, encode_hello())
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        try:
            key, spec = decode_job(line)
        except WireError as exc:
            _emit(stdout, encode_error("?", f"undecodable job line: {exc}"))
            continue
        try:
            payload, seconds = _resolve(spec, cache)
        except Exception:
            _emit(stdout, encode_error(key, traceback.format_exc()))
            continue
        _emit(stdout, encode_result(key, payload, seconds))
        if stderr is not None:
            print(f"worker: {spec.label} done in {seconds:.2f}s", file=stderr)
    return 0


def _resolve(spec, cache: Optional[ResultCache]):
    """Cache read-through around one simulation."""
    # Imported here so `python -m repro worker --help` stays instant —
    # pulling in the registry imports the whole simulator.
    from repro.runner.engine import execute_job

    if cache is not None:
        cached = cache.get(cache.key_for(spec))
        if cached is not MISS:
            return cached, 0.0
    payload, seconds = execute_job(spec)
    if cache is not None:
        try:
            cache.put(cache.key_for(spec), payload)
        except Exception as exc:  # never let a cache write kill a worker
            print(f"worker: cache write failed: {exc}", file=sys.stderr)
    return payload, seconds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Serve simulation jobs over stdin/stdout (wire protocol v1).",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="read-through persistent result cache directory",
    )
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        help="use the advisory-lock cache backend (safe for concurrent "
        "writers on a network filesystem)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log served jobs to stderr"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    cache = None
    if args.cache_dir:
        backend = (
            SharedDirectoryBackend(args.cache_dir)
            if args.shared_cache
            else None
        )
        cache = (
            ResultCache(backend=backend)
            if backend is not None
            else ResultCache(args.cache_dir)
        )
    return serve(
        sys.stdin,
        sys.stdout,
        cache=cache,
        stderr=sys.stderr if args.verbose else None,
    )


if __name__ == "__main__":
    raise SystemExit(main())
