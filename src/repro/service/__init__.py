"""repro.service — simulation-as-a-service over HTTP/JSON.

A long-lived :class:`Coordinator` owns a registered fleet of
persistent ``python -m repro worker`` processes (the PR 4 wire
protocol and fault tiers, kept warm) and a shared read-through result
store, and serves versioned JSON ``JobSpec`` documents over a stdlib
``ThreadingHTTPServer``. Start one with ``python -m repro serve``;
talk to it with ``repro.api.Session.connect(url)``, ``python -m repro
submit``, or plain ``curl``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.coordinator import (
    DEFAULT_PORT,
    Coordinator,
    Job,
    ServiceHandler,
    ServiceServer,
    serve,
)
from repro.service.fleet import FleetWorker, WorkerFleet
from repro.service.schema import (
    JOB_SCHEMA_VERSION,
    SchemaError,
    decode_config,
    decode_jobspec,
    encode_config,
    encode_jobspec,
)

__all__ = [
    "Coordinator",
    "DEFAULT_PORT",
    "FleetWorker",
    "JOB_SCHEMA_VERSION",
    "Job",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "ServiceServer",
    "WorkerFleet",
    "decode_config",
    "decode_jobspec",
    "encode_config",
    "encode_jobspec",
    "serve",
]
