"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` is the thin, dependency-free wire layer under
:meth:`repro.api.Session.connect`: it speaks the coordinator's JSON
endpoints with ``urllib``, re-checks the payload digest on results
(the same SHA-256 box the worker wire protocol uses), and maps the
service's error shapes back onto the exceptions in-process callers
already know — a failed simulation raises
:class:`~repro.runner.executors.RemoteJobError`, a schema/version
disagreement raises :class:`ServiceError` with the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Optional

from repro.runner.executors import RemoteJobError
from repro.runner.spec import JobSpec
from repro.runner.wire import _unpack
from repro.service.schema import JOB_SCHEMA_VERSION, encode_jobspec


class ServiceError(RuntimeError):
    """The service refused or could not complete a request.

    ``status`` is the HTTP status code, or 0 when the request never
    reached the service at all (refused connection, DNS failure).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.message = message


class ServiceClient:
    """One coordinator endpoint, e.g. ``http://127.0.0.1:8642``."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                doc = json.loads(exc.read())
            except (json.JSONDecodeError, OSError):
                doc = {"error": str(exc)}
            return exc.code, doc
        except urllib.error.URLError as exc:
            raise ServiceError(
                0,
                f"cannot reach the simulation service at {self.url}: "
                f"{exc.reason} (is `python -m repro serve` running there?)",
            ) from None

    def _get(self, path: str) -> tuple[int, Any]:
        return self._request("GET", path)

    @staticmethod
    def _raise_for(status: int, doc: Any) -> None:
        if status >= 400:
            message = (
                doc.get("error", "") if isinstance(doc, dict) else str(doc)
            )
            raise ServiceError(status, message)

    # -- API -------------------------------------------------------------
    def healthz(self) -> dict:
        status, doc = self._get("/v1/healthz")
        self._raise_for(status, doc)
        if doc.get("schema") != JOB_SCHEMA_VERSION:
            raise ServiceError(
                status,
                f"service speaks job schema {doc.get('schema')!r}, this "
                f"client speaks {JOB_SCHEMA_VERSION}; upgrade the older peer",
            )
        return doc

    def fleet(self) -> dict:
        status, doc = self._get("/v1/fleet")
        self._raise_for(status, doc)
        return doc

    def submit(self, spec: JobSpec) -> dict:
        """POST one spec; returns ``{job_id, status, cached, coalesced}``."""
        status, doc = self._request("POST", "/v1/jobs", encode_jobspec(spec))
        self._raise_for(status, doc)
        return doc

    def status(self, job_id: str) -> dict:
        status, doc = self._get(f"/v1/jobs/{job_id}")
        self._raise_for(status, doc)
        return doc

    def result(
        self, job_id: str, timeout: Optional[float] = None, poll: float = 0.05
    ) -> Any:
        """Block until the job settles; returns the unpickled payload.

        Raises :class:`RemoteJobError` when the *simulation* failed on
        the service (mirroring the remote executor's contract), and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status, doc = self._get(f"/v1/jobs/{job_id}/result")
            if status == 200:
                return _unpack(doc["payload"])
            if status == 500:
                raise RemoteJobError(
                    f"job {job_id[:12]} failed on the service:\n"
                    f"{doc.get('error', '')}"
                )
            if status != 202:
                self._raise_for(status, doc)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]} still {doc.get('status')!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def timeseries(self, job_id: str, sm: int = 0, since: int = 0) -> dict:
        status, doc = self._get(
            f"/v1/jobs/{job_id}/timeseries?sm={sm}&since={since}"
        )
        if status == 202:
            return doc
        self._raise_for(status, doc)
        return doc

    def stream_timeseries(
        self,
        job_id: str,
        sm: int = 0,
        poll: float = 0.1,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield per-window rows as the service exposes them.

        Uses the endpoint's ``since`` cursor, so rows are yielded
        exactly once; the iterator ends when the job is done and the
        cursor is drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            doc = self.timeseries(job_id, sm=sm, since=cursor)
            for row in doc.get("rows", []):
                yield row
            cursor = doc.get("next", cursor)
            if doc.get("status") == "done":
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"timeseries for job {job_id[:12]} incomplete after "
                    f"{timeout}s"
                )
            time.sleep(poll)
