"""The simulation coordinator: one warm fleet, many concurrent clients.

:class:`Coordinator` owns three things:

* a **job table** keyed by the spec's content hash — the same hash the
  engine's memo and the persistent cache use, so *identity is content*:
  two clients submitting the same (app, arch, config, scale, options)
  get the same job id, and at most one simulation runs;
* a :class:`~repro.service.fleet.WorkerFleet` of persistent
  ``python -m repro worker`` processes (the execute tier), plus the
  **degrade tier**: a job whose fleet attempts are exhausted is run
  in-process on a fallback thread, mirroring the batch engine's
  ``ExecutorUnavailable`` path;
* a :class:`~repro.runner.cache.ResultCache` over
  :class:`~repro.runner.cache.SharedDirectoryBackend` as the
  **read-through result store** — a submit whose key is already cached
  completes instantly, and workers write the same store as they finish,
  so duplicates across coordinator restarts dedup too.

:class:`ServiceHandler` exposes it over HTTP/JSON (stdlib
``ThreadingHTTPServer``; handler threads only touch the lock-guarded
job table, never worker pipes):

========================================  ================================
``POST /v1/jobs``                           submit one schema-versioned
                                            JSON job document; returns
                                            ``{job_id, status, cached,
                                            coalesced}``
``GET  /v1/jobs/{id}``                      status/provenance summary
``GET  /v1/jobs/{id}/result``               the portable result payload,
                                            pickled + base64 + SHA-256
                                            (the wire protocol's
                                            digest-protected box)
``GET  /v1/jobs/{id}/timeseries``           per-window rows of a
                                            ``timeseries=True`` run;
                                            ``?sm=N&since=K`` for
                                            incremental consumption
``GET  /v1/fleet``                          fleet + coordinator health
``GET  /v1/healthz``                        liveness + protocol versions
========================================  ================================

Trust model: result payloads are *pickles* (digest-protected against
corruption, not against attackers), exactly like the worker wire
protocol. The service is for trusted networks — bind it to loopback or
a private interface, never the open internet.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from repro.runner.cache import MISS, ResultCache, SharedDirectoryBackend
from repro.runner.executors import JobOutcome
from repro.runner.spec import JobSpec
from repro.runner.wire import PROTOCOL_VERSION, _pack
from repro.service.fleet import WorkerFleet
from repro.service.schema import JOB_SCHEMA_VERSION, SchemaError, decode_jobspec

#: Default TCP port; "VC" on a phone keypad would be a stretch — it is
#: simply a high port unlikely to collide with anything common.
DEFAULT_PORT = 8642

JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One logical simulation, however many clients asked for it."""

    id: str
    spec: JobSpec
    status: str = "queued"
    payload: Any = None
    error: str = ""
    source: str = ""  # "cache" | "fleet" | "degraded"
    seconds: float = 0.0
    submits: int = 1
    created: float = field(default_factory=time.time)
    finished: Optional[float] = None

    def summary(self) -> dict:
        return {
            "job_id": self.id,
            "label": self.spec.label,
            "app": self.spec.app,
            "arch": self.spec.arch,
            "scale": self.spec.scale,
            "status": self.status,
            "source": self.source,
            "seconds": self.seconds,
            "submits": self.submits,
            "error": self.error,
            "created": self.created,
            "finished": self.finished,
        }


class Coordinator:
    """Job table + fleet + shared cache; the service's single brain."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: "str | None" = None,
        use_cache: bool = True,
        worker_command: Optional[str] = None,
        job_timeout: Optional[float] = None,
        max_attempts: int = 3,
        backoff: float = 0.05,
    ) -> None:
        backend = SharedDirectoryBackend(cache_dir)
        self.cache = ResultCache(backend=backend) if use_cache else None
        self.fleet = WorkerFleet(
            size=workers,
            command=worker_command,
            cache_dir=(str(backend.root) if use_cache else None),
            job_timeout=job_timeout,
            max_attempts=max_attempts,
            backoff=backoff,
            on_outcome=self._on_outcome,
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self.started_at = time.time()
        self.degraded = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        self.fleet.start()

    def shutdown(self) -> None:
        self.fleet.shutdown()

    # -- submission ------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[Job, bool, bool]:
        """Register one spec; returns ``(job, coalesced, cached)``.

        Content-hash identity does the dedup: a second submission of an
        in-flight or finished key only bumps ``submits``.
        """
        key = spec.key
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                job.submits += 1
                return job, True, job.source == "cache"
            if self.cache is not None:
                payload = self.cache.get(self.cache.key_for(spec))
                if payload is not MISS:
                    job = Job(
                        id=key, spec=spec, status="done", payload=payload,
                        source="cache", finished=time.time(),
                    )
                    self._jobs[key] = job
                    return job, False, True
            job = Job(id=key, spec=spec)
            self._jobs[key] = job
            job.status = "running"
        self.fleet.submit(key, spec)
        return job, False, False

    # -- completion ------------------------------------------------------
    def _on_outcome(self, outcome: JobOutcome) -> None:
        """Fleet callback (dispatcher thread)."""
        if outcome.give_up:
            # Degrade tier: the fleet is out of attempts for this job;
            # run it in-process so the client still gets an answer.
            threading.Thread(
                target=self._run_degraded,
                args=(outcome.key,),
                name=f"degrade-{outcome.key[:8]}",
                daemon=True,
            ).start()
            return
        with self._lock:
            job = self._jobs.get(outcome.key)
            if job is None or job.status == "done":
                return
            if outcome.ok:
                job.status = "done"
                job.payload = outcome.payload
                job.seconds = outcome.seconds
                job.source = job.source or "fleet"
            else:
                job.status = "failed"
                job.error = outcome.error
            job.finished = time.time()
            self._done.notify_all()
        if outcome.ok and self.cache is not None:
            try:
                self.cache.put(self.cache.key_for(job.spec), outcome.payload)
            except Exception:
                pass  # workers write the store too; a miss re-simulates

    def _run_degraded(self, key: str) -> None:
        from repro.runner.engine import execute_job

        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.status in ("done", "failed"):
                return
            spec = job.spec
            job.source = "degraded"
            self.degraded += 1
        try:
            payload, seconds = execute_job(spec)
        except Exception as exc:
            with self._lock:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.time()
                self._done.notify_all()
            return
        self._on_outcome(
            JobOutcome(key=key, ok=True, payload=payload, seconds=seconds)
        )

    # -- queries ---------------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until ``job_id`` settles (done/failed) or timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.status in ("done", "failed"):
                    return job
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return job
                self._done.wait(timeout=0.1 if remaining is None
                                else min(0.1, remaining))

    def stats(self) -> dict:
        with self._lock:
            jobs = list(self._jobs.values())
            degraded = self.degraded
        counts = {state: 0 for state in JOB_STATES}
        submits = 0
        for job in jobs:
            counts[job.status] += 1
            submits += job.submits
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": counts,
            "submits": submits,
            "unique_jobs": len(jobs),
            "coalesced": submits - len(jobs),
            "degraded": degraded,
            "cache_dir": str(self.cache.root) if self.cache else None,
            "fleet": self.fleet.stats(),
        }


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------
class ServiceHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP view of the coordinator (``/v1/...``)."""

    #: Quieten the default per-request stderr logging.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def coordinator(self) -> Coordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------
    def _send_json(self, doc: dict, status: int = 200) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SchemaError("empty request body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"request body is not JSON: {exc}") from None

    # -- routes ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        if parsed.path != "/v1/jobs":
            self._error(404, f"no such endpoint: POST {parsed.path}")
            return
        try:
            spec = decode_jobspec(self._read_body())
        except SchemaError as exc:
            self._error(400, str(exc))
            return
        job, coalesced, cached = self.coordinator.submit(spec)
        self._send_json(
            {
                "job_id": job.id,
                "status": job.status,
                "coalesced": coalesced,
                "cached": cached,
                "schema": JOB_SCHEMA_VERSION,
            },
            status=200 if coalesced or cached else 201,
        )

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["v1", "healthz"]:
            fleet = self.coordinator.fleet.stats()
            self._send_json(
                {
                    "ok": True,
                    "proto": PROTOCOL_VERSION,
                    "schema": JOB_SCHEMA_VERSION,
                    "workers_alive": fleet["alive"],
                }
            )
            return
        if parts == ["v1", "fleet"]:
            self._send_json(self.coordinator.stats())
            return
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job = self.coordinator.job(parts[2])
            if job is None:
                self._error(404, f"unknown job {parts[2]!r}")
                return
            rest = parts[3:]
            if not rest:
                self._send_json(job.summary())
                return
            if rest == ["result"]:
                self._job_result(job)
                return
            if rest == ["timeseries"]:
                self._job_timeseries(job, query)
                return
        self._error(404, f"no such endpoint: GET {parsed.path}")

    def _job_result(self, job: Job) -> None:
        if job.status == "failed":
            self._error(500, job.error or "job failed")
            return
        if job.status != "done":
            self._send_json({"job_id": job.id, "status": job.status}, status=202)
            return
        self._send_json(
            {
                "job_id": job.id,
                "status": "done",
                "source": job.source,
                "seconds": job.seconds,
                "payload": _pack(job.payload),
            }
        )

    def _job_timeseries(self, job: Job, query: dict) -> None:
        if job.status == "failed":
            self._error(500, job.error or "job failed")
            return
        if job.status != "done":
            # In-flight: nothing recorded yet on this side of the wire.
            # The contract is incremental (``since``), so clients just
            # keep polling until rows appear.
            self._send_json(
                {"job_id": job.id, "status": job.status, "rows": [],
                 "next": 0},
                status=202,
            )
            return
        try:
            sm = int(query.get("sm", 0))
            since = int(query.get("since", 0))
        except ValueError:
            self._error(400, "sm and since must be integers")
            return
        series_list = getattr(job.payload, "timeseries", None)
        if not series_list:
            self._error(
                409,
                "job did not record timeseries; submit with "
                '{"options": {"timeseries": true}}',
            )
            return
        if sm < 0 or sm >= len(series_list):
            self._error(400, f"sm must be in [0, {len(series_list)})")
            return
        series = series_list[sm]
        rows = list(series)[since:]
        self._send_json(
            {
                "job_id": job.id,
                "status": "done",
                "sm": sm,
                "window_cycles": series.window_cycles,
                "dropped": series.dropped,
                "rows": rows,
                "next": since + len(rows),
            }
        )


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its coordinator."""

    daemon_threads = True

    def __init__(self, address: tuple, coordinator: Coordinator) -> None:
        super().__init__(address, ServiceHandler)
        self.coordinator = coordinator


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    coordinator: Optional[Coordinator] = None,
    **coordinator_kwargs: Any,
) -> ServiceServer:
    """Build and start a service (fleet spawned, HTTP socket bound).

    Returns the server; call ``serve_forever()`` on it (or drive it
    from a thread in tests). The caller owns shutdown:
    ``server.shutdown(); server.coordinator.shutdown()``.
    """
    coordinator = coordinator or Coordinator(**coordinator_kwargs)
    server = ServiceServer((host, port), coordinator)
    coordinator.start()
    return server
