"""A registered fleet of persistent ``python -m repro worker`` processes.

Where :class:`~repro.runner.executors.RemoteExecutor` is batch-shaped
(spawn, drain one sweep, shut down — the engine calls ``poll()`` from
its own loop), :class:`WorkerFleet` is *service*-shaped: workers are
spawned once and stay warm across arbitrarily many jobs from
arbitrarily many clients, and a dedicated dispatcher thread owns all
fleet I/O so HTTP handler threads never touch a worker pipe. Finished
jobs are delivered through an ``on_outcome`` callback (the
coordinator's job table) instead of a poll return value.

The wire contract and fault tiers are identical to the batch executor:

* workers speak the digest-protected line protocol of
  :mod:`repro.runner.wire` (hello first — including the ``proto``
  version field — then one result line per job line);
* a worker that dies, hangs past ``job_timeout``, emits garbage, or
  greets with a mismatched protocol version is **recycled** (killed
  and respawned) and its in-flight job **requeued** with bounded
  attempts and linear backoff;
* a job that exhausts its attempts comes back as a ``give_up``
  :class:`~repro.runner.executors.JobOutcome` — the coordinator's
  **degrade** tier then runs it in-process;
* a remote *simulation* error is final and is reported as a failed
  outcome (retrying a deterministic failure is pointless).

Workers are launched with ``--cache-dir ... --shared-cache`` when the
fleet is given a cache directory, so results land in the shared
read-through store as they are produced and a requeued duplicate is a
worker-side cache hit, not a second simulation.
"""

from __future__ import annotations

import queue
import shlex
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runner.executors import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_WORKER_COMMAND,
    JobOutcome,
    _worker_env,
)
from repro.runner.spec import JobSpec
from repro.runner.wire import (
    ProtocolMismatch,
    WireError,
    decode_hello,
    decode_result,
    encode_job,
)


@dataclass
class FleetWorker:
    """Book-keeping for one persistent worker process."""

    wid: int
    host: str
    proc: subprocess.Popen
    #: Key of the dispatched job, or ``None`` when idle.
    job_key: Optional[str] = None
    #: The queued-job record behind ``job_key`` (attempt counter lives
    #: there so a recycle can requeue with the right budget).
    current_job: "Optional[_QueuedJob]" = None
    deadline: Optional[float] = None
    greeted: bool = False
    recycled: bool = False
    jobs_done: int = 0
    spawned_at: float = field(default_factory=time.monotonic)

    @property
    def alive(self) -> bool:
        return not self.recycled and self.proc.poll() is None

    def to_dict(self) -> dict:
        return {
            "wid": self.wid,
            "host": self.host,
            "pid": self.proc.pid,
            "alive": self.alive,
            "greeted": self.greeted,
            "busy": self.job_key is not None,
            "job": self.job_key,
            "jobs_done": self.jobs_done,
            "uptime_seconds": round(time.monotonic() - self.spawned_at, 3),
        }


@dataclass
class _QueuedJob:
    key: str
    spec: JobSpec
    attempt: int = 1
    not_before: float = 0.0


class WorkerFleet:
    """Persistent workers + the dispatcher thread that feeds them.

    Parameters mirror :class:`~repro.runner.executors.RemoteExecutor`
    where they overlap; ``on_outcome`` is called (from the dispatcher
    thread) with one :class:`JobOutcome` per finished job.
    """

    def __init__(
        self,
        size: int = 2,
        hosts: Optional[list] = None,
        command: Optional[str] = None,
        cache_dir: "str | None" = None,
        job_timeout: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = 0.05,
        on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    ) -> None:
        self.hosts = list(hosts) if hosts else ["local"] * max(1, size)
        self.command = command or self._default_command(cache_dir)
        self.cache_dir = cache_dir
        self.job_timeout = job_timeout
        self.max_attempts = max(1, max_attempts)
        self.backoff = backoff
        self.on_outcome = on_outcome or (lambda outcome: None)

        # ``self._lock`` guards every field below it: the worker table,
        # the backlog, the health counters and the dispatcher handle.
        # Blocking work (Popen, pipe I/O, joins, on_outcome callbacks)
        # always happens *outside* the lock.
        self._workers: dict[int, FleetWorker] = {}
        self._events: "queue.Queue[tuple[int, str, str]]" = queue.Queue()
        self._backlog: deque[_QueuedJob] = deque()
        self._lock = threading.Lock()
        self._next_wid = 0
        self._stop = threading.Event()
        self._spawn_failures = 0
        # Health counters (surfaced by /v1/fleet).
        self.dispatched = 0
        self.completed = 0
        self.requeued = 0
        self.retried = 0
        self.worker_deaths = 0
        self.give_ups = 0
        #: Last permanent fleet-level error (e.g. a protocol mismatch).
        self.last_error = ""
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _default_command(cache_dir: "str | None") -> str:
        if cache_dir is None:
            return DEFAULT_WORKER_COMMAND
        return (
            DEFAULT_WORKER_COMMAND
            + f" --cache-dir {shlex.quote(str(cache_dir))} --shared-cache"
        )

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        for host in self.hosts:
            self._spawn(host)
        with self._lock:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="fleet-dispatch", daemon=True
            )
            self._thread.start()

    def shutdown(self, grace: float = 2.0) -> None:
        """Stop dispatching, close stdin pipes (worker EOF = shutdown),
        then kill stragglers. Leaves no orphaned processes behind."""
        self._stop.set()
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout=grace)
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                if worker.proc.stdin:
                    worker.proc.stdin.close()
            except OSError:
                pass
        deadline = time.monotonic() + grace
        for worker in workers:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                try:
                    worker.proc.wait(timeout=grace)
                except (subprocess.TimeoutExpired, OSError):
                    pass
            except OSError:
                pass

    # -- spawning --------------------------------------------------------
    def _argv(self, host: str) -> list:
        return shlex.split(self.command.format(python=sys.executable, host=host))

    def _spawn(self, host: str) -> Optional[FleetWorker]:
        """Launch one worker; the fork happens outside the lock (a slow
        exec must not stall every HTTP thread asking for stats)."""
        try:
            proc = subprocess.Popen(
                self._argv(host),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                bufsize=1,
                env=_worker_env(),
            )
        except (OSError, ValueError):
            with self._lock:
                self._spawn_failures += 1
            return None
        with self._lock:
            wid = self._next_wid
            self._next_wid += 1
            worker = FleetWorker(wid=wid, host=host, proc=proc)
            self._workers[wid] = worker
        threading.Thread(
            target=self._read_loop,
            args=(wid, proc),
            name=f"fleet-read-{wid}",
            daemon=True,
        ).start()
        return worker

    def _read_loop(self, wid: int, proc: subprocess.Popen) -> None:
        try:
            for line in proc.stdout:
                self._events.put((wid, "line", line))
        except (OSError, ValueError):
            pass
        self._events.put((wid, "eof", ""))

    def _ensure_workers(self) -> None:
        """Respawn until one worker per host entry is alive (takes the
        lock per step; spawning itself runs unlocked)."""
        with self._lock:
            alive = sum(1 for w in self._workers.values() if w.alive)
        for host in self.hosts[alive:]:
            with self._lock:
                give_up = (
                    self._spawn_failures >= len(self.hosts) * self.max_attempts
                )
            if give_up:
                break  # an unlaunchable template cannot fork-bomb the box
            self._spawn(host)

    # -- dispatch --------------------------------------------------------
    def submit(self, key: str, spec: JobSpec) -> None:
        """Enqueue one job (thread-safe; any thread may call)."""
        with self._lock:
            self._backlog.append(_QueuedJob(key=key, spec=spec))
        # Nudge the dispatcher without waiting for its poll timeout.
        self._events.put((-1, "wake", ""))

    def _recycle(self, worker: FleetWorker, reason: str) -> None:
        worker.recycled = True
        try:
            worker.proc.kill()
        except OSError:
            pass
        with self._lock:
            self.worker_deaths += 1
        if worker.job_key is not None:
            key, job = worker.job_key, worker.current_job
            worker.job_key = None
            worker.current_job = None
            worker.deadline = None
            self._requeue(key, job, reason)
        self._ensure_workers()

    def _requeue(self, key: str, job: _QueuedJob, reason: str) -> None:
        if job.attempt >= self.max_attempts:
            with self._lock:
                self.give_ups += 1
            # The callback may take the coordinator's own locks; never
            # invoke it while holding ours.
            self.on_outcome(
                JobOutcome(
                    key=key, ok=False, give_up=True,
                    error=f"{reason}; gave up after {job.attempt} attempts",
                )
            )
            return
        with self._lock:
            self.requeued += 1
            self._backlog.append(
                _QueuedJob(
                    key=key,
                    spec=job.spec,
                    attempt=job.attempt + 1,
                    not_before=time.monotonic() + self.backoff * job.attempt,
                )
            )

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        with self._lock:
            idle = deque(
                w for w in self._workers.values()
                if w.alive and w.greeted and w.job_key is None
            )
            pending = len(self._backlog)
            picked: list[tuple[FleetWorker, _QueuedJob]] = []
            for _ in range(pending):
                if not idle:
                    break
                job = self._backlog.popleft()
                if job.not_before > now:
                    self._backlog.append(job)
                    continue
                picked.append((idle.popleft(), job))
        for worker, job in picked:
            with self._lock:
                if job.attempt > 1:
                    self.retried += 1
                worker.job_key = job.key
                worker.current_job = job
                worker.deadline = (
                    now + self.job_timeout if self.job_timeout else None
                )
                self.dispatched += 1
            try:
                # Pipe I/O stays outside the lock: a worker with a full
                # stdin buffer must not stall stats()/submit() callers.
                worker.proc.stdin.write(encode_job(job.key, job.spec) + "\n")
                worker.proc.stdin.flush()
            except (OSError, ValueError):
                self._recycle(worker, "worker pipe broke on dispatch")

    def _handle_line(self, worker: FleetWorker, line: str) -> None:
        line = line.strip()
        if not line:
            return
        if not worker.greeted:
            try:
                decode_hello(line)
            except ProtocolMismatch as exc:
                # Version skew is permanent for this binary; recycling
                # would spin. Park the worker and surface the reason.
                worker.recycled = True
                try:
                    worker.proc.kill()
                except OSError:
                    pass
                with self._lock:
                    self.worker_deaths += 1
                    self.last_error = str(exc)
                return
            except WireError:
                self._recycle(
                    worker, f"worker spoke garbage instead of hello: {line[:80]!r}"
                )
                return
            worker.greeted = True
            return
        try:
            result = decode_result(line)
        except WireError as exc:
            self._recycle(worker, f"corrupted result line ({exc})")
            return
        if worker.job_key is None or result.key != worker.job_key:
            self._recycle(
                worker, f"result for unexpected key {result.key[:12]!r}"
            )
            return
        key = worker.job_key
        worker.job_key = None
        worker.current_job = None
        worker.deadline = None
        worker.jobs_done += 1
        with self._lock:
            self.completed += 1
        if result.ok:
            self.on_outcome(
                JobOutcome(
                    key=key, ok=True, payload=result.payload,
                    seconds=result.seconds,
                )
            )
        else:
            # Remote simulation error: final, no retry.
            self.on_outcome(JobOutcome(key=key, ok=False, error=result.error))

    def _check_deadlines(self) -> None:
        if not self.job_timeout:
            return
        now = time.monotonic()
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            if worker.alive and worker.deadline and worker.deadline <= now:
                self._recycle(
                    worker, f"job exceeded timeout of {self.job_timeout}s"
                )

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._dispatch_ready()
            try:
                wid, kind, line = self._events.get(timeout=0.1)
            except queue.Empty:
                self._check_deadlines()
                with self._lock:
                    backlogged = bool(self._backlog)
                if backlogged:
                    self._ensure_workers()
                continue
            with self._lock:
                worker = self._workers.get(wid)
            if kind == "line":
                if worker is not None and not worker.recycled:
                    self._handle_line(worker, line)
            elif kind == "eof":
                if worker is not None and not worker.recycled:
                    self._recycle(worker, "worker died")
            # "wake" events only interrupt the get() so new submissions
            # dispatch immediately.

    # -- observability ---------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            workers = [w.to_dict() for w in self._workers.values() if not w.recycled]
            return {
                "size": len(self.hosts),
                "alive": sum(1 for w in workers if w["alive"]),
                "backlog": len(self._backlog),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "retried": self.retried,
                "requeued": self.requeued,
                "worker_deaths": self.worker_deaths,
                "give_ups": self.give_ups,
                "last_error": self.last_error,
                "workers": workers,
            }

    def worker_pids(self) -> list:
        """PIDs of every process the fleet ever spawned (orphan audit)."""
        with self._lock:
            return [w.proc.pid for w in self._workers.values()]
