"""Versioned JSON encoding of :class:`~repro.runner.spec.JobSpec`.

The HTTP coordinator accepts jobs as JSON documents::

    {
      "schema": 1,
      "app": "S2",
      "arch": "linebacker",
      "scale": 0.25,
      "config": {"gpu": {...}, "linebacker": {...},
                 "max_cycles": 400000, "seed": 2019},
      "options": {"timeseries": true},
      "overrides": {"cta_limit": 3}
    }

Design rules:

* **Versioned**: ``schema`` is mandatory; an unknown version is
  rejected with a :class:`SchemaError` naming both versions, so the
  coordinator and clients can evolve independently (mirroring the wire
  protocol's ``proto`` handshake field).
* **Round-trip exact**: ``decode_jobspec(encode_jobspec(spec))``
  reproduces the spec *including its content hash* — JSON floats
  round-trip via shortest ``repr`` in Python, dataclass fields are
  carried exhaustively, and :class:`~repro.options.RunOptions` fields
  fold into the same sorted override params the in-process path
  produces. A job submitted over HTTP therefore hits the same cache
  entry an inline run would.
* **Closed world**: unknown config fields, unknown option names,
  non-scalar override values and unregistered apps/architectures are
  all rejected at decode time with a message a remote client can act
  on, instead of surfacing as a pickled traceback mid-simulation.

``config`` is optional (defaults to :func:`repro.config.scaled_config`
with the submitted ``sms`` hint, or its plain default); ``options`` and
``overrides`` default to empty.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.config import GPUConfig, LinebackerConfig, SimulationConfig
from repro.options import RUN_OPTION_FIELDS, RunOptions
from repro.runner.spec import JobSpec

#: Bump on any incompatible change to the JSON job document shape.
#: v2: optional ``workload`` member carrying a declarative workload
#: document (``repro.workloads.spec``) for non-Table-2 apps.
#: v3: ``options.backend`` selects the execution engine; decoders
#: validate the name against the backend registry and the arch's
#: ``supports_backends`` capability.
JOB_SCHEMA_VERSION = 3

#: Override keys whose values are dataclasses (encoded as field dicts).
_DATACLASS_OVERRIDES = {"lb_config": LinebackerConfig}

_SCALARS = (bool, int, float, str, type(None))


class SchemaError(ValueError):
    """A job document that cannot be (safely) decoded."""


def _encode_dataclass(value: Any) -> dict:
    return dataclasses.asdict(value)


def _decode_dataclass(cls: type, doc: Any, where: str) -> Any:
    if not isinstance(doc, Mapping):
        raise SchemaError(f"{where}: expected an object, got {type(doc).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(doc) - known
    if unknown:
        raise SchemaError(
            f"{where}: unknown field(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    try:
        return cls(**doc)
    except TypeError as exc:
        raise SchemaError(f"{where}: {exc}") from None


def encode_config(config: SimulationConfig) -> dict:
    return {
        "gpu": _encode_dataclass(config.gpu),
        "linebacker": _encode_dataclass(config.linebacker),
        "max_cycles": config.max_cycles,
        "seed": config.seed,
    }


def decode_config(doc: Any) -> SimulationConfig:
    if not isinstance(doc, Mapping):
        raise SchemaError(f"config: expected an object, got {type(doc).__name__}")
    unknown = set(doc) - {"gpu", "linebacker", "max_cycles", "seed"}
    if unknown:
        raise SchemaError(f"config: unknown field(s) {sorted(unknown)}")
    base = SimulationConfig()
    return SimulationConfig(
        gpu=(
            _decode_dataclass(GPUConfig, doc["gpu"], "config.gpu")
            if "gpu" in doc
            else base.gpu
        ),
        linebacker=(
            _decode_dataclass(
                LinebackerConfig, doc["linebacker"], "config.linebacker"
            )
            if "linebacker" in doc
            else base.linebacker
        ),
        max_cycles=int(doc.get("max_cycles", base.max_cycles)),
        seed=int(doc.get("seed", base.seed)),
    )


def encode_jobspec(spec: JobSpec) -> dict:
    """The JSON job document for ``spec`` (schema-versioned)."""
    options, leftover = RunOptions.from_overrides(spec.overrides)
    overrides: dict[str, Any] = {}
    for name, value in leftover.items():
        cls = _DATACLASS_OVERRIDES.get(name)
        if cls is not None and isinstance(value, cls):
            overrides[name] = _encode_dataclass(value)
        elif isinstance(value, _SCALARS):
            overrides[name] = value
        else:
            raise SchemaError(
                f"override {name!r} carries a {type(value).__name__}, which "
                "the JSON job schema cannot transport"
            )
    doc = {
        "schema": JOB_SCHEMA_VERSION,
        "app": spec.app,
        "arch": spec.arch,
        "scale": spec.scale,
        "config": encode_config(spec.config),
    }
    opt_fields = options.to_overrides()
    if opt_fields:
        doc["options"] = opt_fields
    if overrides:
        doc["overrides"] = overrides
    if spec.workload is not None:
        from repro.workloads.spec import encode_workload

        doc["workload"] = encode_workload(spec.workload)
    return doc


def decode_jobspec(doc: Any) -> JobSpec:
    """Validate and decode one JSON job document into a :class:`JobSpec`."""
    if not isinstance(doc, Mapping):
        raise SchemaError(f"job: expected an object, got {type(doc).__name__}")
    version = doc.get("schema")
    if version != JOB_SCHEMA_VERSION:
        raise SchemaError(
            f"job schema version mismatch (got {version!r}, this service "
            f"speaks {JOB_SCHEMA_VERSION}); upgrade the older peer"
        )
    unknown = set(doc) - {"schema", "app", "arch", "scale", "config",
                          "options", "overrides", "workload"}
    if unknown:
        raise SchemaError(f"job: unknown field(s) {sorted(unknown)}")

    app = doc.get("app")
    arch = doc.get("arch")
    if not isinstance(app, str) or not isinstance(arch, str):
        raise SchemaError("job: 'app' and 'arch' must be strings")
    # Validate against the registries up front so a typo comes back as
    # a 400 with the known names, not a worker-side traceback.
    from repro.runner.registry import ARCHITECTURES
    from repro.workloads.spec import (
        WorkloadSpecError,
        decode_workload,
        registered_workload,
    )
    from repro.workloads.suite import ALL_APPS

    workload = None
    if "workload" in doc:
        try:
            workload = decode_workload(doc["workload"])
        except WorkloadSpecError as exc:
            raise SchemaError(f"workload: {exc}") from None
        if workload.name != app:
            raise SchemaError(
                f"job app {app!r} does not match its workload document "
                f"{workload.name!r}"
            )
        if app in ALL_APPS:
            raise SchemaError(
                f"app {app!r} is a built-in Table-2 app and cannot carry "
                "a workload document"
            )
    elif app not in ALL_APPS:
        # A coordinator may have the workload registered locally (e.g.
        # loaded from a corpus dir at boot); otherwise the name is a typo.
        workload = registered_workload(app)
        if workload is None:
            raise SchemaError(
                f"unknown app {app!r}; known: {', '.join(ALL_APPS)} "
                "(or attach a 'workload' document)"
            )
    if arch not in ARCHITECTURES:
        raise SchemaError(
            f"unknown architecture {arch!r}; known: "
            f"{', '.join(sorted(ARCHITECTURES))}"
        )

    scale = doc.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool):
        raise SchemaError("job: 'scale' must be a number")

    config = (
        decode_config(doc["config"])
        if "config" in doc
        else SimulationConfig()
    )

    opt_doc = doc.get("options", {})
    if not isinstance(opt_doc, Mapping):
        raise SchemaError("job: 'options' must be an object")
    unknown = set(opt_doc) - set(RUN_OPTION_FIELDS)
    if unknown:
        raise SchemaError(
            f"options: unknown field(s) {sorted(unknown)}; "
            f"known: {sorted(RUN_OPTION_FIELDS)}"
        )
    try:
        options = RunOptions(**opt_doc)
    except TypeError as exc:
        raise SchemaError(f"options: {exc}") from None
    if options.backend is not None:
        # Reject unknown engines and arch/backend mismatches at decode
        # time: a coordinator-side 400 names the fix, whereas a
        # worker-side BackendFallbackWarning is invisible to the
        # remote client that pinned the backend.
        from repro.engine import backend_names

        if options.backend not in backend_names():
            raise SchemaError(
                f"options.backend: unknown backend {options.backend!r}; "
                f"known: {', '.join(backend_names())}"
            )
        supported = ARCHITECTURES[arch].supports_backends
        if options.backend not in supported:
            raise SchemaError(
                f"options.backend: architecture {arch!r} does not support "
                f"the {options.backend!r} backend (supported: "
                f"{', '.join(supported)})"
            )

    over_doc = doc.get("overrides", {})
    if not isinstance(over_doc, Mapping):
        raise SchemaError("job: 'overrides' must be an object")
    overrides: dict[str, Any] = {}
    for name, value in over_doc.items():
        cls = _DATACLASS_OVERRIDES.get(name)
        if cls is not None:
            overrides[name] = _decode_dataclass(cls, value, f"overrides.{name}")
        elif isinstance(value, _SCALARS):
            overrides[name] = value
        else:
            raise SchemaError(
                f"overrides.{name}: unsupported value type "
                f"{type(value).__name__}"
            )

    return JobSpec.build(
        app=app,
        arch=arch,
        config=config,
        scale=float(scale),
        overrides=overrides,
        options=options,
        workload=workload,
    )
