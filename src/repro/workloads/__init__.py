"""Synthetic workload suite standing in for the paper's 20 CUDA
applications (Table 2)."""

from repro.workloads.generator import (
    AppSpec,
    LoadSpec,
    Pattern,
    Scope,
    StoreSpec,
    build_kernel,
    footprint_bytes,
)
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.suite import (
    ALL_APPS,
    APP_SPECS,
    CACHE_INSENSITIVE,
    CACHE_SENSITIVE,
    app_spec,
    kernel_for,
)

__all__ = [
    "ALL_APPS",
    "APP_SPECS",
    "AppSpec",
    "CACHE_INSENSITIVE",
    "CACHE_SENSITIVE",
    "LoadSpec",
    "Pattern",
    "Scope",
    "StoreSpec",
    "app_spec",
    "build_kernel",
    "footprint_bytes",
    "kernel_for",
    "load_trace",
    "save_trace",
]
