"""Analytic workload classifier: the paper's Fig 1-4 rules, re-derived.

The motivational study (Sections 2.2-2.3) characterizes applications by
*machine-checkable* properties of their memory traces:

* **Streaming** (Fig 3): a static load is streaming when it would still
  miss on more than 95% of its accesses with an *infinite* cache — its
  lines are dead on arrival. We measure exactly that: the fraction of
  line touches that are cold (first-ever touch of the line) across the
  sampled warps, which is the infinite-cache miss ratio.
* **Locality is a per-static-load property, consistent across warps**
  (Section 2.3): every sampled warp of a load must reach the same
  streaming verdict; the per-warp cold ratios of a reused load cluster.
* **Sharing scope** (Fig 2's intra- vs inter-warp reuse): whether a
  load's line set overlaps between warps of one CTA (``intra-cta``),
  between CTAs (``inter-cta``), or not at all (``private``).
* **Divergence**: mean lines touched per access; a coalesced load
  touches one line, graph-style gather loads touch several.
* **Statically unused registers** (Fig 4): the fraction of the 256 KB
  register file no CTA ever occupies at full occupancy — the space
  Linebacker's victim storage lives in.

Everything is computed from a bounded *trace prefix* (no simulation),
so classification is cheap enough to gate every fuzzed spec, and the
same code asserts the 20 built-in apps land in their published classes
(``tests/test_classify.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Optional, Sequence

from repro.config import GPUConfig
from repro.gpu.gpu import statically_unused_register_bytes
from repro.gpu.isa import Op
from repro.gpu.trace import KernelTrace
from repro.workloads.spec import WorkloadSpec, build_workload
from repro.workloads.suite import app_spec, kernel_for

#: The paper's streaming criterion: >95% misses under an infinite cache.
STREAMING_MISS_THRESHOLD = 0.95

#: Max spread between warps' *self* cold ratios (own unique lines /
#: own touches) for the "consistent across warps" property. Warps of
#: one static load run the same loop structure, so their self-locality
#: clusters tightly; hash-based divergent patterns add a few percent
#: of birthday noise.
CONSISTENCY_SPREAD = 0.2

#: Default cap on instructions materialized per sampled warp.
MAX_INSTRUCTIONS_PER_WARP = 20_000


@dataclass(frozen=True)
class LoadClass:
    """Measured Fig 1-3 characteristics of one static load."""

    pc: int
    accesses: int                 # dynamic load instructions sampled
    line_touches: int             # lines touched (>= accesses if divergent)
    unique_lines: int
    infinite_miss_ratio: float    # cold touches / touches (infinite cache)
    mean_lines_per_access: float
    streaming: bool               # paper: ratio > 0.95
    uncoalesced: bool             # mean lines per access > 1
    sharing: str                  # "inter-cta" | "intra-cta" | "private"
    consistent_across_warps: bool

    @property
    def reuse_factor(self) -> float:
        """Mean touches per distinct line (1.0 = pure streaming)."""
        return self.line_touches / max(1, self.unique_lines)


@dataclass(frozen=True)
class WorkloadClassification:
    """Whole-workload view: per-load classes plus Fig 4's register slack."""

    name: str
    loads: tuple[LoadClass, ...]
    unused_register_fraction: float

    def load_class(self, pc: int) -> LoadClass:
        for lc in self.loads:
            if lc.pc == pc:
                return lc
        raise KeyError(f"{self.name}: no load with pc {pc}")

    @property
    def streaming_pcs(self) -> tuple[int, ...]:
        return tuple(lc.pc for lc in self.loads if lc.streaming)


@dataclass
class _PCStats:
    accesses: int = 0
    touches: int = 0
    lines: set = None
    per_warp: dict = None  # (cta, warp) -> [touches, line_set]

    def __post_init__(self) -> None:
        self.lines = set()
        self.per_warp = {}


def _default_sample_ctas(num_ctas: int, stride_groups: int = 1) -> tuple[int, ...]:
    """Sample CTAs covering every round-robin tenant group twice.

    ``stride_groups`` is the tenant count for compiled workloads (CTA
    ``i`` runs tenant ``i % groups``); two CTAs per group make
    inter-CTA sharing observable for every static load.
    """
    want = []
    for group in range(stride_groups):
        want.append(group)
        want.append(group + stride_groups)
    return tuple(sorted({c for c in want if c < num_ctas}))


def classify_kernel(
    kernel: KernelTrace,
    *,
    config: Optional[GPUConfig] = None,
    sample_ctas: Optional[Sequence[int]] = None,
    max_instructions_per_warp: int = MAX_INSTRUCTIONS_PER_WARP,
    tenant_groups: int = 1,
) -> WorkloadClassification:
    """Classify every static load of ``kernel`` from a trace prefix."""
    config = config or GPUConfig()
    if sample_ctas is None:
        sample_ctas = _default_sample_ctas(kernel.num_ctas, tenant_groups)

    stats: dict[int, _PCStats] = {}
    for cta in sample_ctas:
        for warp in range(kernel.warps_per_cta):
            for inst in islice(
                kernel.warp_trace(cta, warp), max_instructions_per_warp
            ):
                if inst.op is not Op.LOAD:
                    continue
                pcs = stats.get(inst.pc)
                if pcs is None:
                    pcs = stats[inst.pc] = _PCStats()
                wkey = (cta, warp)
                wstat = pcs.per_warp.get(wkey)
                if wstat is None:
                    wstat = pcs.per_warp[wkey] = [0, set()]
                pcs.accesses += 1
                for line in inst.line_addrs:
                    pcs.touches += 1
                    wstat[0] += 1
                    pcs.lines.add(line)
                    wstat[1].add(line)

    loads = tuple(
        _finalize(pc, pcs) for pc, pcs in sorted(stats.items())
    )
    sur = statically_unused_register_bytes(config, kernel)
    return WorkloadClassification(
        name=kernel.name,
        loads=loads,
        unused_register_fraction=sur / config.register_file_bytes,
    )


def _finalize(pc: int, pcs: _PCStats) -> LoadClass:
    ratio = len(pcs.lines) / max(1, pcs.touches)
    streaming = ratio > STREAMING_MISS_THRESHOLD

    # Sharing: overlap of per-warp line sets, split by whether the
    # overlapping warps live in the same CTA.
    inter = intra = False
    warps = list(pcs.per_warp.items())
    for i, ((cta_a, _), stat_a) in enumerate(warps):
        for (cta_b, _), stat_b in warps[i + 1:]:
            if stat_a[1].isdisjoint(stat_b[1]):
                continue
            if cta_a == cta_b:
                intra = True
            else:
                inter = True
        if inter and intra:
            break
    sharing = "inter-cta" if inter else ("intra-cta" if intra else "private")

    # Consistency (paper Section 2.3): locality is a property of the
    # static load, so every warp's *self* cold ratio (its own unique
    # lines over its own touches — order-independent, unlike a pooled
    # first-touch count) must cluster. Divergent loads whose reuse is
    # purely inter-warp still cluster: each warp sees the same
    # birthday statistics over the shared region.
    ratios = [len(lines) / touches for touches, lines in pcs.per_warp.values()
              if touches > 0]
    consistent = not ratios or (max(ratios) - min(ratios)) <= CONSISTENCY_SPREAD

    return LoadClass(
        pc=pc,
        accesses=pcs.accesses,
        line_touches=pcs.touches,
        unique_lines=len(pcs.lines),
        infinite_miss_ratio=ratio,
        mean_lines_per_access=pcs.touches / max(1, pcs.accesses),
        streaming=streaming,
        uncoalesced=pcs.touches > pcs.accesses,
        sharing=sharing,
        consistent_across_warps=consistent,
    )


def classify_workload(
    spec: WorkloadSpec, scale: float = 1.0, **kwargs
) -> WorkloadClassification:
    """Classify a declarative workload (tenant-aware CTA sampling)."""
    kernel = build_workload(spec, scale)
    kwargs.setdefault("tenant_groups", len(spec.tenants))
    return classify_kernel(kernel, **kwargs)


def classify_app(name: str, scale: float = 1.0, **kwargs) -> WorkloadClassification:
    """Classify one of the 20 built-in Table-2 apps."""
    return classify_kernel(kernel_for(name, scale), **kwargs)


# ---------------------------------------------------------------------------
# Expected classes (the "published" labels the suite must land in)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExpectedLoadClass:
    """What the generator *declares* a load to be; the classifier must
    re-derive it from the trace alone."""

    pc: int
    streaming: bool
    uncoalesced: bool
    sharing: str


def expected_classes_for_app(name: str) -> tuple[ExpectedLoadClass, ...]:
    """Ground-truth per-load labels for a built-in app.

    Derived from the spec literals (pattern/scope/lines_per_access),
    i.e. from Table 2 and Figs 2-3 as encoded in the suite — *not*
    from the trace, which is the classifier's job to measure.
    """
    from repro.workloads.generator import Pattern, Scope

    spec = app_spec(name)
    out = []
    for ld in spec.loads:
        streaming = ld.pattern is Pattern.STREAM
        if streaming:
            # A stream touches each line exactly once, so no two warps
            # ever meet on a line regardless of declared scope.
            sharing = "private"
        elif ld.scope is Scope.GLOBAL:
            sharing = "inter-cta"
        elif ld.scope is Scope.CTA:
            sharing = "intra-cta"
        else:
            sharing = "private"
        out.append(ExpectedLoadClass(
            pc=ld.pc,
            streaming=streaming,
            uncoalesced=ld.lines_per_access > 1,
            sharing=sharing,
        ))
    return tuple(out)


def check_expected_classes(
    classification: WorkloadClassification,
    expected: Iterable[ExpectedLoadClass],
) -> list[str]:
    """Compare measured classes against ground truth; returns mismatches
    as human-readable strings (empty list = the workload passes)."""
    problems = []
    measured = {lc.pc: lc for lc in classification.loads}
    for exp in expected:
        lc = measured.get(exp.pc)
        if lc is None:
            problems.append(f"pc {exp.pc}: never observed in the trace prefix")
            continue
        if lc.streaming != exp.streaming:
            problems.append(
                f"pc {exp.pc}: streaming={lc.streaming} (cold ratio "
                f"{lc.infinite_miss_ratio:.3f}), expected {exp.streaming}"
            )
        if lc.uncoalesced != exp.uncoalesced:
            problems.append(
                f"pc {exp.pc}: uncoalesced={lc.uncoalesced} "
                f"(mean lines/access {lc.mean_lines_per_access:.2f}), "
                f"expected {exp.uncoalesced}"
            )
        if lc.sharing != exp.sharing:
            problems.append(
                f"pc {exp.pc}: sharing={lc.sharing!r}, expected {exp.sharing!r}"
            )
        if not lc.consistent_across_warps:
            problems.append(
                f"pc {exp.pc}: per-warp locality disagrees with the pooled "
                "verdict (paper Section 2.3 expects consistency)"
            )
    return problems
