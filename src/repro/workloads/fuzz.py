"""Seeded scenario fuzzer with paper-rule classification gates.

The 20 Table-2 apps pin the *published* operating points; this module
generates workloads the suite never visits — LRU-adversarial
thrashers, phase-shifting working sets, multi-kernel sequences,
co-resident multi-tenant kernels, and register-pressure extremes — and
holds every one of them to two bars:

1. **Classification gates** (:func:`check_gates`): a fuzzed spec is a
   *real* scenario, not noise. The analytic classifier must re-derive
   exactly what the spec declares, per static load: streaming PCs
   classify streaming (and never revisit a line in the sampled
   prefix), reuse/divergent PCs do not, coalescing and sharing scopes
   match, and per-warp locality is consistent (paper Section 2.3).
   The JSON document round-trips bit-exactly, and trace generation is
   deterministic.
2. **Engine invariants** (:func:`differential_check`): simulating the
   spec under Linebacker, Best-SWL and the baseline must preserve the
   conservation laws of the memory pipeline (every load line is
   exactly one of L1 hit / victim hit / miss / bypass; cold +
   capacity misses = probe misses), the VTT structural properties
   from ``tests/test_properties.py`` (valid entries hold unique
   register numbers inside their partition's range), backup/restore
   conservation (no restore without a backup), and inline-vs-loopback
   executor **bit-identity** on the full statistics fingerprint.

Generation is deterministic per ``(seed, index)`` — a CI failure
reproduces locally from the seed alone — and every generated spec
validates under :func:`repro.workloads.spec.validate_workload`. The
generator deliberately constrains itself so the gates are *provably*
reachable (e.g. a REUSE working set never exceeds 3/4 of the lines a
warp touches, so it can never straddle the streaming threshold; a
DIVERGENT region is at most a third of a warp's draws, so birthday
statistics keep per-warp locality tightly clustered).

``python -m repro fuzz`` drives this end to end; ``minimize`` shrinks
a failing spec greedily while the caller's predicate keeps failing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.config import scaled_config
from repro.options import RunOptions
from repro.workloads.classify import WorkloadClassification, classify_workload
from repro.workloads.generator import LoadSpec, Pattern, Scope, StoreSpec
from repro.workloads.spec import (
    KernelPhase,
    TenantSpec,
    WorkloadSpec,
    WorkloadSpecError,
    build_workload,
    decode_workload,
    encode_workload,
    validate_workload,
    workload_hash,
)

#: Scenario families, cycled by corpus index so every corpus of >= 4
#: specs exercises all of them.
FAMILIES = ("thrash", "phase_shift", "multi_tenant", "mixed")

# Suite-style PC spacing (avoids hashed-PC collisions within a spec).
_PC_BASE = 0x100
_PC_STEP = 0x104
_STORE_PC_BASE = 0x1510


def _load_pc(slot: int) -> int:
    return _PC_BASE + _PC_STEP * slot


def _store_pc(slot: int) -> int:
    return _STORE_PC_BASE + _PC_STEP * slot


# ---------------------------------------------------------------------------
# Constrained load generators (gate-reachable by construction)
# ---------------------------------------------------------------------------
def _coprime_ws(rng: random.Random, stride: int, lo: int, hi: int) -> int:
    """A working-set size in [lo, hi] coprime with ``stride``, so a
    strided REUSE sweep covers the whole region (sharing scopes stay
    observable and coverage analysis stays exact)."""
    hi = max(lo, hi)
    ws = rng.randint(lo, hi)
    while ws > 1 and math.gcd(stride, ws) != 1:
        ws -= 1
    return max(1, ws)


def _reuse_load(
    rng: random.Random,
    pc: int,
    scope: Scope,
    iterations: int,
    *,
    thrash: bool = False,
) -> LoadSpec:
    burst = 1 if thrash else rng.choice((1, 2, 4))
    weight = rng.choice((1, 2))
    # Cap: a warp's sweep must wrap the region (ws <= 3/4 of distinct
    # offsets), so the load can never classify as streaming and every
    # sharing scope overlap is guaranteed, not probabilistic.
    cap = max(4, (3 * (iterations // burst)) // 4)
    lo = min(cap, 48 if thrash else 4)
    stride = rng.choice((1, 1, 1, 2, 3, 5))
    ws = _coprime_ws(rng, stride, lo, cap)
    return LoadSpec(pc=pc, pattern=Pattern.REUSE, working_set_lines=ws,
                    scope=scope, stride=stride, weight=weight,
                    reuse_burst=burst)


def _divergent_load(
    rng: random.Random, pc: int, scope: Scope, iterations: int
) -> LoadSpec:
    weight = rng.choice((1, 2))
    lines_per_access = rng.choice((1, 1, 2, 4))
    draws = iterations * weight * lines_per_access
    # Region at most a third of a warp's draws: pooled cold ratio
    # lands far below the streaming threshold and per-warp ratios
    # cluster (birthday statistics with lambda >= 3).
    ws = rng.randint(8, max(8, draws // 3))
    return LoadSpec(pc=pc, pattern=Pattern.DIVERGENT, working_set_lines=ws,
                    scope=scope, lines_per_access=lines_per_access,
                    weight=weight)


def _stream_load(rng: random.Random, pc: int) -> LoadSpec:
    return LoadSpec(pc=pc, pattern=Pattern.STREAM, working_set_lines=0,
                    weight=rng.choice((1, 2)))


def _any_scope(rng: random.Random) -> Scope:
    return rng.choice((Scope.GLOBAL, Scope.CTA, Scope.WARP))


def _maybe_store(rng: random.Random, slot: int) -> tuple[StoreSpec, ...]:
    if rng.random() < 0.4:
        return (StoreSpec(pc=_store_pc(slot),
                          every_iterations=rng.choice((4, 8, 16))),)
    return ()


# ---------------------------------------------------------------------------
# Scenario families
# ---------------------------------------------------------------------------
def _fuzz_thrash(rng: random.Random) -> tuple[int, int, tuple[TenantSpec, ...]]:
    """LRU-adversarial cyclic sweeps: burst-1 REUSE with working sets
    sized against the 384-line L1, multiple resident CTAs."""
    iterations = rng.randint(96, 160)
    loads = [_reuse_load(rng, _load_pc(0), rng.choice((Scope.CTA, Scope.GLOBAL)),
                         iterations, thrash=True)]
    if rng.random() < 0.5:
        loads.append(_stream_load(rng, _load_pc(1)))
    phase = KernelPhase(iterations=iterations, loads=tuple(loads),
                        stores=_maybe_store(rng, 0),
                        alu_per_iteration=rng.randint(1, 4))
    num_ctas = rng.randint(8, 16)
    warps = rng.randint(2, 4)
    return num_ctas, warps, (TenantSpec(name="thrash", phases=(phase,)),)


def _fuzz_phase_shift(
    rng: random.Random,
) -> tuple[int, int, tuple[TenantSpec, ...]]:
    """Multi-kernel sequences whose working sets shift phase to phase:
    the same static loads (fixed pattern/scope per PC) re-rolled with
    new sizes/strides, defeating any one-shot window selection."""
    num_phases = rng.randint(2, 4)
    slots = []
    for slot in range(rng.randint(1, 3)):
        pattern = rng.choice((Pattern.REUSE, Pattern.REUSE, Pattern.DIVERGENT))
        scope = _any_scope(rng)
        # CTA/WARP scopes carve per-entity sub-regions of size ws
        # (base + entity * ws): re-rolling ws across phases would alias
        # one entity's phase-2 region onto another's phase-1 region and
        # turn a declared-private load into observed sharing. Scoped
        # slots therefore pin ws for the whole sequence; only GLOBAL
        # slots get genuinely phase-shifting working sets.
        if scope is Scope.GLOBAL:
            fixed_ws = None
        elif pattern is Pattern.REUSE:
            fixed_ws = rng.randint(4, 16)
        else:
            fixed_ws = 8  # <= min draws (24 iterations) / 3
        slots.append((slot, pattern, scope, fixed_ws))
    stream_slot = len(slots)
    phases = []
    for pi in range(num_phases):
        iterations = rng.randint(24, 64)
        loads = []
        for slot, pattern, scope, fixed_ws in slots:
            if pattern is Pattern.REUSE:
                if fixed_ws is None:
                    loads.append(_reuse_load(rng, _load_pc(slot), scope,
                                             iterations,
                                             thrash=rng.random() < 0.3))
                else:
                    stride = rng.choice([s for s in (1, 2, 3, 5)
                                         if math.gcd(s, fixed_ws) == 1])
                    loads.append(LoadSpec(
                        pc=_load_pc(slot), pattern=Pattern.REUSE,
                        working_set_lines=fixed_ws, scope=scope,
                        stride=stride, weight=rng.choice((1, 2)),
                        reuse_burst=1,
                    ))
            elif fixed_ws is None:
                loads.append(_divergent_load(rng, _load_pc(slot), scope,
                                             iterations))
            else:
                loads.append(LoadSpec(
                    pc=_load_pc(slot), pattern=Pattern.DIVERGENT,
                    working_set_lines=fixed_ws, scope=scope,
                    lines_per_access=rng.choice((1, 2)),
                    weight=rng.choice((1, 2)),
                ))
        if rng.random() < 0.3:
            # Streams touch each line once, so each phase gets its own PC.
            loads.append(_stream_load(rng, _load_pc(stream_slot + pi)))
        phases.append(KernelPhase(
            iterations=iterations, loads=tuple(loads),
            stores=_maybe_store(rng, pi),
            alu_per_iteration=rng.randint(1, 6),
        ))
    num_ctas = rng.randint(6, 16)
    warps = rng.randint(2, 4)
    return num_ctas, warps, (TenantSpec(name="phases", phases=tuple(phases)),)


def _fuzz_multi_tenant(
    rng: random.Random,
) -> tuple[int, int, tuple[TenantSpec, ...]]:
    """Co-resident kernels with contrasting locality: a cache-friendly
    tenant sharing the L1 with a polluting one — the regime where
    victim-line preservation must not corrupt the friendly tenant."""
    num_tenants = rng.randint(2, 3)
    tenants = []
    slot = 0
    for ti in range(num_tenants):
        iterations = rng.randint(32, 80)
        friendly = ti == 0 or rng.random() < 0.4
        loads = []
        if friendly:
            loads.append(_reuse_load(rng, _load_pc(slot),
                                     rng.choice((Scope.CTA, Scope.GLOBAL)),
                                     iterations))
            slot += 1
            if rng.random() < 0.4:
                loads.append(_divergent_load(rng, _load_pc(slot),
                                             _any_scope(rng), iterations))
                slot += 1
        else:
            loads.append(rng.choice((
                _stream_load(rng, _load_pc(slot)),
                _reuse_load(rng, _load_pc(slot), _any_scope(rng), iterations,
                            thrash=True),
            )))
            slot += 1
            if rng.random() < 0.5:
                loads.append(_stream_load(rng, _load_pc(slot)))
                slot += 1
        tenants.append(TenantSpec(
            name=f"t{ti}",
            phases=(KernelPhase(iterations=iterations, loads=tuple(loads),
                                stores=_maybe_store(rng, ti),
                                alu_per_iteration=rng.randint(1, 6)),),
        ))
    num_ctas = num_tenants * rng.randint(2, 6)
    warps = rng.randint(2, 4)
    return num_ctas, warps, tuple(tenants)


def _fuzz_mixed(rng: random.Random) -> tuple[int, int, tuple[TenantSpec, ...]]:
    """Unstructured draw over the whole constrained space."""
    iterations = rng.randint(24, 96)
    loads = []
    for slot in range(rng.randint(1, 3)):
        kind = rng.random()
        if kind < 0.4:
            loads.append(_reuse_load(rng, _load_pc(slot), _any_scope(rng),
                                     iterations, thrash=rng.random() < 0.25))
        elif kind < 0.7:
            loads.append(_divergent_load(rng, _load_pc(slot), _any_scope(rng),
                                         iterations))
        else:
            loads.append(_stream_load(rng, _load_pc(slot)))
    phase = KernelPhase(iterations=iterations, loads=tuple(loads),
                        stores=_maybe_store(rng, 0),
                        alu_per_iteration=rng.randint(1, 8))
    num_ctas = rng.randint(4, 24)
    warps = rng.randint(2, 4)
    return num_ctas, warps, (TenantSpec(name="main", phases=(phase,)),)


_FAMILY_FNS = {
    "thrash": _fuzz_thrash,
    "phase_shift": _fuzz_phase_shift,
    "multi_tenant": _fuzz_multi_tenant,
    "mixed": _fuzz_mixed,
}


def fuzz_workload(
    seed: int, index: int = 0, family: Optional[str] = None
) -> WorkloadSpec:
    """Generate one validated workload, deterministic per (seed, index)."""
    rng = random.Random(seed * 1_000_003 + index)
    family = family or FAMILIES[index % len(FAMILIES)]
    num_ctas, warps, tenants = _FAMILY_FNS[family](rng)
    spec = WorkloadSpec(
        name=f"fz-{seed:x}-{index:03d}-{family.replace('_', '')}",
        description=f"fuzzed {family} scenario (seed={seed}, index={index})",
        num_ctas=num_ctas,
        warps_per_cta=warps,
        # Register-pressure regimes from near-zero slack to >50% SUR
        # (the RegDem/compiler-RF-cache motivation): rankings flip here.
        regs_per_thread=rng.choice((8, 16, 16, 24, 32, 48, 64)),
        tenants=tenants,
    )
    return validate_workload(spec)


def generate_corpus(seed: int, count: int) -> list[WorkloadSpec]:
    """``count`` deterministic workloads for ``seed``."""
    return [fuzz_workload(seed, index) for index in range(count)]


# ---------------------------------------------------------------------------
# Gate 1: classification invariants
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ExpectedLoad:
    pattern: Pattern
    scope: Scope
    uncoalesced: bool


def _expected_loads(spec: WorkloadSpec) -> dict[int, _ExpectedLoad]:
    out: dict[int, _ExpectedLoad] = {}
    for tenant in spec.tenants:
        for phase in tenant.phases:
            for ld in phase.loads:
                prev = out.get(ld.pc)
                uncoalesced = ld.lines_per_access > 1 or (
                    prev.uncoalesced if prev else False
                )
                out[ld.pc] = _ExpectedLoad(ld.pattern, ld.scope, uncoalesced)
    return out


def _expected_sharing(
    spec: WorkloadSpec, exp: _ExpectedLoad, ctas_in_tenant: int
) -> str:
    if exp.pattern is Pattern.STREAM or exp.scope is Scope.WARP:
        return "private"
    if exp.scope is Scope.CTA:
        return "intra-cta" if spec.warps_per_cta >= 2 else "private"
    if ctas_in_tenant >= 2:
        return "inter-cta"
    return "intra-cta" if spec.warps_per_cta >= 2 else "private"


def check_gates(
    spec: WorkloadSpec, scale: float = 1.0
) -> tuple[list[str], Optional[WorkloadClassification]]:
    """Classification gates; returns (problems, classification)."""
    problems: list[str] = []
    try:
        validate_workload(spec)
    except WorkloadSpecError as exc:
        return [f"validation: {exc}"], None

    # Document round trip must be exact, including the content hash.
    round_trip = decode_workload(encode_workload(spec))
    if round_trip != spec or workload_hash(round_trip) != workload_hash(spec):
        problems.append("encode/decode round trip is not the identity")

    # Trace generation must be deterministic across materializations.
    k1, k2 = build_workload(spec, scale), build_workload(spec, scale)
    probe_warp = (spec.num_ctas - 1, spec.warps_per_cta - 1)
    for cta, warp in ((0, 0), probe_warp):
        if list(k1.warp_trace(cta, warp)) != list(k2.warp_trace(cta, warp)):
            problems.append(f"trace for cta={cta} warp={warp} is not deterministic")

    classification = classify_workload(spec, scale)
    expected = _expected_loads(spec)
    measured = {lc.pc: lc for lc in classification.loads}
    tenant_of = {
        ld.pc: ti
        for ti, tenant in enumerate(spec.tenants)
        for phase in tenant.phases
        for ld in phase.loads
    }
    for pc, exp in sorted(expected.items()):
        lc = measured.get(pc)
        if lc is None:
            problems.append(f"pc {pc}: never observed in the sampled prefix")
            continue
        want_streaming = exp.pattern is Pattern.STREAM
        if lc.streaming != want_streaming:
            problems.append(
                f"pc {pc}: declared {exp.pattern.value} but classifier says "
                f"streaming={lc.streaming} (cold ratio "
                f"{lc.infinite_miss_ratio:.3f})"
            )
        if want_streaming and lc.unique_lines != lc.line_touches:
            problems.append(
                f"pc {pc}: STREAM revisited a line "
                f"({lc.line_touches - lc.unique_lines} repeats)"
            )
        if lc.uncoalesced != exp.uncoalesced:
            problems.append(
                f"pc {pc}: uncoalesced={lc.uncoalesced}, declared "
                f"lines_per_access {'>1' if exp.uncoalesced else '==1'}"
            )
        ti = tenant_of[pc]
        ctas_in_tenant = len(range(ti, spec.num_ctas, len(spec.tenants)))
        want_sharing = _expected_sharing(spec, exp, ctas_in_tenant)
        if lc.sharing != want_sharing:
            problems.append(
                f"pc {pc}: sharing={lc.sharing!r}, expected {want_sharing!r} "
                f"({exp.scope.value} scope)"
            )
        if not lc.consistent_across_warps:
            problems.append(
                f"pc {pc}: per-warp locality inconsistent (Section 2.3)"
            )
    return problems, classification


# ---------------------------------------------------------------------------
# Gate 2: engine invariants + executor bit-identity
# ---------------------------------------------------------------------------
def _fingerprint(value) -> dict:
    """Full statistics fingerprint (mirrors the golden matrix's)."""
    stats = value.sm_stats
    return {
        "instructions": value.instructions,
        "cycles": value.cycles,
        "loads": sum(s.loads for s in stats),
        "stores": sum(s.stores for s in stats),
        "l1_hits": sum(s.l1_hits for s in stats),
        "l1_misses": sum(s.l1_misses for s in stats),
        "victim_hits": sum(s.victim_hits for s in stats),
        "bypasses": sum(s.bypasses for s in stats),
        "mem_requests": sum(s.mem_requests for s in stats),
        "dram_reads": value.dram_reads,
        "dram_writes": value.dram_writes,
        "backup_write_lines": value.traffic.backup_write_lines,
        "restore_read_lines": value.traffic.restore_read_lines,
        "per_sm_instructions": [s.instructions for s in stats],
    }


def _conservation_problems(result, label: str) -> list[str]:
    """Memory-pipeline conservation laws on one simulation result."""
    problems = []
    for sm_id, (stats, l1) in enumerate(zip(result.sm_stats, result.l1_stats)):
        if l1.cold_misses + l1.capacity_conflict_misses != l1.misses:
            problems.append(
                f"{label}: SM{sm_id}: cold({l1.cold_misses}) + "
                f"2C({l1.capacity_conflict_misses}) != probe misses "
                f"({l1.misses})"
            )
        if stats.l1_hits != l1.hits:
            problems.append(
                f"{label}: SM{sm_id}: SM-level l1_hits ({stats.l1_hits}) != "
                f"cache-level hits ({l1.hits})"
            )
        if stats.victim_hits + stats.l1_misses != l1.misses:
            problems.append(
                f"{label}: SM{sm_id}: victim_hits({stats.victim_hits}) + "
                f"l1_misses({stats.l1_misses}) != probe misses ({l1.misses})"
            )
        store_lines = l1.write_hits + l1.write_misses
        served = (stats.l1_hits + stats.victim_hits + stats.l1_misses
                  + stats.bypasses)
        if served + store_lines != stats.mem_requests:
            problems.append(
                f"{label}: SM{sm_id}: hits+victim+miss+bypass ({served}) + "
                f"store lines ({store_lines}) != mem_requests "
                f"({stats.mem_requests})"
            )
    if result.traffic.restore_read_lines > result.traffic.backup_write_lines:
        problems.append(
            f"{label}: restored {result.traffic.restore_read_lines} lines "
            f"but only {result.traffic.backup_write_lines} were backed up"
        )
    return problems


def _vtt_problems(extensions, label: str) -> list[str]:
    """VTT structural invariants on the live Linebacker extensions."""
    problems = []
    for sm_id, ext in enumerate(extensions):
        vtt = getattr(ext, "vtt", None)
        if vtt is None:
            continue
        rns = []
        for vp in vtt.active_partitions():
            valid_range = vp.register_range
            for s, ways in enumerate(vp.entries):
                for w, entry in enumerate(ways):
                    if not entry.valid:
                        continue
                    rn = vp.register_number(s, w)
                    rns.append(rn)
                    if rn not in valid_range:
                        problems.append(
                            f"{label}: SM{sm_id}: VP{vp.index} register "
                            f"{rn} outside its partition range "
                            f"[{valid_range.start}, {valid_range.stop})"
                        )
        if len(rns) != len(set(rns)):
            problems.append(
                f"{label}: SM{sm_id}: two valid VTT entries share a register"
            )
    return problems


def differential_check(
    spec: WorkloadSpec, *, scale: float = 1.0, sms: int = 1,
    backend: Optional[str] = None,
) -> list[str]:
    """Simulate ``spec`` under Linebacker, Best-SWL and the baseline;
    check every engine invariant plus inline-vs-loopback bit-identity.

    ``backend`` pins the execution engine for the extension-free legs
    (baseline, Best-SWL); any non-default engine additionally gets a
    backend-vs-object bit-identity check on the baseline run, so a
    fuzzed workload that diverges between engines fails the harness.
    """
    from repro.core.linebacker import linebacker_factory
    from repro.gpu.gpu import run_kernel
    from repro.runner.engine import ExperimentRunner, execute_job
    from repro.runner.registry import resolve
    from repro.runner.spec import JobSpec

    problems: list[str] = []
    config = scaled_config(num_sms=sms)
    kernel = build_workload(spec, scale)

    # Live Linebacker run (same construction as the registry's
    # ``linebacker`` arch, plus keep_objects so the VTTs stay
    # inspectable): conservation + VTT structure + backups.
    live = run_kernel(
        config, kernel,
        extension_factory=linebacker_factory(config.linebacker),
        options=RunOptions(keep_objects=True),
    )
    problems += _conservation_problems(live, "linebacker")
    problems += _vtt_problems(live.extensions, "linebacker")

    # Baseline conservation (no victim path: victim_hits must be 0).
    base = resolve("baseline").runner(config, kernel, backend=backend)
    problems += _conservation_problems(base, "baseline")
    if sum(s.victim_hits for s in base.sm_stats):
        problems.append("baseline: non-zero victim hits without a VTT")
    if backend not in (None, "object"):
        obj = resolve("baseline").runner(config, kernel)
        base_fp, obj_fp = _fingerprint(base), _fingerprint(obj)
        if base_fp != obj_fp:
            diff = [k for k in obj_fp if obj_fp[k] != base_fp.get(k)]
            problems.append(
                f"baseline: {backend} backend diverges from object on {diff}"
            )

    # Best-SWL oracle: sweep sanity + conservation of the winner.
    swl = resolve("best_swl").runner(config, kernel, backend=backend)
    problems += _conservation_problems(swl.best_result, "best_swl")
    if swl.best_limit not in swl.sweep_ipc:
        problems.append(
            f"best_swl: winning limit {swl.best_limit} missing from its "
            f"own sweep {sorted(swl.sweep_ipc)}"
        )
    elif abs(swl.best_result.ipc - max(swl.sweep_ipc.values())) > 1e-12:
        problems.append(
            f"best_swl: winner IPC {swl.best_result.ipc} is not the sweep "
            f"maximum {max(swl.sweep_ipc.values())}"
        )

    # Executor bit-identity: the same job inline and through the full
    # wire-protocol loopback must produce identical statistics.
    job = JobSpec.build(app=spec.name, arch="linebacker", config=config,
                        scale=scale, workload=spec)
    inline_fp = _fingerprint(execute_job(job)[0])
    if inline_fp != _fingerprint(live):
        problems.append(
            "linebacker: keep_objects run and portable snapshot run diverge"
        )
    runner = ExperimentRunner(workers=1, use_cache=False, executor="loopback")
    loopback_fp = _fingerprint(runner.run_many([job])[0])
    if loopback_fp != inline_fp:
        diff = [k for k in inline_fp if inline_fp[k] != loopback_fp.get(k)]
        problems.append(
            f"executor divergence: loopback != inline on {diff}"
        )
    return problems


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------
def _spec_size(spec: WorkloadSpec) -> int:
    work = sum(
        phase.iterations * len(phase.loads)
        for tenant in spec.tenants
        for phase in tenant.phases
    ) * spec.num_ctas * spec.warps_per_cta
    footprint = sum(
        ld.working_set_lines
        for tenant in spec.tenants
        for phase in tenant.phases
        for ld in phase.loads
    )
    return work + footprint


def _shrink_candidates(spec: WorkloadSpec):
    """Structurally smaller variants, coarsest cuts first."""
    if len(spec.tenants) > 1:
        for i in range(len(spec.tenants)):
            yield replace(spec, tenants=spec.tenants[:i] + spec.tenants[i + 1:])
    for ti, tenant in enumerate(spec.tenants):
        if len(tenant.phases) > 1:
            for pi in range(len(tenant.phases)):
                phases = tenant.phases[:pi] + tenant.phases[pi + 1:]
                tenants = (spec.tenants[:ti]
                           + (replace(tenant, phases=phases),)
                           + spec.tenants[ti + 1:])
                yield replace(spec, tenants=tenants)
    for ti, tenant in enumerate(spec.tenants):
        for pi, phase in enumerate(tenant.phases):
            variants = []
            if len(phase.loads) > 1:
                variants += [
                    replace(phase, loads=phase.loads[:li] + phase.loads[li + 1:])
                    for li in range(len(phase.loads))
                ]
            if phase.stores:
                variants.append(replace(phase, stores=()))
            if phase.iterations > 8:
                variants.append(replace(phase, iterations=phase.iterations // 2))
            variants += [
                replace(phase, loads=tuple(
                    ld if ld is not target or ld.working_set_lines <= 8
                    else replace(ld, working_set_lines=ld.working_set_lines // 2)
                    for ld in phase.loads
                ))
                for target in phase.loads
                if target.working_set_lines > 8
            ]
            for variant in variants:
                phases = tenant.phases[:pi] + (variant,) + tenant.phases[pi + 1:]
                tenants = (spec.tenants[:ti]
                           + (replace(tenant, phases=phases),)
                           + spec.tenants[ti + 1:])
                yield replace(spec, tenants=tenants)
    if spec.num_ctas > 2 * len(spec.tenants):
        yield replace(spec, num_ctas=max(2 * len(spec.tenants),
                                         spec.num_ctas // 2))
    if spec.warps_per_cta > 2:
        yield replace(spec, warps_per_cta=spec.warps_per_cta // 2)


def minimize(
    spec: WorkloadSpec,
    still_fails: Callable[[WorkloadSpec], bool],
    max_steps: int = 200,
) -> WorkloadSpec:
    """Greedy shrink: keep the smallest variant that still fails.

    ``still_fails`` decides reproduction (typically: the same gate or
    invariant check still reports a problem). Invalid shrink variants
    are skipped, so the result is always a valid spec.
    """
    current = spec
    for _ in range(max_steps):
        improved = False
        for candidate in _shrink_candidates(current):
            try:
                validate_workload(candidate)
            except WorkloadSpecError:
                continue
            if _spec_size(candidate) >= _spec_size(current):
                continue
            try:
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break
            except Exception:
                # A shrink that crashes the checker still reproduces a
                # defect, but not necessarily the one under study;
                # skip it to keep the reduction on-topic.
                continue
        if not improved:
            break
    return current
