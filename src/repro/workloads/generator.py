"""Synthetic kernel generator.

The paper evaluates on 20 CUDA applications (Table 2). Without the
binaries or a PTX front end, we synthesize each application as a
parameterized kernel model whose *load-level characteristics* match
what the paper's motivational study measures per app:

* a small set of static loads, each with its own working-set size,
  sharing scope (global / per-CTA / per-warp), stride and divergence
  (paper Section 2.3: locality behaviour is a property of the static
  load and is consistent across warps);
* streaming loads that touch every line exactly once (>95% miss ratio
  with an infinite cache — the paper's streaming criterion);
* per-thread register counts that determine statically unused register
  space, and CTA grids sized so every SM gets work.

Addresses are line-granular integers. The pseudo-random components use
fixed multiplicative hashing so traces are deterministic without
per-instruction RNG overhead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.gpu.isa import Instruction, Op, alu, exit_inst, hashed_pc, store
from repro.gpu.trace import KernelTrace


class Scope(enum.Enum):
    """How a load's working set is shared."""

    GLOBAL = "global"   # one region shared by every warp (e.g. centroids)
    CTA = "cta"         # one region per CTA (e.g. a tile)
    WARP = "warp"       # one region per warp (e.g. private rows)


class Pattern(enum.Enum):
    REUSE = "reuse"       # wraps around the working set: high locality
    STREAM = "stream"     # monotone, never revisits a line
    DIVERGENT = "divergent"  # irregular within the region (graph-like)


@dataclass(frozen=True)
class LoadSpec:
    """One static load instruction's behaviour."""

    pc: int
    pattern: Pattern
    working_set_lines: int = 64
    scope: Scope = Scope.GLOBAL
    stride: int = 1
    lines_per_access: int = 1   # >1 models uncoalesced (divergent) access
    weight: int = 1             # issues per loop iteration
    #: REUSE loads revisit the same line for this many consecutive
    #: iterations before advancing — short temporal bursts, the
    #: realistic middle ground between pure streaming and the
    #: LRU-adversarial cyclic sweep.
    reuse_burst: int = 2


@dataclass(frozen=True)
class StoreSpec:
    """Output traffic: stores stream into a per-CTA output region."""

    pc: int
    every_iterations: int = 8


@dataclass(frozen=True)
class AppSpec:
    """One synthetic application."""

    name: str
    description: str
    cache_sensitive: bool
    num_ctas: int
    warps_per_cta: int
    regs_per_thread: int
    iterations: int
    loads: tuple[LoadSpec, ...]
    stores: tuple[StoreSpec, ...] = ()
    alu_per_iteration: int = 4
    shared_mem_per_cta: int = 0

    def region_base(self, load_index: int) -> int:
        """Disjoint, stable address regions per static load."""
        return (load_index + 1) << 22

    def store_region_base(self) -> int:
        """Base of the store output region, past every load region.

        A method (not a constant in :func:`_warp_stream`) so composed
        workloads — multi-phase or multi-tenant kernels that relocate
        their load regions — can relocate store traffic consistently
        and never alias another phase's loads.
        """
        return (len(self.loads) + 2) << 22


_MIX = 0x9E3779B1  # Fibonacci hashing constant for address scrambling.
_MASK32 = 0xFFFFFFFF


def _scramble(t: int, lane: int, j: int) -> int:
    """Murmur-style avalanche hash of (iteration, warp, line slot).

    DIVERGENT accesses must look i.i.d.-uniform over the region. A
    plain ``(t * odd_constant) % ws`` is a *permutation* of the region
    — a warp would never revisit a line within ``ws`` iterations, so a
    nominally random pattern would behave like streaming. The
    finalizer below destroys that structure, giving birthday-rate
    collisions and therefore a hit ratio that scales smoothly with
    (resident capacity / region size).
    """
    h = (t * _MIX + lane * 0xC2B2AE35 + j * 0x27D4EB2F) & _MASK32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def _warp_stream(spec: AppSpec, cta_id: int, warp: int) -> Iterator[Instruction]:
    """Generate one warp's instruction stream for ``spec``."""
    warps_per_cta = spec.warps_per_cta
    global_warp = cta_id * warps_per_cta + warp
    alu_ops = spec.alu_per_iteration

    # Pre-compute a flat per-load plan (base address, hashed PC,
    # pattern-specific offsets) so the emission loop reads locals and
    # tuple slots instead of dataclass attributes per access. The
    # XOR fold, scope phase and stream base are all per-static-load
    # constants for a given warp.
    stream_p = Pattern.STREAM
    divergent_p = Pattern.DIVERGENT
    plan = []
    for idx, ld in enumerate(spec.loads):
        base = spec.region_base(idx)
        if ld.scope is Scope.CTA:
            base += cta_id * ld.working_set_lines
        elif ld.scope is Scope.WARP:
            base += global_warp * ld.working_set_lines
        ws = max(1, ld.working_set_lines)
        pattern = ld.pattern
        if pattern is stream_p:
            # Unique line per dynamic access across the grid: the warp's
            # stream region starts at a per-warp offset, advanced by the
            # running counter (plan slot "extra" = region start).
            extra = base + global_warp * spec.iterations * ld.weight
        elif pattern is divergent_p:
            extra = 0
        else:  # REUSE: per-warp phase shift within the working set
            phase_warp = global_warp if ld.scope is Scope.GLOBAL else warp
            extra = phase_warp * (ws // max(1, warps_per_cta))
        plan.append(
            (
                pattern,
                ld.pc,
                hashed_pc(ld.pc),
                ld.weight,
                ld.lines_per_access,
                ws,
                ld.stride,
                max(1, ld.reuse_burst),
                base,
                extra,
                idx,
            )
        )
    op_load = Op.LOAD
    # One interned ALU instruction emitted alu_per_iteration times per
    # loop body: a pre-built block avoids the memo probe per emission.
    alu_block = (alu(pc=0x10),) * alu_ops
    stream_counters = [0] * len(spec.loads)
    store_base = spec.store_region_base()

    for t in range(spec.iterations):
        yield from alu_block
        for pattern, pc, hpc, weight, lpa, ws, stride, burst, base, extra, idx in plan:
            for rep in range(weight):
                if pattern is stream_p:
                    seq = stream_counters[idx]
                    stream_counters[idx] = seq + 1
                    first = extra + seq
                    if lpa == 1:
                        lines = (first,)
                    else:
                        lines = tuple(first + j for j in range(lpa))
                elif pattern is divergent_p:
                    # Hash the *global* warp id: warp k of different
                    # CTAs must not generate identical streams
                    # (lockstep duplicates would merge in the MSHRs
                    # and never produce a hit).
                    if lpa == 1:
                        lines = (
                            base + _scramble(t * stride + rep, global_warp, 0) % ws,
                        )
                    else:
                        lines = tuple(
                            base + (_scramble(t * stride + rep, global_warp, j) % ws)
                            for j in range(lpa)
                        )
                else:  # REUSE
                    offset = ((t // burst) * stride + rep + extra) % ws
                    if lpa == 1:
                        lines = (base + offset,)
                    else:
                        lines = tuple(
                            base + ((offset + j * 17) % ws) for j in range(lpa)
                        )
                # Direct construction (not the load() wrapper): the
                # emission loop is the hot path of trace generation.
                yield Instruction(
                    op=op_load, pc=pc, line_addrs=lines, operands=2, hpc=hpc
                )
        for st in spec.stores:
            if st.every_iterations > 0 and t % st.every_iterations == 0:
                addr = store_base + global_warp * spec.iterations + t
                yield store(pc=st.pc, line_addrs=(addr,))
    yield exit_inst()


def build_kernel(spec: AppSpec) -> KernelTrace:
    """Materialize the KernelTrace for an application spec."""
    if not spec.loads:
        raise ValueError(f"{spec.name}: an application needs at least one load")
    pcs = [ld.pc for ld in spec.loads]
    if len(set(pcs)) != len(pcs):
        raise ValueError(f"{spec.name}: duplicate load PCs")

    def factory(cta_id: int, warp: int) -> Iterator[Instruction]:
        return _warp_stream(spec, cta_id, warp)

    return KernelTrace(
        name=spec.name,
        num_ctas=spec.num_ctas,
        warps_per_cta=spec.warps_per_cta,
        regs_per_thread=spec.regs_per_thread,
        warp_trace=factory,
        shared_mem_per_cta=spec.shared_mem_per_cta,
        app_spec=spec,
    )


def footprint_bytes(spec: AppSpec, resident_ctas: int) -> int:
    """Reused working-set footprint on one SM at a given residency.

    Streaming loads are excluded — their lines are dead on arrival.
    Used by calibration tests to check an app lands in its intended
    cache-sensitivity class.
    """
    total_lines = 0
    for ld in spec.loads:
        if ld.pattern is Pattern.STREAM:
            continue
        if ld.scope is Scope.GLOBAL:
            total_lines += ld.working_set_lines
        elif ld.scope is Scope.CTA:
            total_lines += ld.working_set_lines * resident_ctas
        else:
            total_lines += ld.working_set_lines * resident_ctas * spec.warps_per_cta
    return total_lines * 128
