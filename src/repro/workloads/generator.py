"""Synthetic kernel generator.

The paper evaluates on 20 CUDA applications (Table 2). Without the
binaries or a PTX front end, we synthesize each application as a
parameterized kernel model whose *load-level characteristics* match
what the paper's motivational study measures per app:

* a small set of static loads, each with its own working-set size,
  sharing scope (global / per-CTA / per-warp), stride and divergence
  (paper Section 2.3: locality behaviour is a property of the static
  load and is consistent across warps);
* streaming loads that touch every line exactly once (>95% miss ratio
  with an infinite cache — the paper's streaming criterion);
* per-thread register counts that determine statically unused register
  space, and CTA grids sized so every SM gets work.

Addresses are line-granular integers. The pseudo-random components use
fixed multiplicative hashing so traces are deterministic without
per-instruction RNG overhead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.gpu.isa import Instruction, alu, exit_inst, load, store
from repro.gpu.trace import KernelTrace


class Scope(enum.Enum):
    """How a load's working set is shared."""

    GLOBAL = "global"   # one region shared by every warp (e.g. centroids)
    CTA = "cta"         # one region per CTA (e.g. a tile)
    WARP = "warp"       # one region per warp (e.g. private rows)


class Pattern(enum.Enum):
    REUSE = "reuse"       # wraps around the working set: high locality
    STREAM = "stream"     # monotone, never revisits a line
    DIVERGENT = "divergent"  # irregular within the region (graph-like)


@dataclass(frozen=True)
class LoadSpec:
    """One static load instruction's behaviour."""

    pc: int
    pattern: Pattern
    working_set_lines: int = 64
    scope: Scope = Scope.GLOBAL
    stride: int = 1
    lines_per_access: int = 1   # >1 models uncoalesced (divergent) access
    weight: int = 1             # issues per loop iteration
    #: REUSE loads revisit the same line for this many consecutive
    #: iterations before advancing — short temporal bursts, the
    #: realistic middle ground between pure streaming and the
    #: LRU-adversarial cyclic sweep.
    reuse_burst: int = 2


@dataclass(frozen=True)
class StoreSpec:
    """Output traffic: stores stream into a per-CTA output region."""

    pc: int
    every_iterations: int = 8


@dataclass(frozen=True)
class AppSpec:
    """One synthetic application."""

    name: str
    description: str
    cache_sensitive: bool
    num_ctas: int
    warps_per_cta: int
    regs_per_thread: int
    iterations: int
    loads: tuple[LoadSpec, ...]
    stores: tuple[StoreSpec, ...] = ()
    alu_per_iteration: int = 4
    shared_mem_per_cta: int = 0

    def region_base(self, load_index: int) -> int:
        """Disjoint, stable address regions per static load."""
        return (load_index + 1) << 22


_MIX = 0x9E3779B1  # Fibonacci hashing constant for address scrambling.
_MASK32 = 0xFFFFFFFF


def _scramble(t: int, lane: int, j: int) -> int:
    """Murmur-style avalanche hash of (iteration, warp, line slot).

    DIVERGENT accesses must look i.i.d.-uniform over the region. A
    plain ``(t * odd_constant) % ws`` is a *permutation* of the region
    — a warp would never revisit a line within ``ws`` iterations, so a
    nominally random pattern would behave like streaming. The
    finalizer below destroys that structure, giving birthday-rate
    collisions and therefore a hit ratio that scales smoothly with
    (resident capacity / region size).
    """
    h = (t * _MIX + lane * 0xC2B2AE35 + j * 0x27D4EB2F) & _MASK32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def _warp_stream(spec: AppSpec, cta_id: int, warp: int) -> Iterator[Instruction]:
    """Generate one warp's instruction stream for ``spec``."""
    warps_per_cta = spec.warps_per_cta
    global_warp = cta_id * warps_per_cta + warp
    alu_ops = spec.alu_per_iteration

    # Pre-compute per-load bases.
    bases = []
    for idx, ld in enumerate(spec.loads):
        base = spec.region_base(idx)
        if ld.scope is Scope.CTA:
            base += cta_id * ld.working_set_lines
        elif ld.scope is Scope.WARP:
            base += global_warp * ld.working_set_lines
        bases.append(base)
    stream_counters = [0] * len(spec.loads)
    store_base = (len(spec.loads) + 2) << 22

    for t in range(spec.iterations):
        for _ in range(alu_ops):
            yield alu(pc=0x10)
        for idx, ld in enumerate(spec.loads):
            base = bases[idx]
            ws = max(1, ld.working_set_lines)
            for rep in range(ld.weight):
                if ld.pattern is Pattern.STREAM:
                    # Unique line per dynamic access across the grid.
                    seq = stream_counters[idx]
                    stream_counters[idx] += 1
                    first = base + (global_warp * spec.iterations * ld.weight + seq)
                    lines = tuple(first * 1 + j for j in range(ld.lines_per_access))
                elif ld.pattern is Pattern.DIVERGENT:
                    # Hash the *global* warp id: warp k of different
                    # CTAs must not generate identical streams
                    # (lockstep duplicates would merge in the MSHRs
                    # and never produce a hit).
                    lines = tuple(
                        base + (_scramble(t * ld.stride + rep, global_warp, j) % ws)
                        for j in range(ld.lines_per_access)
                    )
                else:  # REUSE
                    step = t // max(1, ld.reuse_burst)
                    phase_warp = global_warp if ld.scope is Scope.GLOBAL else warp
                    offset = (
                        step * ld.stride
                        + rep
                        + phase_warp * (ws // max(1, warps_per_cta))
                    ) % ws
                    lines = tuple(
                        base + ((offset + j * 17) % ws)
                        for j in range(ld.lines_per_access)
                    )
                yield load(pc=ld.pc, line_addrs=lines)
        for st in spec.stores:
            if st.every_iterations > 0 and t % st.every_iterations == 0:
                addr = store_base + global_warp * spec.iterations + t
                yield store(pc=st.pc, line_addrs=(addr,))
    yield exit_inst()


def build_kernel(spec: AppSpec) -> KernelTrace:
    """Materialize the KernelTrace for an application spec."""
    if not spec.loads:
        raise ValueError(f"{spec.name}: an application needs at least one load")
    pcs = [ld.pc for ld in spec.loads]
    if len(set(pcs)) != len(pcs):
        raise ValueError(f"{spec.name}: duplicate load PCs")

    def factory(cta_id: int, warp: int) -> Iterator[Instruction]:
        return _warp_stream(spec, cta_id, warp)

    return KernelTrace(
        name=spec.name,
        num_ctas=spec.num_ctas,
        warps_per_cta=spec.warps_per_cta,
        regs_per_thread=spec.regs_per_thread,
        warp_trace=factory,
        shared_mem_per_cta=spec.shared_mem_per_cta,
    )


def footprint_bytes(spec: AppSpec, resident_ctas: int) -> int:
    """Reused working-set footprint on one SM at a given residency.

    Streaming loads are excluded — their lines are dead on arrival.
    Used by calibration tests to check an app lands in its intended
    cache-sensitivity class.
    """
    total_lines = 0
    for ld in spec.loads:
        if ld.pattern is Pattern.STREAM:
            continue
        if ld.scope is Scope.GLOBAL:
            total_lines += ld.working_set_lines
        elif ld.scope is Scope.CTA:
            total_lines += ld.working_set_lines * resident_ctas
        else:
            total_lines += ld.working_set_lines * resident_ctas * spec.warps_per_cta
    return total_lines * 128
