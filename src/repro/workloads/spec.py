"""Declarative workload documents: a versioned DSL over the generator.

The 20 Table-2 apps are Python literals in :mod:`repro.workloads.suite`.
Everything the mechanisms are judged on, though, is a function of the
*generator knobs* those literals set — grid shape, registers per
thread, and per-load pattern/scope/working-set parameters. This module
makes that parameter space a first-class, file-loadable document so
scenarios can come from fuzzers, experiment sweeps or checked-in
corpora instead of hand-written code:

* :class:`WorkloadSpec` — a frozen tree of plain data (tenants →
  kernel phases → :class:`~repro.workloads.generator.LoadSpec`) that
  content-hashes stably via :func:`repro.config.stable_hash`, so a
  file-defined workload caches and coalesces exactly like a built-in
  app.
* ``encode_workload`` / ``decode_workload`` — a closed-world JSON
  twin pair under ``WORKLOAD_SPEC_VERSION``, written in the same
  idiom the protocol-drift lint pass anchors on (exhaustive dict
  literals on the encode side, ``set(doc) - {...}`` accepted sets and
  ``.get`` reads on the decode side). Unknown fields and unknown
  enum values are rejected with actionable errors, never ignored.
* :func:`build_workload` — compiles a spec to a
  :class:`~repro.gpu.trace.KernelTrace` by stitching per-phase
  :class:`~repro.workloads.generator.AppSpec` streams end to end,
  with tenant-disjoint address regions. A single-tenant,
  single-phase workload compiles to the *bit-identical* trace the
  plain generator emits for the equivalent ``AppSpec``.
* a process-local **registry** (:func:`register_workload`) that lets
  :class:`~repro.runner.spec.JobSpec` / ``Session.run`` / the HTTP
  schema accept workload names that are not Table-2 apps.

Document grammar (all fields shown; defaults in brackets)::

    {
      "spec": 1,                      # WORKLOAD_SPEC_VERSION, mandatory
      "name": "thrash-small",
      "description": "...",           [""]
      "num_ctas": 16,
      "warps_per_cta": 2,
      "regs_per_thread": 24,
      "shared_mem_per_cta": 0,        [0]
      "tenants": [                    # co-resident kernels, CTA-interleaved
        {"name": "t0",
         "phases": [                  # kernel phases run back to back
           {"iterations": 32,
            "alu_per_iteration": 4,   [4]
            "loads": [
              {"pc": 256, "pattern": "reuse",   # reuse|stream|divergent
               "working_set_lines": 64,         [64]
               "scope": "cta",                  ["global"] global|cta|warp
               "stride": 1, "lines_per_access": 1,
               "weight": 1, "reuse_burst": 2}],
            "stores": [{"pc": 1296, "every_iterations": 8}]}]}]
    }

Semantic rules enforced by :func:`validate_workload` (they are what
make the classifier's paper-rule gates sound):

* every phase has at least one load; PCs are unique within a phase;
* a PC keeps one (pattern, scope) across all phases and tenants —
  the paper's observation that locality is a property of the *static*
  load (Section 2.3) is an invariant of the format, not a hope;
* a STREAM PC appears in at most one phase per tenant (re-streaming
  the same array is a different static load — give it its own PC);
* grid and register bounds stay within what the modelled SM supports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Union

from repro.config import stable_hash
from repro.gpu.isa import Instruction, Op, exit_inst
from repro.gpu.trace import KernelTrace
from repro.workloads.generator import (
    AppSpec,
    LoadSpec,
    Pattern,
    Scope,
    StoreSpec,
    _warp_stream,
)
from repro.workloads.suite import APP_SPECS

#: Bump on any incompatible change to the workload document shape.
WORKLOAD_SPEC_VERSION = 1

# Validation bounds: generous enough for every scenario the fuzzer or
# a figure sweep wants, tight enough that a corrupt document cannot
# request a nonsensical simulation (e.g. more registers per thread
# than the modelled register file holds: 2048 regs / 32 lanes).
MAX_TENANTS = 16
MAX_PHASES = 16
MAX_LOADS_PER_PHASE = 8
MAX_CTAS = 4096
MAX_WARPS_PER_CTA = 32
MAX_REGS_PER_THREAD = 64
MAX_ITERATIONS = 1 << 20


class WorkloadSpecError(ValueError):
    """A workload document or spec that cannot be (safely) used."""


@dataclass(frozen=True)
class KernelPhase:
    """One kernel launch: a loop nest over a fixed set of static loads."""

    iterations: int
    loads: tuple[LoadSpec, ...]
    stores: tuple[StoreSpec, ...] = ()
    alu_per_iteration: int = 4


@dataclass(frozen=True)
class TenantSpec:
    """One co-resident kernel: its phases run back to back per warp."""

    name: str
    phases: tuple[KernelPhase, ...]


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload: grid shape plus tenant phase programs.

    CTAs are dealt round-robin to tenants (CTA ``i`` runs tenant
    ``i % len(tenants)``), so a multi-tenant spec co-schedules its
    kernels on every SM the way concurrent kernel launches would.
    """

    name: str
    description: str
    num_ctas: int
    warps_per_cta: int
    regs_per_thread: int
    tenants: tuple[TenantSpec, ...]
    shared_mem_per_cta: int = 0


def workload_hash(spec: WorkloadSpec) -> str:
    """Stable content hash of a workload (corpus/cache identity)."""
    return stable_hash(spec)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def _check(cond: bool, message: str) -> None:
    if not cond:
        raise WorkloadSpecError(message)


def validate_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Check the semantic rules; returns ``spec`` for chaining."""
    _check(isinstance(spec.name, str) and spec.name != "",
           "workload: 'name' must be a non-empty string")
    _check(1 <= spec.num_ctas <= MAX_CTAS,
           f"{spec.name}: num_ctas must be in [1, {MAX_CTAS}]")
    _check(1 <= spec.warps_per_cta <= MAX_WARPS_PER_CTA,
           f"{spec.name}: warps_per_cta must be in [1, {MAX_WARPS_PER_CTA}]")
    _check(1 <= spec.regs_per_thread <= MAX_REGS_PER_THREAD,
           f"{spec.name}: regs_per_thread must be in [1, {MAX_REGS_PER_THREAD}]")
    _check(spec.shared_mem_per_cta >= 0,
           f"{spec.name}: shared_mem_per_cta must be >= 0")
    _check(1 <= len(spec.tenants) <= MAX_TENANTS,
           f"{spec.name}: needs 1..{MAX_TENANTS} tenants")

    # The paper's Section 2.3 rule as a format invariant: one static
    # load (PC) has one behaviour class, wherever it appears.
    pc_class: dict[int, tuple[Pattern, Scope]] = {}
    for tenant in spec.tenants:
        _check(isinstance(tenant.name, str) and tenant.name != "",
               f"{spec.name}: tenant names must be non-empty strings")
        _check(1 <= len(tenant.phases) <= MAX_PHASES,
               f"{spec.name}/{tenant.name}: needs 1..{MAX_PHASES} phases")
        stream_pcs: set[int] = set()
        for pi, phase in enumerate(tenant.phases):
            where = f"{spec.name}/{tenant.name}#{pi}"
            _check(1 <= phase.iterations <= MAX_ITERATIONS,
                   f"{where}: iterations must be in [1, {MAX_ITERATIONS}]")
            _check(phase.alu_per_iteration >= 0,
                   f"{where}: alu_per_iteration must be >= 0")
            _check(1 <= len(phase.loads) <= MAX_LOADS_PER_PHASE,
                   f"{where}: needs 1..{MAX_LOADS_PER_PHASE} loads")
            pcs = [ld.pc for ld in phase.loads]
            _check(len(set(pcs)) == len(pcs), f"{where}: duplicate load PCs")
            for ld in phase.loads:
                _check(ld.pc >= 1, f"{where}: load PCs must be >= 1")
                _check(ld.working_set_lines >= 0,
                       f"{where}: working_set_lines must be >= 0")
                _check(ld.pattern is Pattern.STREAM or ld.working_set_lines >= 1,
                       f"{where}: pc {ld.pc}: non-stream loads need a "
                       "working set of at least one line")
                _check(ld.stride >= 1 and ld.lines_per_access >= 1
                       and ld.weight >= 1 and ld.reuse_burst >= 1,
                       f"{where}: pc {ld.pc}: stride/lines_per_access/"
                       "weight/reuse_burst must all be >= 1")
                seen = pc_class.get(ld.pc)
                _check(seen is None or seen == (ld.pattern, ld.scope),
                       f"{where}: pc {ld.pc} changes pattern/scope across "
                       "phases or tenants; a static load has one behaviour "
                       "class (use a fresh PC)")
                pc_class[ld.pc] = (ld.pattern, ld.scope)
                if ld.pattern is Pattern.STREAM:
                    _check(ld.pc not in stream_pcs,
                           f"{where}: STREAM pc {ld.pc} appears in more "
                           "than one phase; a stream touches each line "
                           "once (use a fresh PC per phase)")
                    stream_pcs.add(ld.pc)
            for st in phase.stores:
                _check(st.pc >= 1 and st.every_iterations >= 1,
                       f"{where}: store pc and every_iterations must be >= 1")
                _check(st.pc not in pcs,
                       f"{where}: store pc {st.pc} collides with a load PC")
    return spec


# ---------------------------------------------------------------------------
# JSON twins (closed world, versioned — see the protocol-drift pass)
# ---------------------------------------------------------------------------
def encode_workload(spec: WorkloadSpec) -> dict:
    """The JSON workload document for ``spec`` (version-stamped).

    Emission is exhaustive — every field is written even at its
    default — so ``decode_workload(encode_workload(s))`` reproduces
    ``s`` including its content hash.
    """
    validate_workload(spec)
    tenants = []
    for tenant in spec.tenants:
        phases = []
        for phase in tenant.phases:
            loads = [
                {
                    "pc": ld.pc,
                    "pattern": ld.pattern.value,
                    "working_set_lines": ld.working_set_lines,
                    "scope": ld.scope.value,
                    "stride": ld.stride,
                    "lines_per_access": ld.lines_per_access,
                    "weight": ld.weight,
                    "reuse_burst": ld.reuse_burst,
                }
                for ld in phase.loads
            ]
            stores = [
                {"pc": st.pc, "every_iterations": st.every_iterations}
                for st in phase.stores
            ]
            phases.append(
                {
                    "iterations": phase.iterations,
                    "alu_per_iteration": phase.alu_per_iteration,
                    "loads": loads,
                    "stores": stores,
                }
            )
        tenants.append({"name": tenant.name, "phases": phases})
    return {
        "spec": WORKLOAD_SPEC_VERSION,
        "name": spec.name,
        "description": spec.description,
        "num_ctas": spec.num_ctas,
        "warps_per_cta": spec.warps_per_cta,
        "regs_per_thread": spec.regs_per_thread,
        "shared_mem_per_cta": spec.shared_mem_per_cta,
        "tenants": tenants,
    }


def decode_workload(doc: Any) -> WorkloadSpec:
    """Validate and decode one JSON workload document.

    Closed world at every nesting level: unknown fields, unknown
    pattern/scope values, wrong types and out-of-range numbers are
    all :class:`WorkloadSpecError`\\ s naming the offending path.
    """

    def _int(value: Any, where: str, minimum: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise WorkloadSpecError(
                f"{where}: expected an integer >= {minimum}, got {value!r}"
            )
        return value

    def _seq(value: Any, where: str) -> list:
        if not isinstance(value, (list, tuple)):
            raise WorkloadSpecError(f"{where}: expected a list, got "
                                    f"{type(value).__name__}")
        return list(value)

    def _obj(value: Any, where: str) -> Mapping:
        if not isinstance(value, Mapping):
            raise WorkloadSpecError(f"{where}: expected an object, got "
                                    f"{type(value).__name__}")
        return value

    top = _obj(doc, "workload")
    version = top.get("spec")
    if version != WORKLOAD_SPEC_VERSION:
        raise WorkloadSpecError(
            f"workload spec version mismatch (got {version!r}, this tree "
            f"speaks {WORKLOAD_SPEC_VERSION}); upgrade the older peer"
        )
    unknown = set(top) - {"spec", "name", "description", "num_ctas",
                          "warps_per_cta", "regs_per_thread",
                          "shared_mem_per_cta", "tenants"}
    if unknown:
        raise WorkloadSpecError(f"workload: unknown field(s) {sorted(unknown)}")
    name = top.get("name")
    if not isinstance(name, str) or not name:
        raise WorkloadSpecError("workload: 'name' must be a non-empty string")
    description = top.get("description", "")
    if not isinstance(description, str):
        raise WorkloadSpecError(f"{name}: 'description' must be a string")

    tenants = []
    for ti, tdoc in enumerate(_seq(top.get("tenants"), f"{name}.tenants")):
        twhere = f"{name}.tenants[{ti}]"
        tdoc = _obj(tdoc, twhere)
        unknown = set(tdoc) - {"name", "phases"}
        if unknown:
            raise WorkloadSpecError(f"{twhere}: unknown field(s) {sorted(unknown)}")
        tname = tdoc.get("name")
        if not isinstance(tname, str) or not tname:
            raise WorkloadSpecError(f"{twhere}: 'name' must be a non-empty string")
        phases = []
        for pi, pdoc in enumerate(_seq(tdoc.get("phases"), f"{twhere}.phases")):
            pwhere = f"{twhere}.phases[{pi}]"
            pdoc = _obj(pdoc, pwhere)
            unknown = set(pdoc) - {"iterations", "alu_per_iteration",
                                   "loads", "stores"}
            if unknown:
                raise WorkloadSpecError(
                    f"{pwhere}: unknown field(s) {sorted(unknown)}"
                )
            loads = []
            for li, ldoc in enumerate(_seq(pdoc.get("loads"), f"{pwhere}.loads")):
                lwhere = f"{pwhere}.loads[{li}]"
                ldoc = _obj(ldoc, lwhere)
                unknown = set(ldoc) - {"pc", "pattern", "working_set_lines",
                                       "scope", "stride", "lines_per_access",
                                       "weight", "reuse_burst"}
                if unknown:
                    raise WorkloadSpecError(
                        f"{lwhere}: unknown field(s) {sorted(unknown)}"
                    )
                try:
                    pattern = Pattern(ldoc.get("pattern"))
                except ValueError:
                    raise WorkloadSpecError(
                        f"{lwhere}: unknown pattern {ldoc.get('pattern')!r}; "
                        f"known: {', '.join(p.value for p in Pattern)}"
                    ) from None
                try:
                    scope = Scope(ldoc.get("scope", Scope.GLOBAL.value))
                except ValueError:
                    raise WorkloadSpecError(
                        f"{lwhere}: unknown scope {ldoc.get('scope')!r}; "
                        f"known: {', '.join(s.value for s in Scope)}"
                    ) from None
                loads.append(LoadSpec(
                    pc=_int(ldoc.get("pc"), f"{lwhere}.pc", 1),
                    pattern=pattern,
                    working_set_lines=_int(
                        ldoc.get("working_set_lines", 64),
                        f"{lwhere}.working_set_lines", 0),
                    scope=scope,
                    stride=_int(ldoc.get("stride", 1), f"{lwhere}.stride", 1),
                    lines_per_access=_int(
                        ldoc.get("lines_per_access", 1),
                        f"{lwhere}.lines_per_access", 1),
                    weight=_int(ldoc.get("weight", 1), f"{lwhere}.weight", 1),
                    reuse_burst=_int(
                        ldoc.get("reuse_burst", 2),
                        f"{lwhere}.reuse_burst", 1),
                ))
            stores = []
            for si, sdoc in enumerate(
                _seq(pdoc.get("stores", []), f"{pwhere}.stores")
            ):
                swhere = f"{pwhere}.stores[{si}]"
                sdoc = _obj(sdoc, swhere)
                unknown = set(sdoc) - {"pc", "every_iterations"}
                if unknown:
                    raise WorkloadSpecError(
                        f"{swhere}: unknown field(s) {sorted(unknown)}"
                    )
                stores.append(StoreSpec(
                    pc=_int(sdoc.get("pc"), f"{swhere}.pc", 1),
                    every_iterations=_int(
                        sdoc.get("every_iterations", 8),
                        f"{swhere}.every_iterations", 1),
                ))
            phases.append(KernelPhase(
                iterations=_int(pdoc.get("iterations"),
                                f"{pwhere}.iterations", 1),
                loads=tuple(loads),
                stores=tuple(stores),
                alu_per_iteration=_int(
                    pdoc.get("alu_per_iteration", 4),
                    f"{pwhere}.alu_per_iteration", 0),
            ))
        tenants.append(TenantSpec(name=tname, phases=tuple(phases)))

    spec = WorkloadSpec(
        name=name,
        description=description,
        num_ctas=_int(top.get("num_ctas"), f"{name}.num_ctas", 1),
        warps_per_cta=_int(top.get("warps_per_cta"), f"{name}.warps_per_cta", 1),
        regs_per_thread=_int(top.get("regs_per_thread"),
                             f"{name}.regs_per_thread", 1),
        tenants=tuple(tenants),
        shared_mem_per_cta=_int(top.get("shared_mem_per_cta", 0),
                                f"{name}.shared_mem_per_cta", 0),
    )
    return validate_workload(spec)


def save_workload_file(spec: WorkloadSpec, path: Union[str, Path]) -> Path:
    """Write the JSON document for ``spec`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(encode_workload(spec), indent=2) + "\n")
    return path


def load_workload_file(
    path: Union[str, Path], *, register: bool = False
) -> WorkloadSpec:
    """Load (and optionally register) a workload document from disk."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkloadSpecError(f"{path}: not valid JSON: {exc}") from None
    spec = decode_workload(doc)
    if register:
        register_workload(spec)
    return spec


# ---------------------------------------------------------------------------
# Registry: file-defined workloads as first-class apps
# ---------------------------------------------------------------------------
#: Process-local registry of non-Table-2 workloads, by name.
WORKLOADS: dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec, *, replace: bool = False) -> WorkloadSpec:
    """Make ``spec`` runnable by name through ``JobSpec``/``Session``.

    Built-in app names cannot be shadowed; re-registering a different
    spec under an existing name needs ``replace=True`` (the same spec
    is always idempotent).
    """
    validate_workload(spec)
    if spec.name in APP_SPECS:
        raise WorkloadSpecError(
            f"{spec.name!r} is a built-in Table-2 app and cannot be shadowed"
        )
    existing = WORKLOADS.get(spec.name)
    if existing is not None and existing != spec and not replace:
        raise WorkloadSpecError(
            f"a different workload named {spec.name!r} is already "
            "registered (pass replace=True to override)"
        )
    WORKLOADS[spec.name] = spec
    return spec


def registered_workload(name: str) -> Optional[WorkloadSpec]:
    """The registered workload called ``name``, or ``None``."""
    return WORKLOADS.get(name)


def unregister_workload(name: str) -> None:
    """Drop a registered workload (test teardown hook)."""
    WORKLOADS.pop(name, None)


# ---------------------------------------------------------------------------
# Compilation to a KernelTrace
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _PhaseApp(AppSpec):
    """An ``AppSpec`` relocated into a tenant's address-region window.

    ``region_shift`` slides every load region; ``store_slot`` pins the
    store output region to a tenant-level slot past the longest
    phase's loads, so no phase's stores can alias another phase's (or
    tenant's) load regions.
    """

    region_shift: int = 0
    store_slot: int = 0

    def region_base(self, load_index: int) -> int:
        return (load_index + 1 + self.region_shift) << 22

    def store_region_base(self) -> int:
        return self.store_slot << 22


def _scaled_iterations(iterations: int, scale: float) -> int:
    # Mirrors suite.app_spec: iterations shrink, grid shape does not.
    if scale == 1.0:
        return iterations
    return max(8, int(iterations * scale))


def compile_tenants(
    spec: WorkloadSpec, scale: float = 1.0
) -> tuple[tuple[_PhaseApp, ...], ...]:
    """Per-tenant phase programs as relocated ``AppSpec`` values.

    Region layout: tenant ``k`` owns slots ``[shift_k, shift_k + L_k
    + 2]`` where ``L_k`` is its widest phase's load count — loads at
    ``shift_k + i + 1`` (so a load keeps its region across phases:
    phase-shifting working sets operate on the same data structure),
    stores at ``shift_k + L_k + 2``. For a single tenant this is
    exactly the plain generator's layout, so the compiled trace is
    bit-identical to ``build_kernel`` on the equivalent ``AppSpec``.
    """
    validate_workload(spec)
    tenants = []
    shift = 0
    for tenant in spec.tenants:
        max_loads = max(len(phase.loads) for phase in tenant.phases)
        store_slot = shift + max_loads + 2
        apps = tuple(
            _PhaseApp(
                name=f"{spec.name}/{tenant.name}#{pi}",
                description=spec.description,
                cache_sensitive=False,
                num_ctas=spec.num_ctas,
                warps_per_cta=spec.warps_per_cta,
                regs_per_thread=spec.regs_per_thread,
                iterations=_scaled_iterations(phase.iterations, scale),
                loads=phase.loads,
                stores=phase.stores,
                alu_per_iteration=phase.alu_per_iteration,
                shared_mem_per_cta=spec.shared_mem_per_cta,
                region_shift=shift,
                store_slot=store_slot,
            )
            for pi, phase in enumerate(tenant.phases)
        )
        tenants.append(apps)
        shift = store_slot + 1
    return tuple(tenants)


def _tenant_stream(
    apps: tuple[_PhaseApp, ...], cta_id: int, warp: int
) -> Iterator[Instruction]:
    """One warp's instruction stream: its tenant's phases, end to end."""
    exit_op = Op.EXIT
    for app in apps:
        for inst in _warp_stream(app, cta_id, warp):
            if inst.op is exit_op:
                break
            yield inst
    yield exit_inst()


def build_workload(spec: WorkloadSpec, scale: float = 1.0) -> KernelTrace:
    """Materialize the :class:`KernelTrace` for a workload spec."""
    tenants = compile_tenants(spec, scale)

    def factory(cta_id: int, warp: int) -> Iterator[Instruction]:
        return _tenant_stream(tenants[cta_id % len(tenants)], cta_id, warp)

    return KernelTrace(
        name=spec.name,
        num_ctas=spec.num_ctas,
        warps_per_cta=spec.warps_per_cta,
        regs_per_thread=spec.regs_per_thread,
        warp_trace=factory,
        shared_mem_per_cta=spec.shared_mem_per_cta,
    )


def workload_from_app(app: AppSpec, name: Optional[str] = None) -> WorkloadSpec:
    """Wrap a generator ``AppSpec`` as a single-tenant workload.

    The compiled trace is bit-identical to ``build_kernel(app)``; the
    wrapper exists so built-in shapes can seed fuzz corpora and tests.
    """
    return validate_workload(WorkloadSpec(
        name=name or app.name,
        description=app.description,
        num_ctas=app.num_ctas,
        warps_per_cta=app.warps_per_cta,
        regs_per_thread=app.regs_per_thread,
        tenants=(TenantSpec(
            name="main",
            phases=(KernelPhase(
                iterations=app.iterations,
                loads=app.loads,
                stores=app.stores,
                alu_per_iteration=app.alu_per_iteration,
            ),),
        ),),
        shared_mem_per_cta=app.shared_mem_per_cta,
    ))
