"""The 20-application benchmark suite (paper Table 2).

Each application is a synthetic kernel model calibrated to the
behavioural class the paper reports for it:

* **Cache-sensitive** (S2, BI, AT, S1, CF, GE, KM, BC, MV, PF): the
  reused working set across resident CTAs exceeds the 48 KB L1, so
  enlarging the cache to ~192-240 KB removes most capacity misses
  (the paper's criterion: >30% speedup at 192 KB).
* **Cache-insensitive** (BG, LI, SR2, SP, BR, FD, GA, 2D, SR1, HS):
  either the reused footprint already fits in L1, the access stream is
  dominated by streaming loads, or the working set is so large and
  irregular that no realistic cache holds it.

Apps known from the paper to move large streaming data (BI, LI, SR2,
2D, HS — Figure 3) carry a streaming load; the BFS variants (BC, BG,
BR) and SPMV use divergent access patterns. Register counts are chosen
to reproduce the spread of statically unused register space in
Figure 4 (from ~0 KB in fully-occupied kernels to >128 KB).

``scale`` shrinks iteration counts (and with them simulated cycles)
proportionally — tests run at scale 0.25, the benchmark harness at 1.0.
"""

from __future__ import annotations

from dataclasses import replace

from repro.gpu.trace import KernelTrace
from repro.workloads.generator import (
    AppSpec,
    LoadSpec,
    Pattern,
    Scope,
    StoreSpec,
    build_kernel,
)

# Static load PCs: distinct per app slot; the 5-bit XOR fold keeps
# them separated (values chosen to avoid HPC collisions within an app).
_PC0, _PC1, _PC2, _PC3 = 0x100, 0x204, 0x308, 0x40C
_STORE_PC = 0x510


def _reuse(
    pc: int, ws: int, scope: Scope = Scope.CTA, stride: int = 1, weight: int = 1
) -> LoadSpec:
    return LoadSpec(pc=pc, pattern=Pattern.REUSE, working_set_lines=ws, scope=scope,
                    stride=stride, weight=weight)


def _stream(pc: int, weight: int = 1) -> LoadSpec:
    return LoadSpec(pc=pc, pattern=Pattern.STREAM, working_set_lines=0, weight=weight)


def _divergent(pc: int, ws: int, scope: Scope = Scope.GLOBAL, lines: int = 2) -> LoadSpec:
    return LoadSpec(pc=pc, pattern=Pattern.DIVERGENT, working_set_lines=ws, scope=scope,
                    lines_per_access=lines)


def _random(pc: int, ws: int, scope: Scope = Scope.CTA) -> LoadSpec:
    """Coalesced but data-dependent access, uniform over the region.

    This is the throttle-responsive pattern: the hit ratio scales
    smoothly with (cache capacity / resident footprint), so reducing
    active CTAs or adding victim space pays off incrementally — the
    behaviour CCWS-style throttling relies on.
    """
    return LoadSpec(pc=pc, pattern=Pattern.DIVERGENT, working_set_lines=ws, scope=scope,
                    lines_per_access=1)


#: The full suite, in the paper's Table 2 order (sensitive first).
APP_SPECS: dict[str, AppSpec] = {}


def _app(spec: AppSpec) -> None:
    APP_SPECS[spec.name] = spec


# ---------------------------------------------------------------------------
# Cache-sensitive applications
# ---------------------------------------------------------------------------
_app(AppSpec(
    name="S2", description="Symmetric rank-2k operations (Polybench)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=16,
    iterations=96, alu_per_iteration=2,
    loads=(_random(_PC0, 64), _random(_PC1, 48), _reuse(_PC2, 64, Scope.GLOBAL)),
    stores=(StoreSpec(_STORE_PC, every_iterations=16),),
))
_app(AppSpec(
    name="BI", description="BiCGStab linear solver (Polybench)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=16,
    iterations=90, alu_per_iteration=2,
    loads=(_random(_PC0, 384, Scope.GLOBAL), _random(_PC1, 24), _stream(_PC2)),
    stores=(StoreSpec(_STORE_PC, every_iterations=12),),
))
_app(AppSpec(
    name="AT", description="Matrix transpose-vector multiply (Polybench)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=16,
    iterations=90, alu_per_iteration=2,
    loads=(_random(_PC0, 48), _reuse(_PC1, 96, Scope.GLOBAL)),
))
_app(AppSpec(
    name="S1", description="Symmetric rank-1k operations (Polybench)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=16,
    iterations=96, alu_per_iteration=2,
    loads=(_random(_PC0, 48), _reuse(_PC1, 64, Scope.GLOBAL)),
))
_app(AppSpec(
    name="CF", description="CFD Euler solver (Rodinia)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=24,
    iterations=84, alu_per_iteration=2,
    loads=(_random(_PC0, 48), _reuse(_PC1, 64, Scope.GLOBAL), _stream(_PC2)),
    stores=(StoreSpec(_STORE_PC, every_iterations=10),),
))
_app(AppSpec(
    name="GE", description="Scalar-vector-matrix multiply GEMVER (Polybench)",
    cache_sensitive=True, num_ctas=160, warps_per_cta=4, regs_per_thread=16,
    iterations=120, alu_per_iteration=2,
    loads=(_random(_PC0, 768, Scope.GLOBAL), _random(_PC1, 64)),
))
_app(AppSpec(
    name="KM", description="KMeans clustering (Rodinia)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=16,
    iterations=96, alu_per_iteration=2,
    loads=(LoadSpec(_PC0, Pattern.DIVERGENT, 320, Scope.GLOBAL,
                    lines_per_access=1, weight=2),
           _random(_PC1, 32), _stream(_PC2)),
))
_app(AppSpec(
    name="BC", description="BFS (CUDA SDK)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=24,
    iterations=84, alu_per_iteration=2,
    loads=(_divergent(_PC0, 48, Scope.CTA), _reuse(_PC1, 64, Scope.GLOBAL), _stream(_PC2)),
    stores=(StoreSpec(_STORE_PC, every_iterations=14),),
))
_app(AppSpec(
    name="MV", description="Matrix-vector product transpose (Polybench)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=16,
    iterations=96, alu_per_iteration=2,
    loads=(_random(_PC0, 448, Scope.GLOBAL), _random(_PC1, 48)),
))
_app(AppSpec(
    name="PF", description="Particle filter, float (Rodinia)",
    cache_sensitive=True, num_ctas=192, warps_per_cta=4, regs_per_thread=24,
    iterations=84, alu_per_iteration=2,
    loads=(_random(_PC0, 40), _reuse(_PC1, 80, Scope.GLOBAL), _stream(_PC2)),
))

# ---------------------------------------------------------------------------
# Cache-insensitive applications
# ---------------------------------------------------------------------------
_app(AppSpec(
    name="BG", description="BFS (GPGPU-Sim suite)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=16,
    iterations=72, alu_per_iteration=2,
    loads=(_divergent(_PC0, 2048, Scope.GLOBAL), _stream(_PC1)),
))
_app(AppSpec(
    name="LI", description="LIBOR Monte Carlo (GPGPU-Sim suite)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=16,
    iterations=72, alu_per_iteration=8,
    loads=(_stream(_PC0), _stream(_PC1)),
    stores=(StoreSpec(_STORE_PC, every_iterations=8),),
))
_app(AppSpec(
    name="SR2", description="SRAD v2 (Rodinia)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=24,
    iterations=84, alu_per_iteration=5,
    loads=(_stream(_PC0), _reuse(_PC1, 8)),
    stores=(StoreSpec(_STORE_PC, every_iterations=8),),
))
_app(AppSpec(
    name="SP", description="Sparse matrix-vector multiply (Parboil)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=16,
    iterations=78, alu_per_iteration=2,
    loads=(_divergent(_PC0, 384, Scope.GLOBAL), _reuse(_PC1, 16), _stream(_PC2)),
))
_app(AppSpec(
    name="BR", description="BFS (Rodinia)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=16,
    iterations=78, alu_per_iteration=2,
    loads=(_divergent(_PC0, 64, Scope.CTA), _stream(_PC1)),
))
_app(AppSpec(
    name="FD", description="2D finite-difference time domain (Polybench)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=24,
    iterations=90, alu_per_iteration=4,
    loads=(_reuse(_PC0, 20), _stream(_PC1)),
    stores=(StoreSpec(_STORE_PC, every_iterations=6),),
))
_app(AppSpec(
    name="GA", description="Gaussian elimination (Rodinia)",
    cache_sensitive=False, num_ctas=160, warps_per_cta=4, regs_per_thread=16,
    iterations=120, alu_per_iteration=6,
    loads=(_reuse(_PC0, 96, Scope.GLOBAL), _reuse(_PC1, 8)),
))
_app(AppSpec(
    name="2D", description="2D convolution (Polybench)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=16,
    iterations=90, alu_per_iteration=4,
    loads=(_reuse(_PC0, 12), _stream(_PC1)),
    stores=(StoreSpec(_STORE_PC, every_iterations=6),),
))
_app(AppSpec(
    name="SR1", description="SRAD v1 (Rodinia)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=24,
    iterations=90, alu_per_iteration=6,
    loads=(_reuse(_PC0, 16), _reuse(_PC1, 32, Scope.GLOBAL)),
))
_app(AppSpec(
    name="HS", description="HotSpot thermal simulation (Rodinia)",
    cache_sensitive=False, num_ctas=96, warps_per_cta=8, regs_per_thread=32,
    iterations=90, alu_per_iteration=6,
    loads=(_reuse(_PC0, 12), _stream(_PC1)),
    stores=(StoreSpec(_STORE_PC, every_iterations=8),),
))


CACHE_SENSITIVE = tuple(n for n, s in APP_SPECS.items() if s.cache_sensitive)
CACHE_INSENSITIVE = tuple(n for n, s in APP_SPECS.items() if not s.cache_sensitive)
ALL_APPS = tuple(APP_SPECS)


def app_spec(name: str, scale: float = 1.0) -> AppSpec:
    """Fetch an app spec, optionally scaled down for fast runs."""
    spec = APP_SPECS[name]
    if scale != 1.0:
        # Only iterations shrink; the CTA grid keeps its multi-wave
        # shape so CTA turnover and drain behaviour stay realistic.
        spec = replace(spec, iterations=max(8, int(spec.iterations * scale)))
    return spec


def kernel_for(name: str, scale: float = 1.0) -> KernelTrace:
    """Build the KernelTrace for an application by name.

    Table-2 apps take priority; any other name falls back to the
    process-local workload registry (file-defined / fuzzed specs made
    first-class via :func:`repro.workloads.spec.register_workload`).
    """
    if name in APP_SPECS:
        return build_kernel(app_spec(name, scale))
    # Deferred import: spec.py imports this module for the registry's
    # shadowing check.
    from repro.workloads.spec import build_workload, registered_workload

    workload = registered_workload(name)
    if workload is None:
        raise KeyError(
            f"unknown app {name!r}: not a Table-2 app and no registered "
            "workload by that name"
        )
    return build_workload(workload, scale)
