"""Kernel trace serialization.

Lets users export a kernel's instruction streams to a JSON-lines file
(one record per warp) and load them back as a
:class:`~repro.gpu.trace.KernelTrace`. Useful for:

* feeding externally generated traces (e.g. converted from a real
  profiler dump) into the simulator,
* freezing a synthetic workload so experiments are reproducible even
  if the generator's calibration changes,
* inspecting exactly what a workload does.

Format (JSON lines):

* line 1 — header: ``{"name", "num_ctas", "warps_per_cta",
  "regs_per_thread", "shared_mem_per_cta"}``
* then one record per warp: ``{"cta": int, "warp": int,
  "insts": [[op, pc, [addr, ...]], ...]}`` with ``op`` one of
  ``"alu" | "load" | "store" | "exit"``. ALU/EXIT omit the address
  list; the trailing EXIT may be omitted (it is re-appended on load).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from repro.gpu.isa import Instruction, Op, alu, exit_inst, load, store
from repro.gpu.trace import KernelTrace

PathLike = Union[str, Path]


def _encode(inst: Instruction) -> list:
    if inst.op is Op.LOAD or inst.op is Op.STORE:
        return [inst.op.value, inst.pc, list(inst.line_addrs)]
    return [inst.op.value, inst.pc]


def _decode(record: list) -> Instruction:
    op = record[0]
    if op == "alu":
        return alu(pc=record[1])
    if op == "exit":
        return exit_inst()
    if op == "load":
        return load(record[1], record[2])
    if op == "store":
        return store(record[1], record[2])
    raise ValueError(f"unknown opcode {op!r} in trace file")


def save_trace(kernel: KernelTrace, path: PathLike) -> int:
    """Write ``kernel`` to ``path`` (JSON lines). Returns the number of
    dynamic instructions written."""
    path = Path(path)
    written = 0
    with path.open("w") as fh:
        header = {
            "name": kernel.name,
            "num_ctas": kernel.num_ctas,
            "warps_per_cta": kernel.warps_per_cta,
            "regs_per_thread": kernel.regs_per_thread,
            "shared_mem_per_cta": kernel.shared_mem_per_cta,
        }
        fh.write(json.dumps(header) + "\n")
        for cta in range(kernel.num_ctas):
            for warp in range(kernel.warps_per_cta):
                insts = [_encode(i) for i in kernel.warp_trace(cta, warp)]
                written += len(insts)
                fh.write(
                    json.dumps({"cta": cta, "warp": warp, "insts": insts}) + "\n"
                )
    return written


def load_trace(path: PathLike) -> KernelTrace:
    """Load a KernelTrace previously written by :func:`save_trace` (or
    hand-authored in the same format)."""
    path = Path(path)
    with path.open() as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    for key in ("name", "num_ctas", "warps_per_cta", "regs_per_thread"):
        if key not in header:
            raise ValueError(f"{path}: header missing {key!r}")

    streams: dict[tuple[int, int], list[Instruction]] = {}
    for lineno, raw in enumerate(lines[1:], start=2):
        record = json.loads(raw)
        key = (record["cta"], record["warp"])
        insts = [_decode(r) for r in record["insts"]]
        if not insts or insts[-1].op is not Op.EXIT:
            insts.append(exit_inst())
        streams[key] = insts

    expected = {
        (c, w)
        for c in range(header["num_ctas"])
        for w in range(header["warps_per_cta"])
    }
    missing = expected - set(streams)
    if missing:
        raise ValueError(f"{path}: missing warp streams for {sorted(missing)[:4]}...")

    def factory(cta_id: int, warp: int) -> Iterator[Instruction]:
        return iter(streams[(cta_id, warp)])

    return KernelTrace(
        name=header["name"],
        num_ctas=header["num_ctas"],
        warps_per_cta=header["warps_per_cta"],
        regs_per_thread=header["regs_per_thread"],
        warp_trace=factory,
        shared_mem_per_cta=header.get("shared_mem_per_cta", 0),
    )
