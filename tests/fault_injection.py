"""Fault-injection harness for the distributed experiment runner.

Two halves, both reusable by future PRs:

**In-process fault wrappers** (import them):

* :class:`FlakyBackend` — a :class:`~repro.runner.cache.CacheBackend`
  decorator that raises on the Nth read/write call, for proving cache
  failures degrade to re-simulation instead of crashing or serving a
  wrong payload.
* :func:`corrupt_once` / :func:`corrupt_always` — wire-line mutators
  for :class:`~repro.runner.executors.LoopbackExecutor`'s
  ``mutate_job`` / ``mutate_result`` hooks. ``truncate`` chops the
  line mid-payload; ``flip`` rewrites payload bytes so the JSON stays
  parseable but the digest check must catch the damage.

**A faulty worker shim** (run it): ``python tests/fault_injection.py
--mode MODE --marker FILE`` speaks the real worker wire protocol but
misbehaves exactly once — the *first* process to claim the marker file
performs the fault, every later spawn (the engine's respawn after it
kills the faulty worker) delegates to the genuine
:func:`repro.runner.worker.serve` loop. That gives deterministic
"fails once, then heals" scenarios over real subprocesses:

=============  ==========================================================
``die``          greet, read one job, exit without answering
                 (worker crash mid-job → engine requeues on EOF).
``hang``         greet, read one job, sleep past any timeout
                 (wedged worker → engine kills on deadline, requeues).
``garbage``      greet, read one job, answer with a non-protocol line
                 (corrupted response → engine recycles the worker).
``banner``       print an SSH-banner-like line *instead of* hello
                 (handshake garbage → engine recycles before dispatch).
=============  ==========================================================

Use :func:`flaky_worker_command` to build the ``worker_command``
template for :class:`~repro.runner.executors.RemoteExecutor`.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.runner.cache import CacheBackend

FAULT_MODES = ("die", "hang", "garbage", "banner")


# ---------------------------------------------------------------------------
# Cache-layer fault wrappers
# ---------------------------------------------------------------------------
class FlakyBackend(CacheBackend):
    """Delegate to ``inner``, failing the Nth call of a chosen method.

    ``fail_on`` is 1-based: ``FlakyBackend(inner, fail_on=1)`` fails the
    first write and succeeds afterwards; ``fail_on=0`` never fails.
    """

    def __init__(
        self,
        inner: CacheBackend,
        fail_on: int = 1,
        method: str = "write",
        exc: Exception = None,
    ) -> None:
        self.inner = inner
        self.root = inner.root
        self.fail_on = fail_on
        self.method = method
        self.exc = exc if exc is not None else OSError("injected cache fault")
        self.calls = {"read": 0, "write": 0}

    def _maybe_fail(self, method: str) -> None:
        self.calls[method] += 1
        if method == self.method and self.calls[method] == self.fail_on:
            raise self.exc

    def path_for(self, key: str) -> Path:
        return self.inner.path_for(key)

    def read(self, key: str):
        self._maybe_fail("read")
        return self.inner.read(key)

    def write(self, key: str, data: bytes) -> None:
        self._maybe_fail("write")
        self.inner.write(key, data)

    def discard(self, key: str) -> None:
        self.inner.discard(key)

    def entry_paths(self):
        return self.inner.entry_paths()


# ---------------------------------------------------------------------------
# Wire-line corruptors (for LoopbackExecutor mutate hooks)
# ---------------------------------------------------------------------------
def _truncate(line: str) -> str:
    return line[: max(1, len(line) // 2)]


def _flip(line: str) -> str:
    """Keep the JSON envelope intact but damage the payload bytes.

    The result still parses as a protocol message, so only the SHA-256
    digest check can notice — which is precisely the property under
    test.
    """
    msg = json.loads(line)
    for box_field in ("spec", "payload"):
        box = msg.get(box_field)
        if isinstance(box, dict) and box.get("b64"):
            b64 = box["b64"]
            replacement = "A" if b64[0] != "A" else "B"
            box["b64"] = replacement + b64[1:]
            return json.dumps(msg)
    return _truncate(line)  # error results carry no payload box


_CORRUPTORS = {"truncate": _truncate, "flip": _flip}


def corrupt_once(kind: str = "truncate"):
    """A mutator that damages only the first line it sees.

    The retry that follows goes through clean, so tests can assert the
    *recovery* path (retried > 0, results still correct) rather than
    the give-up path.
    """
    corruptor = _CORRUPTORS[kind]
    state = {"done": False}

    def mutate(line: str) -> str:
        if state["done"]:
            return line
        state["done"] = True
        return corruptor(line)

    return mutate


def corrupt_always(kind: str = "truncate"):
    """A mutator that damages every line: forces retry exhaustion."""
    corruptor = _CORRUPTORS[kind]

    def mutate(line: str) -> str:
        return corruptor(line)

    return mutate


# ---------------------------------------------------------------------------
# Faulty worker subprocess shim
# ---------------------------------------------------------------------------
def flaky_worker_command(mode: str, marker: "Path | str") -> str:
    """A RemoteExecutor ``worker_command`` template that faults once.

    ``marker`` must be a path that does not exist yet; the first worker
    to create it performs ``mode``'s fault, all later workers behave
    normally.
    """
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown fault mode {mode!r}; known: {FAULT_MODES}")
    return (
        f"{{python}} -u {Path(__file__).resolve()} "
        f"--mode {mode} --marker {marker}"
    )


def _claim_marker(marker: Path) -> bool:
    """Atomically claim the one-shot fault slot; True for the faulter."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _shim_main(argv=None) -> int:
    import argparse

    from repro.runner.wire import encode_hello
    from repro.runner.worker import serve

    parser = argparse.ArgumentParser(description="faulty repro worker shim")
    parser.add_argument("--mode", choices=FAULT_MODES, required=True)
    parser.add_argument("--marker", required=True)
    parser.add_argument("--hang-seconds", type=float, default=60.0)
    args = parser.parse_args(argv)

    if not _claim_marker(Path(args.marker)):
        return serve(sys.stdin, sys.stdout)  # healed: act like a real worker

    def emit(line: str) -> None:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()

    if args.mode == "banner":
        emit("Warning: Permanently added 'host' (ED25519) to known hosts.")
        sys.stdin.readline()  # linger so the engine, not the OS, decides
        return 1

    emit(encode_hello())
    sys.stdin.readline()  # the job we are about to betray
    if args.mode == "die":
        os._exit(1)
    if args.mode == "hang":
        time.sleep(args.hang_seconds)
        return 1
    if args.mode == "garbage":
        emit("%%% this is not a protocol line %%%")
        return 1
    return 1


if __name__ == "__main__":
    raise SystemExit(_shim_main())
