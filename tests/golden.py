"""Golden simulation statistics: capture and comparison helpers.

The hot-path work on the cycle engine (int event kinds, capability
flags, the lazy-deletion clock heap, ``__slots__``) is only legal if it
is *semantically invisible*: every ``SimulationResult`` statistic must
stay bit-identical. This module pins those statistics for a small
(app, architecture) matrix so any engine change that shifts semantics
fails loudly in ``tests/test_golden_equivalence.py``.

Regenerate the golden file (only when an *intentional* semantic change
lands) with::

    PYTHONPATH=src python tests/golden.py --write
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import scaled_config
from repro.runner.registry import resolve
from repro.workloads.suite import kernel_for

GOLDEN_PATH = Path(__file__).parent / "golden_stats.json"
FUZZ_CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"

#: Two suite apps: one cache-sensitive (S2), one insensitive (LI).
GOLDEN_APPS = ("S2", "LI")
#: Committed fuzz-corpus specs (one per adversarial family): file-defined
#: workloads exercising the declarative spec path end to end, pinned at
#: full scale (their grids are already small by construction).
GOLDEN_FUZZ_SPECS = ("thrasher", "multikernel", "multitenant")
GOLDEN_ARCHS = ("baseline", "best_swl", "linebacker")
GOLDEN_SCALE = 0.25
GOLDEN_SMS = 2


def corpus_workload(name: str):
    """Load one committed fuzz-corpus spec by stable name."""
    from repro.workloads.spec import load_workload_file

    return load_workload_file(FUZZ_CORPUS_DIR / f"{name}.json")


def result_fingerprint(result) -> dict:
    """Every statistic the golden test pins, as plain JSON types."""
    stats = result.sm_stats
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "loads": sum(s.loads for s in stats),
        "stores": sum(s.stores for s in stats),
        "l1_hits": sum(s.l1_hits for s in stats),
        "l1_misses": sum(s.l1_misses for s in stats),
        "victim_hits": sum(s.victim_hits for s in stats),
        "bypasses": sum(s.bypasses for s in stats),
        "mem_requests": sum(s.mem_requests for s in stats),
        "dram_reads": result.dram_reads,
        "dram_writes": result.dram_writes,
        "demand_read_lines": result.traffic.demand_read_lines,
        "store_write_lines": result.traffic.store_write_lines,
        "backup_write_lines": result.traffic.backup_write_lines,
        "restore_read_lines": result.traffic.restore_read_lines,
        "bank_conflicts": result.bank_conflicts,
        "per_sm_instructions": [s.instructions for s in stats],
    }


def fingerprint_value(arch: str, value) -> dict:
    """Fingerprint an already-computed runner payload.

    Works on live results and on portable snapshots alike, so the
    executor-differential test can fingerprint whatever came over the
    wire / out of a process pool and compare it against the pinned
    values that :func:`fingerprint` produces in-process.
    """
    if arch == "best_swl":
        fp = result_fingerprint(value.best_result)
        fp["best_limit"] = value.best_limit
        fp["sweep_ipc"] = {str(k): round(v, 12) for k, v in value.sweep_ipc.items()}
        return fp
    return result_fingerprint(value)


def golden_spec(app: str, arch: str):
    """The golden matrix cell as an engine :class:`JobSpec`."""
    from repro.runner import JobSpec

    if app in GOLDEN_FUZZ_SPECS:
        return JobSpec.build(
            app=app,
            arch=arch,
            config=scaled_config(num_sms=GOLDEN_SMS),
            workload=corpus_workload(app),
        )
    return JobSpec.build(
        app=app,
        arch=arch,
        config=scaled_config(num_sms=GOLDEN_SMS),
        scale=GOLDEN_SCALE,
    )


def fingerprint(app: str, arch: str) -> dict:
    """Run one (app, arch) simulation and fingerprint its statistics."""
    config = scaled_config(num_sms=GOLDEN_SMS)
    if app in GOLDEN_FUZZ_SPECS:
        from repro.workloads.spec import build_workload

        kernel = build_workload(corpus_workload(app))
    else:
        kernel = kernel_for(app, GOLDEN_SCALE)
    value = resolve(arch).runner(config, kernel)
    return fingerprint_value(arch, value)


def collect() -> dict:
    return {
        f"{arch}:{app}": fingerprint(app, arch)
        for app in (*GOLDEN_APPS, *GOLDEN_FUZZ_SPECS)
        for arch in GOLDEN_ARCHS
    }


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true", help="rewrite the golden file")
    parser.add_argument(
        "--check", action="store_true", help="compare against the golden file"
    )
    args = parser.parse_args()
    data = collect()
    if args.write:
        GOLDEN_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {GOLDEN_PATH}")
    elif args.check:
        golden = json.loads(GOLDEN_PATH.read_text())
        if data == golden:
            print("IDENTICAL")
        else:
            for key in sorted(set(golden) | set(data)):
                if golden.get(key) != data.get(key):
                    print(f"DIFF {key}:")
                    for stat in sorted(
                        set(golden.get(key, {})) | set(data.get(key, {}))
                    ):
                        g, d = golden.get(key, {}).get(stat), data.get(key, {}).get(stat)
                        if g != d:
                            print(f"  {stat}: golden={g} current={d}")
            raise SystemExit(1)
    else:
        print(json.dumps(data, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
