"""Seeded violations for the capability pass: a miniature of the
real ``SMExtension``/``SM`` contract with every drift mode present.

Expected findings:

* ``wants_evictions`` declared but never auto-resolved in ``attach``
  (capability-flag-unresolved);
* ``attach`` resolves ``wants_stores`` which is not declared
  (capability-flag-unresolved);
* ``on_snoop`` is a hook with no capability flag (hook-missing-flag);
* ``wants_fills`` has no ``_ext_`` gate in ``SM.__init__``
  (capability-gate-missing);
* the ``wants_stores`` gate resolves ``"on_tick"`` instead of
  ``"on_store"`` (capability-gate-missing);
* ``SM._ext_wants_loads`` is assigned but never read
  (capability-gate-missing);
* ``MutedExtension`` overrides ``on_tick`` while pinning
  ``wants_ticks = False`` unconditionally (capability-flag-pinned);
* the ``muted`` architecture claims the ``vector`` backend in
  ``supports_backends`` while its runner attaches an extension
  (backend-capability-mismatch).
"""


def _flag(value, hook_name):
    return bool(value)


class SMExtension:
    wants_ticks = None
    wants_loads = None
    wants_evictions = None
    wants_fills = None

    def attach(self, sm):
        self.sm = sm
        cls = type(self)
        base = SMExtension
        if self.wants_ticks is None:
            self.wants_ticks = cls.on_tick is not base.on_tick
        if self.wants_loads is None:
            self.wants_loads = cls.on_load is not base.on_load
        if self.wants_stores is None:
            self.wants_stores = cls.on_store is not base.on_store
        if self.wants_fills is None:
            self.wants_fills = cls.allocate_fill is not base.allocate_fill

    def on_tick(self, cycle):
        pass

    def on_load(self, addr, cycle):
        pass

    def on_store(self, addr, cycle):
        pass

    def allocate_fill(self, addr, cycle):
        pass

    def on_snoop(self, addr):
        pass

    def finalize(self, cycle):
        pass


class SM:
    def __init__(self, ext):
        self.ext = ext
        ext.attach(self)
        self._ext_wants_ticks = _flag(ext.wants_ticks, "on_tick")
        self._ext_wants_loads = _flag(ext.wants_loads, "on_load")
        self._ext_wants_stores = _flag(ext.wants_stores, "on_tick")

    def tick(self, cycle):
        if self._ext_wants_ticks:
            self.ext.on_tick(cycle)

    def store(self, addr, cycle):
        if self._ext_wants_stores:
            self.ext.on_store(addr, cycle)


class MutedExtension(SMExtension):
    def __init__(self):
        self.wants_ticks = False

    def on_tick(self, cycle):
        pass


_REGISTRY = {}


def register(name, supports_backends=("object",)):
    def wrap(fn):
        _REGISTRY[name] = (fn, supports_backends)
        return fn

    return wrap


def run_kernel(config, kernel, extension_factory=None):
    pass


@register("muted", supports_backends=("object", "vector"))
def _run_muted(config, kernel):
    # backend-capability-mismatch: claims "vector" but attaches an
    # extension the vector engine cannot run.
    return run_kernel(config, kernel, extension_factory=MutedExtension)
