"""Twin of ``case_capability_bad.py`` with a fully consistent
flag <-> hook <-> gate contract. Must lint clean."""


def _flag(value, hook_name):
    return bool(value)


class SMExtension:
    wants_ticks = None
    wants_loads = None

    def attach(self, sm):
        self.sm = sm
        cls = type(self)
        base = SMExtension
        if self.wants_ticks is None:
            self.wants_ticks = cls.on_tick is not base.on_tick
        if self.wants_loads is None:
            self.wants_loads = cls.on_load is not base.on_load

    def on_tick(self, cycle):
        pass

    def on_load(self, addr, cycle):
        pass

    def finalize(self, cycle):
        pass


class SM:
    def __init__(self, ext):
        self.ext = ext
        ext.attach(self)
        self._ext_wants_ticks = _flag(ext.wants_ticks, "on_tick")
        self._ext_wants_loads = _flag(ext.wants_loads, "on_load")

    def tick(self, cycle):
        if self._ext_wants_ticks:
            self.ext.on_tick(cycle)

    def load(self, addr, cycle):
        if self._ext_wants_loads:
            self.ext.on_load(addr, cycle)


class ConfigurableExtension(SMExtension):
    """Pinning a flag is legal when guarded by configuration."""

    def __init__(self, enable_ticks):
        if not enable_ticks:
            self.wants_ticks = False

    def on_tick(self, cycle):
        pass


_REGISTRY = {}


def register(name, supports_backends=("object",)):
    def wrap(fn):
        _REGISTRY[name] = (fn, supports_backends)
        return fn

    return wrap


def run_kernel(config, kernel, extension_factory=None):
    pass


@register("plain", supports_backends=("object", "vector"))
def _run_plain(config, kernel):
    # A vector claim is fine on an extension-free runner.
    return run_kernel(config, kernel)


@register("extended")
def _run_extended(config, kernel):
    # Attaching an extension is fine when the arch stays object-only.
    return run_kernel(config, kernel, extension_factory=ConfigurableExtension)


@register("explicit_none", supports_backends=("object", "vector"))
def _run_explicit_none(config, kernel):
    # An explicit extension_factory=None is extension-free.
    return run_kernel(config, kernel, extension_factory=None)
