"""Seeded violations for the determinism pass — one per rule.

Includes a faithful reconstruction of the engine's historical
``best is _NO_EVENT`` bug: a ``float("inf")`` sentinel compared by
identity against a *computed* infinity, which only matched when
CPython happened to intern the value.
"""

import random
import time

_NO_EVENT = float("inf")


def next_event_cycle(event_times):
    best = _NO_EVENT
    for t in event_times:
        if t < best:
            best = t
    if best is _NO_EVENT:  # float-identity: the original bug
        return None
    return best


def drain_pending():
    pending = {3, 1, 2}
    order = []
    for warp_id in pending:  # set-iteration: hash order leaks out
        order.append(warp_id)
    return order


def memoize_by_object(memo, obj, value):
    memo[id(obj)] = value  # id-keyed-dict: unstable across processes
    return memo


def jitter_latency(base):
    return base + random.randint(0, 3)  # unseeded-random


def stamp_result(result):
    result["finished_at"] = time.time()  # wall-clock
    return result


def flow_sensitive_leak(flag):
    ids = {4, 5}
    if flag:
        ids = {6, 7}
    return [i for i in ids]  # set-iteration: a set reaches on every path
