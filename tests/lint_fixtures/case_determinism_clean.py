"""Behaviour-equivalent twin of ``case_determinism_bad.py`` using the
deterministic idioms every rule recommends. Must lint clean."""

import random

_NO_EVENT = float("inf")


def next_event_cycle(event_times):
    best = _NO_EVENT
    for t in event_times:
        if t < best:
            best = t
    if best == _NO_EVENT:  # value comparison, not identity
        return None
    return best


def drain_pending():
    pending = {3, 1, 2}
    order = []
    for warp_id in sorted(pending):  # explicit deterministic order
        order.append(warp_id)
    if len(pending) != len(order):
        raise AssertionError
    return order


def memoize_by_key(memo, obj, value):
    memo[obj.key] = value  # stable identity, not id()
    return memo


def jitter_latency(base, seed):
    rng = random.Random(seed)  # seeded, instance-local RNG
    return base + rng.randint(0, 3)


def stamp_result(result, cycle):
    result["finished_at"] = cycle  # simulated time, not the wall clock
    return result


def flow_sensitive_normalized(flag):
    ids = {4, 5}
    if flag:
        ids = sorted(ids)
    return [i for i in ids]  # a sorted() definition reaches: order is pinned


def seeded_draw():
    random.seed(2019)  # seeding dominates the draw below
    return random.random()
