"""Seeded violations for the pickle-safety pass: every way a factory
or registration can fail to cross the process boundary."""

ARCHITECTURES = {}


def demo_factory(depth=4):
    def build():
        return depth

    return build  # factory-closure


def anon_factory():
    return lambda: None  # factory-lambda


def boxed_factory():
    class Ext:
        pass

    return Ext()  # factory-local-class


def register_late():
    ARCHITECTURES["late"] = demo_factory  # registry-local-runner


def launch(run_kernel, config, kernel):
    return run_kernel(
        config, kernel, extension_factory=lambda: None  # factory-lambda
    )
