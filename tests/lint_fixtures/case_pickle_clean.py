"""Twin of ``case_pickle_bad.py`` using the repo's picklable idioms:
a frozen dataclass with ``__call__`` and module-level registration."""

from dataclasses import dataclass


class DemoExtension:
    __slots__ = ("depth",)

    def __init__(self, depth):
        self.depth = depth


@dataclass(frozen=True)
class DemoFactory:
    depth: int = 4

    def __call__(self):
        return DemoExtension(self.depth)


def demo_factory(depth=4):
    return DemoFactory(depth)


def launch(run_kernel, config, kernel):
    return run_kernel(config, kernel, extension_factory=DemoFactory())


ARCHITECTURES = {"demo": demo_factory}
ARCHITECTURES["demo_deep"] = DemoFactory(depth=8)
