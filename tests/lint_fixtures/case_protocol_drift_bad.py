"""Seeded schema drift for the protocol-drift pass.

Each encode/decode pair below disagrees about its field set, and the
``JobSpec`` mirror carries a field the HTTP surface never transports:

* wire hello: encoder emits ``pid`` the decoder never reads, decoder
  reads ``host`` the encoder never emits (two findings),
* config: encoder emits ``seed`` outside the decoder's closed world,
* ``JobSpec.priority`` never crosses the HTTP job surface,
* http job: encoder emits ``backend`` outside the decoder's closed
  world — the engine selector would be silently dropped on decode.
"""

import json
import os

PROTOCOL_VERSION = 3
JOB_SCHEMA_VERSION = 9


def encode_hello():
    return json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "type": "hello",
            "pid": os.getpid(),  # schema-twin-drift: decoder never reads "pid"
        }
    )


def decode_hello(line):
    msg = json.loads(line)
    if msg.get("v") != PROTOCOL_VERSION:
        raise ValueError("protocol mismatch")
    if msg.get("type") != "hello":
        raise ValueError("expected a hello")
    return msg.get("host")  # schema-twin-drift: encoder never emits "host"


def encode_config(config):
    return {
        "max_cycles": config.max_cycles,
        "seed": config.seed,  # schema-twin-drift: outside decoder's closed world
    }


def decode_config(doc):
    unknown = set(doc) - {"max_cycles"}
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return {"max_cycles": int(doc.get("max_cycles", 0))}


class JobSpec:
    app: str = ""
    arch: str = ""
    priority: int = 0  # schema-twin-drift: never transported over HTTP


def encode_jobspec(spec):
    doc = {
        "schema": JOB_SCHEMA_VERSION,
        "app": spec.app,
        "arch": spec.arch,
    }
    if spec.backend is not None:
        # schema-twin-drift: decoder's closed world never accepts "backend"
        doc["backend"] = spec.backend
    return doc


def decode_jobspec(doc):
    unknown = set(doc) - {"schema", "app", "arch"}
    if unknown:
        raise ValueError(f"unknown job fields: {sorted(unknown)}")
    return (doc.get("app"), doc.get("arch"))
