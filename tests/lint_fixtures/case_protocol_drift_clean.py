"""Twin of ``case_protocol_drift_bad.py`` with every surface in sync:
encoder and decoder agree on each field set, and every ``JobSpec``
field is either carried directly or folded into the ``options``
payload. Must lint clean."""

import json
import os

PROTOCOL_VERSION = 3
JOB_SCHEMA_VERSION = 9


def encode_hello():
    return json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "type": "hello",
            "pid": os.getpid(),
        }
    )


def decode_hello(line):
    msg = json.loads(line)
    if msg.get("v") != PROTOCOL_VERSION:
        raise ValueError("protocol mismatch")
    if msg.get("type") != "hello":
        raise ValueError("expected a hello")
    return msg.get("pid")


def encode_config(config):
    return {
        "max_cycles": config.max_cycles,
        "seed": config.seed,
    }


def decode_config(doc):
    unknown = set(doc) - {"max_cycles", "seed"}
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return {
        "max_cycles": int(doc.get("max_cycles", 0)),
        "seed": int(doc.get("seed", 0)),
    }


class JobSpec:
    app: str = ""
    arch: str = ""
    params: tuple = ()  # transported via the "options" payload


def encode_jobspec(spec):
    doc = {
        "schema": JOB_SCHEMA_VERSION,
        "app": spec.app,
        "arch": spec.arch,
    }
    if spec.params:
        doc["options"] = dict(spec.params)
    if spec.backend is not None:
        doc["backend"] = spec.backend
    return doc


def decode_jobspec(doc):
    unknown = set(doc) - {"schema", "app", "arch", "options", "backend"}
    if unknown:
        raise ValueError(f"unknown job fields: {sorted(unknown)}")
    return (doc.get("app"), doc.get("arch"), doc.get("options"),
            doc.get("backend"))
