"""Seeded violations for the slots pass.

``Warp`` is on the engine's hot list but lost its ``__slots__``;
``WindowMonitor`` declares slots but a rarely-taken method introduces
an attribute outside them (AttributeError on first execution).
"""


class Warp:  # hot-class-no-slots: per-instruction allocation
    def __init__(self, warp_id):
        self.warp_id = warp_id
        self.active = True


class WindowMonitor:
    __slots__ = ("window", "count")

    def __init__(self, window):
        self.window = window
        self.count = 0

    def record(self, n):
        self.count += n

    def snapshot(self):
        self.last_snapshot = self.count  # slots-attr-missing
        return self.count
