"""Twin of ``case_slots_bad.py`` with complete slot declarations."""


class Warp:
    __slots__ = ("warp_id", "active")

    def __init__(self, warp_id):
        self.warp_id = warp_id
        self.active = True


class WindowMonitor:
    __slots__ = ("window", "count", "last_snapshot")

    def __init__(self, window):
        self.window = window
        self.count = 0
        self.last_snapshot = 0

    def record(self, n):
        self.count += n

    def snapshot(self):
        self.last_snapshot = self.count
        return self.count
