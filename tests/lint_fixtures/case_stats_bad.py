"""Seeded violation for the stats-parity pass: ``phantom_events`` is
declared ``fingerprint=True`` but the golden fingerprint never reads
it, so the equivalence gate would miss regressions in it."""

from repro.metrics import Metric, MetricSet

SM_STATS = MetricSet(
    "SMStats",
    owner="fixtures.stats_bad",
    metrics=(
        Metric("instructions", fingerprint=True),
        Metric("loads", fingerprint=True),
        Metric("victim_hits", fingerprint=True),
        Metric("phantom_events", fingerprint=True),
    ),
)


def result_fingerprint(result):
    stats = result.stats
    return {
        "instructions": stats.instructions,
        "loads": stats.loads,
        "victim_hits": stats.victim_hits,
    }
