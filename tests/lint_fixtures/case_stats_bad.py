"""Seeded violation for the stats-parity pass: ``phantom_events`` is
a counter the golden fingerprint never reads, so the equivalence gate
would miss regressions in it."""

from dataclasses import dataclass


@dataclass(slots=True)
class SMStats:
    instructions: int = 0
    loads: int = 0
    victim_hits: int = 0
    phantom_events: int = 0  # stats-parity: escapes the golden gate


def result_fingerprint(result):
    stats = result.stats
    return {
        "instructions": stats.instructions,
        "loads": stats.loads,
        "victim_hits": stats.victim_hits,
    }
