"""Twin of ``case_stats_bad.py``: every fingerprint-declared metric
is pinned by the fingerprint. Must lint clean."""

from repro.metrics import Metric, MetricSet

SM_STATS = MetricSet(
    "SMStats",
    owner="fixtures.stats_clean",
    metrics=(
        Metric("instructions", fingerprint=True),
        Metric("loads", fingerprint=True),
        Metric("victim_hits", fingerprint=True),
        Metric("phantom_events"),
    ),
)


def result_fingerprint(result):
    stats = result.stats
    return {
        "instructions": stats.instructions,
        "loads": stats.loads,
        "victim_hits": stats.victim_hits,
    }
