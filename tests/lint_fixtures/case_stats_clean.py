"""Twin of ``case_stats_bad.py``: every counter is pinned by the
fingerprint. Must lint clean."""

from dataclasses import dataclass


@dataclass(slots=True)
class SMStats:
    instructions: int = 0
    loads: int = 0
    victim_hits: int = 0
    phantom_events: int = 0


def result_fingerprint(result):
    stats = result.stats
    return {
        "instructions": stats.instructions,
        "loads": stats.loads,
        "victim_hits": stats.victim_hits,
        "phantom_events": stats.phantom_events,
    }
