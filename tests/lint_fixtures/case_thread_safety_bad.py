"""Seeded lock-discipline violations for the thread-safety pass.

``MiniFleet`` reconstructs the PR 6-era ``WorkerFleet`` races: health
counters and ``last_error`` mutated by the dispatcher with no lock and
read by the stats endpoint, the worker table touched lock-free from
some entry points but guarded from others, an ABBA deadlock between
the book-keeping and I/O locks, and blocking calls (``time.sleep``,
``subprocess.Popen``) executed while holding the lock.
"""

import subprocess
import threading
import time


class MiniFleet:
    """Every public method is a thread root (HTTP handlers call in)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._workers = {}
        self.completed = 0
        self.last_error = ""

    def register(self, wid, proc):
        with self._lock:
            self._workers[wid] = proc

    def drain(self, wid):
        proc = self._workers.pop(wid, None)  # unguarded-attribute: lock-free pop
        if proc is None:
            return None
        self.completed += 1  # unsynchronized-attribute: racy counter
        return proc

    def fail(self, message):
        self.last_error = message  # unsynchronized-attribute: racy write

    def stats(self):
        return {
            "workers": len(self._workers),  # unguarded-attribute: lock-free read
            "completed": self.completed,  # unsynchronized-attribute: torn read
            "last_error": self.last_error,  # unsynchronized-attribute: torn read
        }

    def flush(self):
        with self._lock:
            with self._io_lock:  # lock-order: _lock -> _io_lock here ...
                time.sleep(0.01)  # lock-held-blocking: sleep under both locks

    def respawn(self, argv):
        with self._io_lock:
            with self._lock:  # lock-order: ... but _io_lock -> _lock here (ABBA)
                return subprocess.Popen(argv)  # lock-held-blocking: fork under locks
