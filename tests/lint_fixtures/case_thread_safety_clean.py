"""Behaviour-equivalent twin of ``case_thread_safety_bad.py`` with the
lock discipline the pass demands: one lock, every shared field guarded,
a single global acquisition order, and all blocking work (pipe I/O,
process spawning) outside the lock region. Must lint clean."""

import subprocess
import threading


class MiniFleet:
    def __init__(self):
        self._lock = threading.Lock()
        self._workers = {}
        self.completed = 0
        self.last_error = ""

    def register(self, wid, proc):
        with self._lock:
            self._workers[wid] = proc

    def drain(self, wid):
        with self._lock:
            proc = self._workers.pop(wid, None)
            if proc is None:
                return None
            self.completed += 1
        return proc

    def fail(self, message):
        with self._lock:
            self.last_error = message

    def stats(self):
        with self._lock:
            return {
                "workers": len(self._workers),
                "completed": self.completed,
                "last_error": self.last_error,
            }

    def flush(self):
        with self._lock:
            pending = list(self._workers.values())
        for proc in pending:
            proc.stdin.flush()  # pipe I/O happens outside the lock

    def respawn(self, wid, argv):
        proc = subprocess.Popen(argv)  # fork first, register under the lock
        with self._lock:
            self._workers[wid] = proc
        return proc
