"""Seeded drift on the workload-spec document surface.

``encode_workload`` emits ``shared_mem_per_cta`` outside the decoder's
closed world, and ``decode_workload`` reads ``priority`` the encoder
never emits — two ``schema-twin-drift`` findings.
"""

WORKLOAD_SPEC_VERSION = 7


def encode_workload(spec):
    return {
        "spec": WORKLOAD_SPEC_VERSION,
        "name": spec.name,
        "num_ctas": spec.num_ctas,
        "shared_mem_per_cta": spec.shared_mem_per_cta,  # drift: decoder drops it
    }


def decode_workload(doc):
    unknown = set(doc) - {"spec", "name", "num_ctas"}
    if unknown:
        raise ValueError(f"unknown workload fields: {sorted(unknown)}")
    if doc.get("spec") != WORKLOAD_SPEC_VERSION:
        raise ValueError("workload spec version mismatch")
    return (
        doc.get("name"),
        int(doc.get("num_ctas", 1)),
        doc.get("priority"),  # drift: encoder never emits "priority"
    )
