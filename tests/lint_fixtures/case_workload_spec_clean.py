"""Twin of ``case_workload_spec_bad.py`` with the workload-spec
encode/decode pair in sync. Must lint clean."""

WORKLOAD_SPEC_VERSION = 7


def encode_workload(spec):
    return {
        "spec": WORKLOAD_SPEC_VERSION,
        "name": spec.name,
        "num_ctas": spec.num_ctas,
        "shared_mem_per_cta": spec.shared_mem_per_cta,
    }


def decode_workload(doc):
    unknown = set(doc) - {"spec", "name", "num_ctas", "shared_mem_per_cta"}
    if unknown:
        raise ValueError(f"unknown workload fields: {sorted(unknown)}")
    if doc.get("spec") != WORKLOAD_SPEC_VERSION:
        raise ValueError("workload spec version mismatch")
    return (
        doc.get("name"),
        int(doc.get("num_ctas", 1)),
        int(doc.get("shared_mem_per_cta", 0)),
    )
