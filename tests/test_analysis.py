"""Tests for the analysis layer: context memoization, report tables,
and a smoke pass over a couple of figure runners on tiny inputs."""

import pytest

from repro.analysis import ExperimentContext, format_series, format_table, geomean
from repro.analysis.experiments import run_fig1, run_fig4, run_fig9, run_fig16
from repro.config import scaled_config


@pytest.fixture(scope="module")
def tiny_ctx():
    return ExperimentContext(
        config=scaled_config(num_sms=2, window_cycles=800),
        scale=0.15,
        apps=("S2", "LI"),
    )


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestFormatting:
    def test_table_contains_rows_and_columns(self):
        text = format_table("T", {"a": {"x": 1.0, "y": 2.0}}, columns=("x", "y"))
        assert "== T ==" in text
        assert "a" in text and "1.000" in text and "2.000" in text

    def test_table_empty(self):
        assert "(no data)" in format_table("T", {})

    def test_table_missing_cell_is_nan(self):
        text = format_table("T", {"a": {"x": 1.0}}, columns=("x", "z"))
        assert "nan" in text

    def test_series(self):
        text = format_series("S", {"k": 1.5, "n": 3})
        assert "1.500" in text and "3" in text


class TestContext:
    def test_baseline_memoized(self, tiny_ctx):
        first = tiny_ctx.run("S2", "baseline")
        second = tiny_ctx.run("S2", "baseline")
        assert first is second

    def test_kernel_memoized(self, tiny_ctx):
        assert tiny_ctx.kernel("S2") is tiny_ctx.kernel("S2")

    def test_linebacker_distinct_from_baseline(self, tiny_ctx):
        assert tiny_ctx.run("S2", "linebacker") is not tiny_ctx.run("S2", "baseline")

    def test_ablation_configs_memoized_separately(self, tiny_ctx):
        vc = tiny_ctx.run("S2", "victim_caching")
        svc = tiny_ctx.run("S2", "selective_victim_caching")
        assert vc is not svc


class TestFigureRunnersSmoke:
    def test_fig1_shape(self, tiny_ctx):
        data = run_fig1(tiny_ctx)
        assert set(data) == {"S2", "LI"}
        for row in data.values():
            assert 0.0 <= row["total"] <= 1.0
            assert row["total"] == pytest.approx(
                row["cold"] + row["capacity_conflict"]
            )

    def test_fig4_shape(self, tiny_ctx):
        data = run_fig4(tiny_ctx)
        for row in data.values():
            assert row["sur_kb"] >= 0
            assert row["dur_kb"] >= 0
            assert row["swl_limit"] >= 1

    def test_fig9_reports_monitoring_periods(self, tiny_ctx):
        data = run_fig9(tiny_ctx)
        assert all(row["monitoring_periods"] >= 0 for row in data.values())

    def test_fig16_normalized_positive(self, tiny_ctx):
        data = run_fig16(tiny_ctx)
        for app in ("S2", "LI"):
            assert data[app]["cerf"] >= 0
            assert data[app]["linebacker"] >= 0
