"""Tests for the ``repro.api`` Session facade (local transport) and the
consolidated :class:`~repro.options.RunOptions`.

The remote transport (``Session.connect``) is exercised end-to-end in
``tests/test_service.py`` against a live coordinator; everything here
runs in-process, pinning the facade's contract: spec identity is
preserved exactly (options or legacy kwargs, facade or engine — same
content hash, same cache entries), and handles behave the same way
they do over HTTP.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from repro.api import JobHandle, Session, run_many_results  # noqa: E402
from repro.config import scaled_config  # noqa: E402
from repro.gpu import run_kernel  # noqa: E402
from repro.options import RUN_OPTION_FIELDS, RunOptions  # noqa: E402
from repro.runner import JobSpec  # noqa: E402
from repro.workloads import kernel_for  # noqa: E402

CFG = scaled_config(num_sms=1, window_cycles=600)
TINY = 0.05


@pytest.fixture(scope="module")
def session():
    with Session.local(workers=1, config=CFG, scale=TINY) as s:
        yield s


class TestRunOptions:
    def test_defaults_serialize_to_nothing(self):
        assert RunOptions().to_overrides() == {}

    def test_only_non_defaults_serialize(self):
        opts = RunOptions(timeseries=True, max_concurrent_ctas=4)
        assert opts.to_overrides() == {
            "timeseries": True,
            "max_concurrent_ctas": 4,
        }

    def test_from_overrides_splits_leftovers(self):
        opts, rest = RunOptions.from_overrides(
            {"track_loads": True, "lb_config": None}
        )
        assert opts.track_loads is True
        assert rest == {"lb_config": None}

    def test_replace_is_functional(self):
        base = RunOptions()
        assert base.replace(timeseries=True).timeseries is True
        assert base.timeseries is False

    def test_field_registry_matches_dataclass(self):
        assert set(RUN_OPTION_FIELDS) == {
            "track_loads",
            "keep_objects",
            "timeseries",
            "max_concurrent_ctas",
            "backend",
        }

    def test_spec_key_identical_for_options_and_legacy_kwargs(self):
        legacy = JobSpec.build(
            app="S2", arch="baseline", config=CFG, scale=TINY,
            overrides={"track_loads": True},
        )
        typed = JobSpec.build(
            app="S2", arch="baseline", config=CFG, scale=TINY,
            options=RunOptions(track_loads=True),
        )
        assert legacy.key == typed.key

    def test_spec_options_property_reads_back(self):
        spec = JobSpec.build(
            app="S2", arch="linebacker", config=CFG, scale=TINY,
            options=RunOptions(timeseries=True),
        )
        assert spec.options == RunOptions(timeseries=True)

    def test_run_kernel_accepts_options_object(self):
        kernel = kernel_for("S2", TINY)
        via_options = run_kernel(
            CFG, kernel, options=RunOptions(track_loads=True)
        )
        via_kwargs = run_kernel(CFG, kernel, track_loads=True)
        assert via_options.instructions == via_kwargs.instructions
        assert via_options.sms[0].load_tracker is not None

    def test_run_kernel_rejects_mixing_styles(self):
        with pytest.raises(TypeError, match="not both"):
            run_kernel(
                CFG, kernel_for("S2", TINY),
                options=RunOptions(), track_loads=True,
            )


class TestSessionLocal:
    def test_run_returns_handle_with_result(self, session):
        handle = session.run("S2", "baseline")
        assert isinstance(handle, JobHandle)
        assert handle.status() == "done"
        assert handle.result().instructions > 0

    def test_results_are_memo_shared(self, session):
        first = session.run("S2", "baseline").result()
        second = session.run("S2", "baseline").result()
        assert first is second

    def test_run_many_accepts_tuples_and_specs(self, session):
        spec = session.spec("LI", "baseline")
        handles = session.run_many(
            [("S2", "baseline"), ("S2", "linebacker"), spec]
        )
        assert [h.job_id for h in handles] == [
            session.spec("S2", "baseline").key,
            session.spec("S2", "linebacker").key,
            spec.key,
        ]
        results = [h.result() for h in handles]
        assert all(r.instructions > 0 for r in results)

    def test_run_many_results_helper_orders_like_input(self, session):
        results = run_many_results(
            session, [("S2", "baseline"), ("LI", "baseline")]
        )
        assert len(results) == 2
        assert results[0] is session.run("S2", "baseline").result()

    def test_trace_forces_timeseries_and_streams(self, session):
        handle = session.trace("S2", "linebacker")
        assert handle.spec.options.timeseries is True
        rows = list(handle.stream_timeseries())
        assert rows and all("ipc" in row for row in rows)

    def test_trace_rejects_unsupported_arch(self, session):
        with pytest.raises(ValueError, match="timeseries"):
            session.trace("S2", "best_swl")

    def test_stream_on_plain_run_is_an_error(self, session):
        handle = session.run("S2", "baseline")
        with pytest.raises(ValueError, match="timeseries"):
            list(handle.stream_timeseries())

    def test_spec_uses_session_defaults(self, session):
        spec = session.spec("S2", "baseline")
        assert spec.scale == TINY
        assert spec.config is CFG or spec.config == CFG

    def test_facade_spec_matches_engine_spec(self, session):
        direct = JobSpec.build(
            app="KM", arch="linebacker", config=CFG, scale=TINY
        )
        assert session.spec("KM", "linebacker").key == direct.key

    def test_stats_exposes_runner_counters(self, session):
        session.run("S2", "baseline").result()
        assert session.stats.simulated + session.stats.memo_hits >= 1

    def test_constructor_demands_exactly_one_transport(self):
        with pytest.raises(ValueError, match="exactly one"):
            Session()

    def test_close_is_idempotent(self):
        s = Session.local(workers=1, config=CFG, scale=TINY)
        s.close()
        s.close()
