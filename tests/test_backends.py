"""The pluggable execution-backend layer (``repro.engine``).

Four contracts, mirroring the ISSUE's acceptance bars:

* **Registry/selection**: name resolution, the ``None`` → object
  default, unknown names, duplicate registration, and the per-arch
  ``supports_backends`` capability table.
* **Golden differential**: the vector engine is bit-identical to the
  object engine — every reported statistic — across the extension-free
  architectures, a pinned app matrix, the committed fuzz-corpus specs,
  and every executor path (inline, loopback).
* **Loud fallback**: a backend that cannot run a request warns with
  :class:`BackendFallbackWarning` and runs on ``object``; a supported
  request never warns.
* **Cache identity**: ``backend`` participates in job content hashes
  when set and stays hash-neutral when unset, across the in-process
  spec builder and the HTTP job schema (v3 validation included).
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    BackendError,
    BackendFallbackWarning,
    EngineBackend,
    EngineRequest,
    backend_names,
    dispatch,
    register_backend,
    resolve_backend,
)
from repro.options import RunOptions
from repro.runner import ExperimentRunner, JobSpec
from repro.runner.registry import ARCHITECTURES, resolve
from repro.service.schema import (
    JOB_SCHEMA_VERSION,
    SchemaError,
    decode_jobspec,
    encode_jobspec,
)
from repro.workloads.spec import build_workload, load_workload_file
from repro.workloads.suite import kernel_for

CORPUS = Path(__file__).parent / "fuzz_corpus"

#: The pinned golden matrix: extension-free archs x apps with distinct
#: memory behaviour (streaming, reuse-heavy, divergent, mixed).
GOLDEN_ARCHS = ("baseline", "best_swl", "cache_ext")
GOLDEN_APPS = ("S2", "LI", "BG")
SCALE = 0.05
SMS = 2


def fingerprint(result) -> dict:
    """Every reported statistic of a simulation result."""
    stats = result.sm_stats
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "loads": sum(s.loads for s in stats),
        "stores": sum(s.stores for s in stats),
        "l1_hits": sum(s.l1_hits for s in stats),
        "l1_misses": sum(s.l1_misses for s in stats),
        "victim_hits": sum(s.victim_hits for s in stats),
        "bypasses": sum(s.bypasses for s in stats),
        "mem_requests": sum(s.mem_requests for s in stats),
        "dram_reads": result.dram_reads,
        "dram_writes": result.dram_writes,
        "per_sm_instructions": [s.instructions for s in stats],
    }


def arch_fingerprint(arch: str, result) -> dict:
    """Fingerprint for either return shape (result | best_swl)."""
    if resolve(arch).returns == "best_swl":
        fp = fingerprint(result.best_result)
        fp["best_limit"] = result.best_limit
        fp["sweep_ipc"] = result.sweep_ipc
        return fp
    return fingerprint(result)


def run_arch(arch: str, kernel, backend=None, sms=SMS):
    from repro.baselines.swl import clear_cache

    clear_cache()  # the Best-SWL memo must not serve the other leg
    config = scaled_config(num_sms=sms)
    return resolve(arch).runner(config, kernel, backend=backend)


# ---------------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_are_registered(self):
        assert backend_names() == ("object", "vector")
        for name in backend_names():
            assert isinstance(BACKENDS[name], EngineBackend)
            assert BACKENDS[name].name == name

    def test_none_resolves_to_default(self):
        assert resolve_backend(None).name == DEFAULT_BACKEND == "object"

    def test_explicit_names_resolve(self):
        assert resolve_backend("object").name == "object"
        assert resolve_backend("vector").name == "vector"

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(BackendError, match="object.*vector"):
            resolve_backend("cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend(BACKENDS["object"])

    def test_supports_backends_capability_table(self):
        for name, spec in ARCHITECTURES.items():
            assert "object" in spec.supports_backends, name
            for backend in spec.supports_backends:
                assert backend in backend_names(), (name, backend)
        # Extension-attaching archs are object-only; extension-free
        # ones advertise the vector engine.
        assert ARCHITECTURES["linebacker"].supports_backends == ("object",)
        assert "vector" in ARCHITECTURES["baseline"].supports_backends
        assert "vector" in ARCHITECTURES["best_swl"].supports_backends
        assert "vector" in ARCHITECTURES["cache_ext"].supports_backends

    def test_vector_declines_unsupported_features(self):
        kernel = kernel_for("S2", SCALE)
        config = scaled_config(num_sms=1)
        vector = BACKENDS["vector"]
        base = dict(config=config, kernel=kernel)
        assert vector.supports(EngineRequest(**base)) is None
        declined = (
            dict(extension_factory=lambda: None),
            dict(track_loads=True),
            dict(keep_objects=True),
            dict(timeseries=True),
        )
        for knobs in declined:
            reason = vector.supports(EngineRequest(**base, **knobs))
            assert reason is not None, knobs


# ---------------------------------------------------------------------------
# Golden differential: vector == object, bit for bit
# ---------------------------------------------------------------------------
class TestGoldenDifferential:
    @pytest.mark.parametrize("arch", GOLDEN_ARCHS)
    @pytest.mark.parametrize("app", GOLDEN_APPS)
    def test_vector_matches_object(self, arch, app):
        kernel = kernel_for(app, SCALE)
        obj = arch_fingerprint(arch, run_arch(arch, kernel))
        vec = arch_fingerprint(arch, run_arch(arch, kernel, backend="vector"))
        assert vec == obj

    @pytest.mark.parametrize(
        "corpus_file", sorted(p.name for p in CORPUS.glob("*.json"))
    )
    def test_vector_matches_object_on_fuzz_corpus(self, corpus_file):
        spec = load_workload_file(CORPUS / corpus_file)
        kernel = build_workload(spec, scale=1.0)
        obj = fingerprint(run_arch("baseline", kernel, sms=1))
        vec = fingerprint(run_arch("baseline", kernel, "vector", sms=1))
        assert vec == obj

    def test_corpus_is_present(self):
        # The parametrization above must never silently become empty.
        assert len(list(CORPUS.glob("*.json"))) >= 3


# ---------------------------------------------------------------------------
# Executor paths: the backend override rides the job spec everywhere
# ---------------------------------------------------------------------------
class TestExecutors:
    @pytest.fixture(scope="class")
    def inline_object(self):
        runner = ExperimentRunner(use_cache=False, executor="inline")
        return runner.run(self._spec(backend=None)).ipc

    def _spec(self, backend):
        options = RunOptions(backend=backend)
        return JobSpec.build(
            app="S2",
            arch="baseline",
            config=scaled_config(num_sms=SMS),
            scale=SCALE,
            options=options,
        )

    @pytest.mark.parametrize("executor", ["inline", "loopback"])
    def test_vector_matches_object_via_executor(self, executor, inline_object):
        runner = ExperimentRunner(use_cache=False, executor=executor)
        result = runner.run(self._spec(backend="vector"))
        assert result.ipc == inline_object


# ---------------------------------------------------------------------------
# Fallback semantics
# ---------------------------------------------------------------------------
class TestFallback:
    def test_unsupported_request_warns_and_matches_object(self):
        kernel = kernel_for("S2", SCALE)
        config = scaled_config(num_sms=1)
        with pytest.warns(BackendFallbackWarning, match="extension"):
            vec = resolve("linebacker").runner(config, kernel, backend="vector")
        obj = resolve("linebacker").runner(config, kernel)
        assert fingerprint(vec) == fingerprint(obj)

    def test_supported_request_never_warns(self):
        kernel = kernel_for("S2", SCALE)
        config = scaled_config(num_sms=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            resolve("baseline").runner(config, kernel, backend="vector")

    def test_dispatch_object_never_warns(self):
        kernel = kernel_for("S2", SCALE)
        request = EngineRequest(
            config=scaled_config(num_sms=1), kernel=kernel, timeseries=True
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            dispatch("object", request)

    def test_dispatch_unknown_backend_raises(self):
        kernel = kernel_for("S2", SCALE)
        request = EngineRequest(config=scaled_config(num_sms=1), kernel=kernel)
        with pytest.raises(BackendError):
            dispatch("cuda", request)


# ---------------------------------------------------------------------------
# Cache identity
# ---------------------------------------------------------------------------
class TestCacheIdentity:
    def _spec(self, **options):
        return JobSpec.build(
            app="S2",
            arch="baseline",
            config=scaled_config(),
            scale=SCALE,
            options=RunOptions(**options) if options else None,
        )

    def test_backend_separates_cache_keys(self):
        assert self._spec(backend="vector").key != self._spec().key
        assert (
            self._spec(backend="vector").key != self._spec(backend="object").key
        )

    def test_none_backend_is_hash_neutral(self):
        # A default-constructed RunOptions must hash like no options at
        # all, so pre-backend cache entries stay valid.
        assert self._spec(backend=None).key == self._spec().key

    def test_backend_rides_in_params(self):
        spec = self._spec(backend="vector")
        assert ("backend", "vector") in spec.params


# ---------------------------------------------------------------------------
# HTTP job schema v3
# ---------------------------------------------------------------------------
class TestSchema:
    def _doc(self, arch="baseline", backend="vector"):
        spec = JobSpec.build(
            app="S2",
            arch=arch,
            config=scaled_config(),
            scale=SCALE,
            options=RunOptions(backend=backend),
        )
        return encode_jobspec(spec), spec

    def test_round_trip_preserves_backend_and_key(self):
        doc, spec = self._doc()
        assert doc["schema"] == JOB_SCHEMA_VERSION == 3
        assert doc["options"] == {"backend": "vector"}
        decoded = decode_jobspec(doc)
        assert decoded == spec
        assert decoded.key == spec.key

    def test_unknown_backend_rejected(self):
        doc, _ = self._doc()
        doc["options"]["backend"] = "cuda"
        with pytest.raises(SchemaError, match="unknown backend 'cuda'"):
            decode_jobspec(doc)

    def test_arch_backend_mismatch_rejected(self):
        doc = {
            "schema": JOB_SCHEMA_VERSION,
            "app": "S2",
            "arch": "linebacker",
            "options": {"backend": "vector"},
        }
        with pytest.raises(SchemaError, match="does not support"):
            decode_jobspec(doc)

    def test_object_backend_is_wire_legal_everywhere(self):
        doc = {
            "schema": JOB_SCHEMA_VERSION,
            "app": "S2",
            "arch": "linebacker",
            "options": {"backend": "object"},
        }
        spec = decode_jobspec(doc)
        assert ("backend", "object") in spec.params
