"""Unit tests for the register backup/restore engine."""

import pytest

from repro.config import WARP_REGISTER_BYTES, GPUConfig
from repro.core.backup import RegisterBackupEngine
from repro.gpu.register_file import RegisterFile
from repro.memory.subsystem import MemorySubsystem


class Harness:
    """A minimal event loop standing in for the SM's heap."""

    def __init__(self):
        self.memory = MemorySubsystem(GPUConfig(num_sms=1))
        self.engine = RegisterBackupEngine(self.memory)
        self.rf = RegisterFile(256 * 1024)
        self.events = []

    def schedule(self, ready, callback):
        self.events.append((ready, callback))

    def drain(self):
        for ready, callback in sorted(self.events, key=lambda e: e[0]):
            callback(ready)
        self.events.clear()


class TestBackup:
    def test_backup_captures_values_and_sets_c_bit(self):
        h = Harness()
        regs = h.rf.allocate(8, owner=0)
        for i, r in enumerate(regs):
            h.rf.write(r, 100 + i)
        done = []
        record = h.engine.backup(
            h.rf, regs, cycle=0, on_complete=done.append, schedule=h.schedule
        )
        assert not record.complete  # C bit false until the drain
        h.drain()
        assert record.complete
        assert done
        assert record.values == [100 + i for i in range(8)]

    def test_backup_pointer_advances_by_reg_bytes(self):
        """BP += #reg x 128 after each backup (paper Section 4.1)."""
        h = Harness()
        regs = h.rf.allocate(10, owner=0)
        bp_before = h.engine.backup_pointer
        h.engine.backup(h.rf, regs, 0, lambda c: None, h.schedule)
        assert h.engine.backup_pointer == bp_before + 10 * WARP_REGISTER_BYTES

    def test_backup_generates_offchip_write_traffic(self):
        h = Harness()
        regs = h.rf.allocate(16, owner=0)
        h.engine.backup(h.rf, regs, 0, lambda c: None, h.schedule)
        assert h.memory.traffic.backup_write_lines == 16

    def test_backup_completion_takes_dram_time(self):
        h = Harness()
        regs = h.rf.allocate(128, owner=0)
        completions = []
        h.engine.backup(h.rf, regs, 0, completions.append, h.schedule)
        h.drain()
        # 128 lines through the DRAM server cannot complete instantly.
        assert completions[0] > h.memory.config.dram_latency


class TestRestore:
    def _backed_up(self, h, n=8):
        regs = h.rf.allocate(n, owner=0)
        values = []
        for i, r in enumerate(regs):
            h.rf.write(r, 500 + i)
            values.append(500 + i)
        record = h.engine.backup(h.rf, regs, 0, lambda c: None, h.schedule)
        h.drain()
        h.rf.free(regs)
        return record, values

    def test_roundtrip_restores_exact_values(self):
        """End-to-end invariant: a restored CTA sees exactly the
        register tokens it backed up."""
        h = Harness()
        record, values = self._backed_up(h)
        new_regs = h.rf.allocate(8, owner=0)
        done = []
        h.engine.restore(record, h.rf, new_regs, 100, done.append, h.schedule)
        h.drain()
        assert done
        assert [h.rf.peek(r) for r in new_regs] == values

    def test_restore_to_different_location(self):
        """FRN may change across a throttle/restore cycle."""
        h = Harness()
        record, values = self._backed_up(h)
        h.rf.allocate(64, owner=9)  # force a different placement
        new_regs = h.rf.allocate(8, owner=0)
        assert new_regs.start != record.first_register
        h.engine.restore(record, h.rf, new_regs, 0, lambda c: None, h.schedule)
        h.drain()
        assert [h.rf.peek(r) for r in new_regs] == values

    def test_restore_before_backup_complete_raises(self):
        """The C bit gates restores (paper Section 4.1)."""
        h = Harness()
        regs = h.rf.allocate(4, owner=0)
        record = h.engine.backup(h.rf, regs, 0, lambda c: None, h.schedule)
        with pytest.raises(RuntimeError):
            h.engine.restore(record, h.rf, regs, 0, lambda c: None, h.schedule)

    def test_restore_size_mismatch_raises(self):
        h = Harness()
        record, _ = self._backed_up(h, n=8)
        wrong = h.rf.allocate(4, owner=1)
        with pytest.raises(ValueError):
            h.engine.restore(record, h.rf, wrong, 0, lambda c: None, h.schedule)

    def test_restore_generates_read_traffic(self):
        h = Harness()
        record, _ = self._backed_up(h, n=8)
        new_regs = h.rf.allocate(8, owner=0)
        h.engine.restore(record, h.rf, new_regs, 0, lambda c: None, h.schedule)
        assert h.memory.traffic.restore_read_lines == 8

    def test_record_removed_after_restore(self):
        h = Harness()
        record, _ = self._backed_up(h)
        addr = record.backup_address
        new_regs = h.rf.allocate(8, owner=0)
        h.engine.restore(record, h.rf, new_regs, 0, lambda c: None, h.schedule)
        h.drain()
        assert h.engine.stored_record(addr) is None
