"""Tests for the comparison architectures: SWL/Best-SWL, PCAL, CERF,
and the idealized CacheExt configurations."""

import pytest

from repro.baselines.cache_ext import (
    config_with_cache_ext,
    extended_l1_bytes,
    run_cache_ext,
)
from repro.baselines.cerf import CERFExtension, run_cerf
from repro.baselines.pcal import PCALExtension, run_pcal
from repro.baselines.swl import best_swl, clear_cache, run_swl, sweep_limits
from repro.config import scaled_config
from repro.core.load_monitor import MonitorState
from repro.gpu.gpu import run_kernel
from repro.workloads.generator import AppSpec, LoadSpec, Pattern, Scope, build_kernel


def config():
    return scaled_config(num_sms=1, window_cycles=400)


def kernel(ws=256, ctas=8, warps=4, iters=80):
    spec = AppSpec(
        name="k", description="t", cache_sensitive=True,
        num_ctas=ctas, warps_per_cta=warps, regs_per_thread=16,
        iterations=iters, alu_per_iteration=2,
        loads=(
            LoadSpec(0x100, Pattern.DIVERGENT, ws, Scope.GLOBAL, lines_per_access=1),
            LoadSpec(0x204, Pattern.STREAM, 0),
        ),
    )
    return build_kernel(spec)


class TestSWL:
    def test_sweep_limits_sorted_and_bounded(self):
        limits = sweep_limits(16)
        assert limits == sorted(limits)
        assert limits[0] == 1 and limits[-1] == 16

    def test_run_swl_respects_limit(self):
        cfg = config()
        result = run_swl(cfg, kernel(), cta_limit=2)
        assert result.instructions > 0

    def test_rejects_zero_limit(self):
        with pytest.raises(ValueError):
            run_swl(config(), kernel(), cta_limit=0)

    def test_best_swl_picks_max_ipc(self):
        cfg = config()
        outcome = best_swl(cfg, kernel())
        assert outcome.ipc == max(outcome.sweep_ipc.values())
        assert outcome.sweep_ipc[outcome.best_limit] == outcome.ipc

    def test_best_swl_memoizes(self):
        clear_cache()
        cfg = config()
        k = kernel()
        first = best_swl(cfg, k, cache_key=("test-app",))
        second = best_swl(cfg, k, cache_key=("test-app",))
        assert first is second
        clear_cache()


class TestPCAL:
    def test_pcal_disables_victim_caching(self):
        ext = PCALExtension()
        assert not ext.config.enable_victim_cache
        assert not ext.config.enable_throttling
        assert ext.bypass is not None

    def test_pcal_produces_bypasses(self):
        cfg = config()
        result = run_pcal(cfg, kernel(iters=160))
        bypasses = sum(s.bypasses for s in result.sm_stats)
        assert bypasses > 0
        assert result.request_breakdown["bypass"] > 0

    def test_pcal_never_reg_hits(self):
        cfg = config()
        result = run_pcal(cfg, kernel())
        assert result.request_breakdown["reg_hit"] == 0

    def test_pcal_completes_all_work(self):
        cfg = config()
        k = kernel()
        base = run_kernel(cfg, k)
        pcal = run_pcal(cfg, k)
        assert pcal.instructions == base.instructions


class TestCERF:
    def test_cerf_active_from_start(self):
        """CERF has no monitoring phase: register-space caching is on
        from the first cycle."""
        ext = CERFExtension()

        class _SMStub:
            pass

        # attach() requires a real SM; exercise the flags directly.
        assert not ext.config.enable_selective
        assert not ext.config.enable_throttling

    def test_cerf_produces_reg_hits_on_locality(self):
        cfg = config()
        result = run_cerf(cfg, kernel(ws=512, iters=160))
        assert result.request_breakdown["reg_hit"] > 0

    def test_cerf_caches_streaming_data_too(self):
        """No selectivity: stream evictions land in register space,
        the weakness Linebacker's Load Monitor fixes (Section 5.2)."""
        cfg = config()
        result = run_cerf(cfg, kernel(iters=120))
        ext = result.extensions[0]
        assert ext.stats.victim_inserts > 0
        assert ext.load_monitor.state is MonitorState.SELECTED

    def test_cerf_completes_all_work(self):
        cfg = config()
        k = kernel()
        base = run_kernel(cfg, k)
        cerf = run_cerf(cfg, k)
        assert cerf.instructions == base.instructions

    def test_cerf_uses_more_register_traffic_than_baseline(self):
        cfg = config()
        k = kernel(ws=512, iters=120)
        base = run_kernel(cfg, k)
        cerf = run_cerf(cfg, k)
        base_rf = sum(rf.reads + rf.writes for rf in base.rf_stats)
        cerf_rf = sum(rf.reads + rf.writes for rf in cerf.rf_stats)
        assert cerf_rf > base_rf


class TestCacheExt:
    def test_extended_size_aligned_to_sets(self):
        cfg = config()
        k = kernel()
        size = extended_l1_bytes(cfg, k, extra_bytes=100_000)
        assert size % (cfg.gpu.l1_assoc * cfg.gpu.l1_line_bytes) == 0
        assert size > cfg.gpu.l1_size_bytes

    def test_config_with_cache_ext_grows_l1(self):
        cfg = config()
        k = kernel()  # regs 16 x 4 warps -> plenty of SUR
        ext_cfg = config_with_cache_ext(cfg, k)
        assert ext_cfg.gpu.l1_size_bytes > cfg.gpu.l1_size_bytes

    def test_cache_ext_improves_thrashing_kernel(self):
        cfg = config()
        k = kernel(ws=1024, iters=120)
        base = run_kernel(cfg, k)
        ext = run_cache_ext(cfg, k)
        assert ext.l1_hit_ratio >= base.l1_hit_ratio

    def test_dur_included_for_swl_limit(self):
        cfg = config()
        k = kernel()
        sur_only = config_with_cache_ext(cfg, k)
        with_dur = config_with_cache_ext(cfg, k, include_dur_for_limit=2)
        assert with_dur.gpu.l1_size_bytes >= sur_only.gpu.l1_size_bytes
