"""Unit tests for the set-associative cache (repro.memory.cache)."""

import pytest

from repro.memory.cache import SetAssociativeCache


def make_cache(size=8 * 1024, assoc=4, line=128, hook=None):
    return SetAssociativeCache(size, assoc, line, eviction_hook=hook)


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(size=48 * 1024, assoc=8)
        assert cache.num_sets == 48

    def test_paper_l1_geometry(self):
        """Table 1: 48 KB, 8-way, 128 B lines -> 48 sets."""
        cache = make_cache(size=48 * 1024, assoc=8, line=128)
        assert cache.num_sets * cache.assoc * cache.line_bytes == 48 * 1024

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError):
            make_cache(size=1000, assoc=4)

    def test_set_index_and_tag_are_inverse(self):
        cache = make_cache()
        for addr in (0, 1, 47, 1000, 123456):
            s, t = cache.set_index(addr), cache.tag_of(addr)
            assert t * cache.num_sets + s == addr


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(10) is None
        cache.fill(10, token=99)
        line = cache.lookup(10)
        assert line is not None
        assert line.token == 99

    def test_probe_does_not_touch_stats(self):
        cache = make_cache()
        cache.probe(5)
        assert cache.stats.accesses == 0

    def test_lookup_counts_hits_and_misses(self):
        cache = make_cache()
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_fill_same_line_refreshes_without_eviction(self):
        cache = make_cache()
        cache.fill(3, token=1)
        evicted = cache.fill(3, token=2)
        assert evicted is None
        assert cache.probe(3).token == 2

    def test_hpc_field_updates_on_access(self):
        """Each L1 line carries the hashed PC of its last accessor
        (paper Section 4, HPC field)."""
        cache = make_cache()
        cache.fill(7, hpc=3)
        cache.lookup(7, hpc=9)
        assert cache.probe(7).hpc == 9


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        cache = make_cache(size=4 * 128, assoc=4, line=128)  # one set
        for addr in range(0, 4):
            cache.fill(addr * cache.num_sets)
        cache.lookup(0)  # refresh line 0
        evicted = cache.fill(4 * cache.num_sets)
        assert evicted is not None
        evicted_addr, _ = evicted
        assert evicted_addr == 1 * cache.num_sets  # line 1 was LRU

    def test_eviction_hook_called_with_line(self):
        seen = []
        cache = SetAssociativeCache(
            2 * 128, 2, 128, eviction_hook=lambda a, l: seen.append((a, l.token))
        )
        cache.fill(0, token=10)
        cache.fill(cache.num_sets, token=11)
        cache.fill(2 * cache.num_sets, token=12)
        assert seen == [(0, 10)]

    def test_occupancy_capped_by_capacity(self):
        cache = make_cache(size=8 * 128, assoc=8, line=128)
        for addr in range(100):
            cache.fill(addr)
        assert cache.occupancy() <= 8


class TestColdVsCapacityClassification:
    """Paper Figure 1 relies on cold vs capacity/conflict (2C) misses."""

    def test_first_touch_is_cold(self):
        cache = make_cache()
        cache.lookup(42)
        assert cache.stats.cold_misses == 1
        assert cache.stats.capacity_conflict_misses == 0

    def test_re_miss_after_eviction_is_capacity(self):
        cache = SetAssociativeCache(2 * 128, 2, 128)
        cache.lookup(0)
        cache.fill(0)
        # Evict line 0 by filling the set beyond capacity.
        cache.fill(cache.num_sets)
        cache.fill(2 * cache.num_sets)
        cache.lookup(0)
        assert cache.stats.capacity_conflict_misses == 1

    def test_invalidated_line_remiss_is_capacity(self):
        cache = make_cache()
        cache.lookup(5)
        cache.fill(5)
        cache.invalidate(5)
        cache.lookup(5)
        assert cache.stats.capacity_conflict_misses == 1


class TestStorePolicy:
    """Write-evict on hit, write-no-allocate on miss (paper Section 4)."""

    def test_write_hit_evicts_line(self):
        cache = make_cache()
        cache.fill(9)
        assert cache.write_access(9) is True
        assert cache.probe(9) is None

    def test_write_miss_does_not_allocate(self):
        cache = make_cache()
        assert cache.write_access(11) is False
        assert cache.probe(11) is None

    def test_write_eviction_skips_hook(self):
        """Stores invalidate silently: the line must not be preserved
        as a victim (the store data goes down the hierarchy)."""
        seen = []
        cache = make_cache(hook=lambda a, l: seen.append(a))
        cache.fill(13)
        cache.write_access(13)
        assert seen == []

    def test_write_counts(self):
        cache = make_cache()
        cache.fill(1)
        cache.write_access(1)
        cache.write_access(2)
        assert cache.stats.write_hits == 1
        assert cache.stats.write_misses == 1


class TestResidentLines:
    def test_resident_lines_match_fills(self):
        cache = make_cache()
        addrs = {5, 70, 135, 2000}
        for a in addrs:
            cache.fill(a)
        assert set(cache.resident_lines()) == addrs

    def test_reset_stats(self):
        cache = make_cache()
        cache.lookup(1)
        cache.reset_stats()
        assert cache.stats.accesses == 0
