"""End-to-end coverage for ``SMExtension.attach`` capability-flag
auto-resolution — the runtime contract the ``capability`` lint pass
re-derives statically.

For every architecture extension the repo ships, a tiny kernel is run
with ``keep_objects=True`` and the *resolved* flags on the live
extension are checked against the expected table, together with the
``SM._ext_*`` gates mirrored from them. Includes Linebacker's pinned
case (``enable_victim_cache=False``): the hooks stay overridden but
the flags — and therefore the SM gates — must read False.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.baselines.cache_ext import config_with_cache_ext
from repro.baselines.ccws import ccws_factory
from repro.baselines.cerf import cerf_factory
from repro.baselines.pcal import pcal_factory
from repro.config import scaled_config
from repro.core.linebacker import linebacker_factory
from repro.gpu.extension import SMExtension
from repro.gpu.gpu import run_kernel
from repro.workloads.generator import AppSpec, LoadSpec, Pattern, Scope, build_kernel

#: flag -> the hook it gates (the contract the SM hot path relies on).
FLAG_HOOKS = {
    "wants_ticks": "on_tick",
    "wants_load_outcomes": "on_load_outcome",
    "has_victim_cache": "lookup_victim",
    "may_bypass": "should_bypass",
    "wants_store_events": "on_store",
    "controls_fill": "allocate_fill",
    "wants_evictions": "on_l1_eviction",
}


def tiny_kernel():
    spec = AppSpec(
        name="cap", description="capability probe", cache_sensitive=True,
        num_ctas=2, warps_per_cta=2, regs_per_thread=16,
        iterations=4, alu_per_iteration=1,
        loads=(LoadSpec(0x100, Pattern.REUSE, 64, Scope.GLOBAL),),
    )
    return build_kernel(spec)


def flags_of(ext) -> dict[str, bool]:
    return {flag: getattr(ext, flag) for flag in FLAG_HOOKS}


#: arch -> (extension factory from a LinebackerConfig, expected flags).
CASES = {
    "linebacker": (
        lambda cfg: linebacker_factory(cfg),
        {
            "wants_ticks": True,
            "wants_load_outcomes": True,
            "has_victim_cache": True,
            "may_bypass": False,
            "wants_store_events": True,
            "controls_fill": False,
            "wants_evictions": True,
        },
    ),
    "linebacker_pinned": (
        lambda cfg: linebacker_factory(replace(cfg, enable_victim_cache=False)),
        {
            "wants_ticks": True,
            "wants_load_outcomes": True,
            "has_victim_cache": False,   # pinned despite overridden hook
            "may_bypass": False,
            "wants_store_events": False,  # pinned alongside it
            "controls_fill": False,
            "wants_evictions": True,
        },
    ),
    "pcal": (
        lambda cfg: pcal_factory(cfg),
        {
            "wants_ticks": True,
            "wants_load_outcomes": True,
            "has_victim_cache": False,   # PCAL config pins the cache off
            "may_bypass": True,          # the one bypassing architecture
            "wants_store_events": False,
            "controls_fill": False,
            "wants_evictions": True,
        },
    ),
    "cerf": (
        lambda cfg: cerf_factory(cfg),
        {
            "wants_ticks": True,
            "wants_load_outcomes": True,
            "has_victim_cache": True,
            "may_bypass": False,
            "wants_store_events": True,
            "controls_fill": False,
            "wants_evictions": True,
        },
    ),
    "ccws": (
        lambda cfg: ccws_factory(cfg),
        {
            "wants_ticks": True,
            "wants_load_outcomes": True,
            "has_victim_cache": False,
            "may_bypass": False,
            "wants_store_events": False,
            "controls_fill": False,
            "wants_evictions": True,
        },
    ),
}


def run_with(factory):
    cfg = scaled_config(num_sms=1)
    ext_factory = factory(cfg.linebacker) if factory else None
    return run_kernel(
        cfg, tiny_kernel(), extension_factory=ext_factory, keep_objects=True
    )


@pytest.mark.parametrize("arch", sorted(CASES))
def test_attach_resolves_the_expected_flags(arch):
    factory, expected = CASES[arch]
    result = run_with(factory)
    assert flags_of(result.extensions[0]) == expected


@pytest.mark.parametrize("arch", sorted(CASES))
def test_sm_gates_mirror_the_resolved_flags(arch):
    factory, expected = CASES[arch]
    result = run_with(factory)
    sm = result.sms[0]
    gates = {flag: getattr(sm, f"_ext_{flag}") for flag in FLAG_HOOKS}
    assert gates == expected
    assert sm._ext_inert is (not any(expected.values()))


@pytest.mark.parametrize("arch", sorted(CASES))
def test_unpinned_flags_match_hook_overrides(arch):
    """Where a flag is *not* pinned by configuration, auto-resolution
    must equal "is the hook overridden somewhere below SMExtension"."""
    factory, expected = CASES[arch]
    result = run_with(factory)
    ext = result.extensions[0]
    for flag, hook in FLAG_HOOKS.items():
        overridden = getattr(type(ext), hook) is not getattr(SMExtension, hook)
        if expected[flag]:
            # A True flag always implies a real override to dispatch to.
            assert overridden, (arch, flag, hook)


def test_cache_ext_runs_an_inert_base_extension():
    """cache_ext has no extension of its own: the SM must carry a
    plain SMExtension with every capability off and the inert
    fast-path engaged."""
    cfg = scaled_config(num_sms=1)
    kernel = tiny_kernel()
    result = run_kernel(
        config_with_cache_ext(cfg, kernel), kernel, keep_objects=True
    )
    ext = result.extensions[0]
    assert type(ext) is SMExtension
    assert flags_of(ext) == {flag: False for flag in FLAG_HOOKS}
    sm = result.sms[0]
    assert sm._ext_inert is True


def test_plain_base_extension_resolves_all_false():
    ext = SMExtension()
    assert all(getattr(ext, flag) is None for flag in FLAG_HOOKS)
    result = run_kernel(
        scaled_config(num_sms=1), tiny_kernel(),
        extension_factory=SMExtension, keep_objects=True,
    )
    assert flags_of(result.extensions[0]) == {f: False for f in FLAG_HOOKS}
