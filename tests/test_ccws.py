"""Tests for the CCWS baseline (lost-locality warp throttling)."""

from repro.baselines.ccws import (
    LOST_LOCALITY_SCORE,
    run_ccws,
)
from repro.config import scaled_config
from repro.gpu.gpu import run_kernel
from repro.workloads.generator import AppSpec, LoadSpec, Pattern, Scope, build_kernel


def config():
    return scaled_config(num_sms=1, window_cycles=400)


def thrashing_kernel(ws=1024, ctas=8, warps=8, iters=100):
    spec = AppSpec(
        name="thrash", description="t", cache_sensitive=True,
        num_ctas=ctas, warps_per_cta=warps, regs_per_thread=16,
        iterations=iters, alu_per_iteration=2,
        loads=(LoadSpec(0x100, Pattern.DIVERGENT, ws, Scope.GLOBAL, lines_per_access=1),),
    )
    return build_kernel(spec)


class TestLostLocalityDetection:
    def test_own_reference_scores(self):
        cfg = config()
        result = run_ccws(cfg, thrashing_kernel(), keep_objects=True)
        ext = result.extensions[0]
        assert ext.lost_locality_events > 0

    def test_scores_decay(self):
        cfg = config()
        result = run_ccws(cfg, thrashing_kernel(iters=40), keep_objects=True)
        ext = result.extensions[0]
        # By the drain, decay has collapsed most scores.
        assert sum(ext.scores.values()) < ext.lost_locality_events * LOST_LOCALITY_SCORE


class TestThrottling:
    def test_blocks_warps_under_thrash(self):
        cfg = config()
        result = run_ccws(cfg, thrashing_kernel(), keep_objects=True)
        ext = result.extensions[0]
        assert ext.max_blocked > 0

    def test_all_work_completes(self):
        cfg = config()
        kernel = thrashing_kernel()
        base = run_kernel(cfg, kernel)
        ccws = run_ccws(cfg, kernel)
        assert ccws.instructions == base.instructions

    def test_no_warps_left_blocked_at_end(self):
        cfg = config()
        result = run_ccws(cfg, thrashing_kernel(), keep_objects=True)
        ext = result.extensions[0]
        assert not ext._blocked

    def test_cache_friendly_kernel_barely_throttled(self):
        cfg = config()
        result = run_ccws(cfg, thrashing_kernel(ws=64), keep_objects=True)
        ext = result.extensions[0]
        # Working set fits the L1: few lost-locality events, little
        # blocking pressure.
        assert ext.max_blocked <= 8


class TestPaperClaim:
    def test_best_swl_at_least_matches_ccws(self):
        """Paper Section 2.4: the Best-SWL oracle outperforms dynamic
        schemes like CCWS (it is the stronger baseline by design)."""
        from repro.baselines.swl import best_swl

        cfg = config()
        kernel = thrashing_kernel(iters=60)
        oracle = best_swl(cfg, kernel)
        ccws = run_ccws(cfg, thrashing_kernel(iters=60))
        assert oracle.ipc >= ccws.ipc * 0.9
