"""Tests for the ASCII chart renderer."""

from repro.analysis.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart("T", {"a": 1.0, "bb": 2.0})
        assert "a" in text and "bb" in text
        assert "1.00" in text and "2.00" in text

    def test_peak_value_fills_width(self):
        text = bar_chart("T", {"x": 4.0}, width=10)
        assert "#" * 10 in text

    def test_reference_marker_drawn(self):
        text = bar_chart("T", {"low": 0.5, "high": 2.0}, reference=1.0)
        assert "|" in text
        assert "| = 1.00" in text

    def test_zero_and_negative_values_render(self):
        text = bar_chart("T", {"zero": 0.0, "neg": -1.0})
        assert "0.00" in text and "-1.00" in text

    def test_empty_chart(self):
        assert "(no data)" in bar_chart("T", {})


class TestGroupedBarChart:
    def test_groups_and_series_render(self):
        rows = {"g1": {"a": 1.0, "b": 2.0}, "g2": {"a": 3.0, "b": 0.5}}
        text = grouped_bar_chart("T", rows, series=("a", "b"))
        assert "g1:" in text and "g2:" in text
        assert text.count("a ") >= 2

    def test_missing_series_defaults_to_zero(self):
        rows = {"g": {"a": 1.0}}
        text = grouped_bar_chart("T", rows, series=("a", "b"))
        assert "0.00" in text

    def test_empty(self):
        assert "(no data)" in grouped_bar_chart("T", {})
