"""Analytic workload classifier: re-derives the paper's Fig 1-4 load
characteristics (streaming, coalescing, sharing scope, per-warp
consistency, statically-unused register fraction) from trace prefixes,
and pins that all 20 built-in apps land in their published classes."""

import sys
from pathlib import Path

import pytest

from repro.workloads.classify import (
    STREAMING_MISS_THRESHOLD,
    check_expected_classes,
    classify_app,
    classify_kernel,
    classify_workload,
    expected_classes_for_app,
)
from repro.workloads.generator import LoadSpec, Pattern, Scope, build_kernel
from repro.workloads.suite import ALL_APPS

sys.path.insert(0, str(Path(__file__).parent))
from workload_helpers import make_app  # noqa: E402


def classify_one(load, iters=40, warps=2, ctas=4, regs=8):
    kernel = build_kernel(
        make_app(load, iters=iters, warps=warps, ctas=ctas, regs=regs)
    )
    return classify_kernel(kernel)


class TestSyntheticLoads:
    def test_stream_classifies_streaming(self):
        c = classify_one(LoadSpec(0x100, Pattern.STREAM, 0))
        lc = c.load_class(0x100)
        assert lc.streaming
        assert lc.infinite_miss_ratio > STREAMING_MISS_THRESHOLD
        assert lc.unique_lines == lc.line_touches  # never revisits
        assert lc.sharing == "private"

    def test_small_reuse_is_not_streaming(self):
        lc = classify_one(LoadSpec(0x100, Pattern.REUSE, 8)).load_class(0x100)
        assert not lc.streaming
        assert lc.reuse_factor > 1.0

    def test_sharing_scopes(self):
        assert classify_one(
            LoadSpec(0x100, Pattern.REUSE, 9, Scope.WARP)
        ).load_class(0x100).sharing == "private"
        assert classify_one(
            LoadSpec(0x100, Pattern.REUSE, 9, Scope.CTA)
        ).load_class(0x100).sharing == "intra-cta"
        assert classify_one(
            LoadSpec(0x100, Pattern.REUSE, 9, Scope.GLOBAL)
        ).load_class(0x100).sharing == "inter-cta"

    def test_uncoalesced_detection(self):
        c = classify_one(LoadSpec(0x100, Pattern.DIVERGENT, 48,
                                  lines_per_access=3))
        lc = c.load_class(0x100)
        assert lc.uncoalesced
        assert lc.mean_lines_per_access == pytest.approx(3.0)
        single = classify_one(LoadSpec(0x100, Pattern.REUSE, 8))
        assert not single.load_class(0x100).uncoalesced

    def test_register_fraction_tracks_pressure(self):
        light = classify_kernel(build_kernel(make_app(
            LoadSpec(0x100, Pattern.REUSE, 8), regs=8)))
        heavy = classify_kernel(build_kernel(make_app(
            LoadSpec(0x100, Pattern.REUSE, 8), regs=64)))
        assert 0.0 <= heavy.unused_register_fraction
        assert heavy.unused_register_fraction <= light.unused_register_fraction
        assert light.unused_register_fraction <= 1.0

    def test_streaming_pcs_helper(self):
        c = classify_kernel(build_kernel(make_app(
            (LoadSpec(0x100, Pattern.STREAM, 0),
             LoadSpec(0x204, Pattern.REUSE, 8)),
            iters=40,
        )))
        assert c.streaming_pcs == (0x100,)


class TestMultiTenantSampling:
    def test_both_tenants_observed(self):
        from repro.workloads.spec import (
            KernelPhase,
            TenantSpec,
            WorkloadSpec,
        )

        spec = WorkloadSpec(
            name="mt", description="", num_ctas=6, warps_per_cta=2,
            regs_per_thread=16,
            tenants=(
                TenantSpec(name="a", phases=(KernelPhase(
                    iterations=12,
                    loads=(LoadSpec(0x100, Pattern.REUSE, 8),)),)),
                TenantSpec(name="b", phases=(KernelPhase(
                    iterations=12,
                    loads=(LoadSpec(0x300, Pattern.STREAM, 0),)),)),
            ),
        )
        c = classify_workload(spec)
        assert {lc.pc for lc in c.loads} == {0x100, 0x300}
        assert c.load_class(0x300).streaming
        assert not c.load_class(0x100).streaming


class TestPublishedClasses:
    """The headline gate: every Table-2 app must re-derive its
    published Fig 1-4 characteristics from its own trace prefix."""

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_app_lands_in_published_class(self, name):
        classification = classify_app(name)
        expected = expected_classes_for_app(name)
        mismatches = check_expected_classes(classification, expected)
        assert not mismatches, f"{name}: {mismatches}"
