"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import FIGURES, main


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_overhead_command(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "total (KB)" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figNaN"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--apps", "NOPE"])

    def test_fig1_tiny_run(self, capsys):
        assert main(["fig1", "--apps", "LI", "--scale", "0.1", "--sms", "1"]) == 0
        out = capsys.readouterr().out
        assert "LI" in out

    def test_every_figure_registered(self):
        assert set(FIGURES) == {f"fig{i}" for i in list(range(1, 6)) + list(range(9, 19))}
