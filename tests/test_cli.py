"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import FIGURES, main


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_overhead_command(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "total (KB)" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figNaN"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--apps", "NOPE"])

    def test_fig1_tiny_run(self, capsys):
        assert main(["fig1", "--apps", "LI", "--scale", "0.1", "--sms", "1"]) == 0
        out = capsys.readouterr().out
        assert "LI" in out

    def test_every_figure_registered(self):
        expected = {f"fig{i}" for i in list(range(1, 6)) + list(range(9, 19))}
        assert set(FIGURES) == expected | {"dynamics"}


class TestTraceCLI:
    def test_trace_json_emits_window_rows(self, capsys):
        assert main(
            ["trace", "GE", "linebacker", "--json", "--scale", "0.1", "--sms", "1"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "GE"
        assert payload["arch"] == "linebacker"
        assert payload["rows"], "expected at least one closed window"
        window = payload["window_cycles"]
        for row in payload["rows"]:
            assert row["cycle"] % window == 0
            for key in ("ipc", "active", "inactive", "vps", "state", "phase"):
                assert key in row

    def test_trace_text_table(self, capsys):
        assert main(["trace", "GE", "--scale", "0.1", "--sms", "1"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "VPs" in out
        assert "final:" in out

    def test_trace_output_file(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(
            ["trace", "GE", "--json", "--scale", "0.1", "--sms", "1",
             "--output", str(target)]
        ) == 0
        capsys.readouterr()
        import json

        assert json.loads(target.read_text())["app"] == "GE"

    def test_trace_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["trace", "NOPE"])

    def test_trace_rejects_arch_without_timeseries_support(self):
        with pytest.raises(SystemExit):
            main(["trace", "GE", "best_swl"])

    def test_trace_rejects_out_of_range_sm(self):
        with pytest.raises(SystemExit):
            main(["trace", "GE", "--sms", "2", "--sm", "5"])
