"""Tests for the Figure 15 combination architectures and the CERF
unified-space race handling."""

import pytest

from repro.analysis import ExperimentContext
from repro.baselines.cerf import CERFExtension
from repro.config import scaled_config
from repro.core.load_monitor import MonitorState
from repro.gpu.gpu import run_kernel
from repro.workloads.generator import AppSpec, LoadSpec, Pattern, Scope, build_kernel


def kernel(ws=256, iters=100):
    spec = AppSpec(
        name="k", description="t", cache_sensitive=True,
        num_ctas=8, warps_per_cta=4, regs_per_thread=16,
        iterations=iters, alu_per_iteration=2,
        loads=(LoadSpec(0x100, Pattern.DIVERGENT, ws, Scope.GLOBAL, lines_per_access=1),),
    )
    return build_kernel(spec)


@pytest.fixture(scope="module")
def tiny_ctx():
    return ExperimentContext(
        config=scaled_config(num_sms=2, window_cycles=600),
        scale=0.15,
        apps=("S2",),
    )


class TestCERFRaceHandling:
    def test_stale_entry_detected_and_dropped(self):
        """CERF caches in rarely-used *live* register space; when a
        register is reclaimed, the stale tag must be dropped, not
        served."""
        cfg = scaled_config(num_sms=1, window_cycles=600)
        result = run_kernel(
            cfg, kernel(ws=512, iters=150),
            extension_factory=lambda: CERFExtension(cfg.linebacker),
        )
        ext = result.extensions[0]
        # CERF is active from cycle 0 with a synthetic full selection.
        assert ext.load_monitor.state is MonitorState.SELECTED
        # Any stale reads were turned into misses, never wrong data:
        # corruption counter tracks LB-style verified reads only; for
        # CERF the invariant is simply that execution completed.
        assert result.sms[0].done

    def test_cerf_partitions_cover_live_register_tail(self):
        cfg = scaled_config(num_sms=1, window_cycles=600)
        result = run_kernel(
            cfg, kernel(), extension_factory=lambda: CERFExtension(cfg.linebacker)
        )
        ext = result.extensions[0]
        # With 16 regs/thread x 4 warps x 8 CTAs = 512 registers live,
        # CERF should still activate partitions over the idle space.
        assert ext.vtt.partitions  # geometry exists


class TestFig15Combos:
    def test_pcal_svc_bypasses_and_reg_hits(self, tiny_ctx):
        result = tiny_ctx.run("S2", "pcal_svc")
        breakdown = result.request_breakdown
        assert breakdown["bypass"] > 0 or breakdown["reg_hit"] >= 0

    def test_pcal_cerf_runs_to_completion(self, tiny_ctx):
        result = tiny_ctx.run("S2", "pcal_cerf")
        base = tiny_ctx.run("S2", "baseline")
        assert result.instructions == base.instructions

    def test_lb_cache_ext_uses_bigger_l1(self, tiny_ctx):
        result = tiny_ctx.run("S2", "lb_cache_ext")
        base = tiny_ctx.run("S2", "baseline")
        assert result.instructions == base.instructions
        # The enlarged L1 has more sets than the stock 48.
        assert result.sms[0].l1.num_sets >= base.sms[0].l1.num_sets
