"""Tests for the configuration layer (Tables 1 and 3)."""

import pytest

from repro.config import (
    KB,
    LINE_SIZE,
    WARP_REGISTER_BYTES,
    GPUConfig,
    LinebackerConfig,
    paper_config,
    scaled_config,
)


class TestGPUConfig:
    def test_table1_defaults(self):
        gpu = GPUConfig()
        assert gpu.num_sms == 16
        assert gpu.clock_mhz == 1126.0
        assert gpu.max_threads_per_sm == 2048
        assert gpu.max_warps_per_sm == 64
        assert gpu.max_ctas_per_sm == 32
        assert gpu.num_schedulers == 4
        assert gpu.register_file_bytes == 256 * KB
        assert gpu.shared_memory_bytes == 96 * KB
        assert gpu.l1_size_bytes == 48 * KB
        assert gpu.l1_assoc == 8
        assert gpu.l1_line_bytes == 128
        assert gpu.l1_mshrs == 64
        assert gpu.l2_size_bytes == 2048 * KB
        assert gpu.dram_bandwidth_gbps == 352.5

    def test_warp_register_equals_line_size(self):
        """The size match Linebacker exploits: one warp register holds
        exactly one cache line (32 threads x 4 B = 128 B)."""
        assert WARP_REGISTER_BYTES == LINE_SIZE == 128

    def test_l1_geometry(self):
        gpu = GPUConfig()
        assert gpu.l1_num_sets == 48
        assert gpu.num_warp_registers == 2048

    def test_with_l1_size(self):
        gpu = GPUConfig().with_l1_size(128 * KB)
        assert gpu.l1_size_bytes == 128 * KB
        assert gpu.l1_num_sets == 128

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GPUConfig().num_sms = 4


class TestLinebackerConfig:
    def test_table3_defaults(self):
        lb = LinebackerConfig()
        assert lb.window_cycles == 50_000
        assert lb.hit_ratio_threshold == 0.20
        assert lb.ipc_upper_bound == 0.10
        assert lb.ipc_lower_bound == -0.10
        assert lb.vtt_ways == 4
        assert lb.max_vtt_partitions == 8
        assert lb.vp_access_latency == 3
        assert lb.vp_granularity_bytes == 24 * KB

    def test_lines_per_partition(self):
        """24 KB / 128 B = 192 victim lines per partition."""
        assert LinebackerConfig().lines_per_partition == 192

    def test_with_ways_scales_granularity(self):
        lb = LinebackerConfig().with_ways(1)
        assert lb.vtt_ways == 1
        assert lb.vp_granularity_bytes == 6 * KB
        assert lb.max_vtt_partitions == 32
        lb16 = LinebackerConfig().with_ways(16)
        assert lb16.vp_granularity_bytes == 96 * KB
        assert lb16.max_vtt_partitions == 2

    def test_total_victim_capacity_constant_across_ways(self):
        """Sweeping associativity changes granularity, not the total
        mappable victim space (Figure 10 compares like with like)."""
        for ways in (1, 4, 16):
            lb = LinebackerConfig().with_ways(ways)
            total = lb.vp_granularity_bytes * lb.max_vtt_partitions
            assert total == 192 * KB


class TestScaledConfig:
    def test_shared_resources_scale_with_sms(self):
        full = GPUConfig()
        cfg = scaled_config(num_sms=4)
        assert cfg.gpu.num_sms == 4
        share = 4 / 16
        assert cfg.gpu.l2_size_bytes == int(full.l2_size_bytes * share)
        assert cfg.gpu.dram_bandwidth_gbps == pytest.approx(
            full.dram_bandwidth_gbps * share
        )
        assert cfg.gpu.l2_lines_per_cycle == pytest.approx(
            full.l2_lines_per_cycle * share
        )

    def test_per_sm_structures_stay_paper_sized(self):
        cfg = scaled_config(num_sms=4)
        assert cfg.gpu.l1_size_bytes == 48 * KB
        assert cfg.gpu.register_file_bytes == 256 * KB
        assert cfg.gpu.num_schedulers == 4

    def test_paper_config_is_full_size(self):
        cfg = paper_config()
        assert cfg.gpu.num_sms == 16
        assert cfg.linebacker.window_cycles == 50_000
