"""Unit tests for the CTA Throttling Logic (IPC monitor, CTA manager,
hill-climb controller)."""

import pytest

from repro.core.cta_throttle import (
    CTAManager,
    CTAThrottleController,
    IPCMonitor,
    SearchPhase,
    ThrottleDecision,
)


class TestIPCMonitor:
    def test_first_window_has_no_variation(self):
        mon = IPCMonitor()
        assert mon.record_window(1000, 1000) == 0.0
        assert mon.current_ipc == 1.0

    def test_variation_equation(self):
        """IPC_Var(prev, cur) = (cur - prev) / prev (paper Eq. 1)."""
        mon = IPCMonitor()
        mon.record_window(1000, 1000)
        var = mon.record_window(1200, 1000)
        assert var == pytest.approx(0.20)

    def test_negative_variation(self):
        mon = IPCMonitor()
        mon.record_window(1000, 1000)
        assert mon.record_window(800, 1000) == pytest.approx(-0.20)

    def test_previous_ipc_shifts(self):
        mon = IPCMonitor()
        mon.record_window(500, 1000)
        mon.record_window(700, 1000)
        assert mon.previous_ipc == pytest.approx(0.5)
        assert mon.current_ipc == pytest.approx(0.7)


class TestCTAManager:
    def test_launch_tracks_frn_and_lrn(self):
        mgr = CTAManager(regs_per_cta=128)
        mgr.register_launch(0, first_register=0)
        mgr.register_launch(1, first_register=128)
        assert mgr.table[1].frn == 128
        assert mgr.largest_register_number == 255

    def test_throttle_candidate_is_largest_id(self):
        """Paper: the ACT bit of the active CTA with the largest
        hardware CTA ID is cleared first."""
        mgr = CTAManager(regs_per_cta=64)
        for slot in (0, 1, 2):
            mgr.register_launch(slot, slot * 64)
        assert mgr.throttle_candidate() == 2

    def test_throttled_cta_not_active(self):
        mgr = CTAManager(regs_per_cta=64)
        mgr.register_launch(0, 0)
        mgr.register_launch(1, 64)
        mgr.mark_throttled(1, backup_address=0x8000_0000)
        assert mgr.active_slots() == [0]
        assert mgr.inactive_slots() == [1]
        assert not mgr.table[1].backup_complete

    def test_backup_complete_sets_c_bit_and_flushes_frn(self):
        mgr = CTAManager(regs_per_cta=64)
        mgr.register_launch(0, 0)
        mgr.mark_throttled(0, 0x8000_0000)
        mgr.mark_backup_complete(0)
        info = mgr.table[0]
        assert info.backup_complete
        assert info.frn is None
        assert mgr.restorable_slots() == [0]

    def test_lrn_shrinks_after_backup(self):
        mgr = CTAManager(regs_per_cta=64)
        mgr.register_launch(0, 0)
        mgr.register_launch(1, 64)
        mgr.mark_throttled(1, 0x8000_0000)
        mgr.mark_backup_complete(1)
        assert mgr.largest_register_number == 63

    def test_reactivation_restores_tracking(self):
        mgr = CTAManager(regs_per_cta=64)
        mgr.register_launch(0, 0)
        mgr.mark_throttled(0, 0x8000_0000)
        mgr.mark_backup_complete(0)
        mgr.mark_reactivated(0, first_register=64)
        info = mgr.table[0]
        assert info.act and info.frn == 64
        assert info.backup_address is None

    def test_finish_removes_entry(self):
        mgr = CTAManager(regs_per_cta=64)
        mgr.register_launch(0, 0)
        mgr.register_finish(0)
        assert mgr.table == {}


class TestController:
    def make(self):
        return CTAThrottleController(upper_bound=0.10, lower_bound=-0.10)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            CTAThrottleController(upper_bound=-0.1, lower_bound=0.1)

    def test_searching_throttles_while_ipc_holds(self):
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        d = ctl.decide(980, 1000, active_ctas=8, inactive_ctas=0)
        assert d is ThrottleDecision.THROTTLE

    def test_search_stops_on_ipc_drop_and_recovers(self):
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        ctl.decide(950, 1000, active_ctas=8, inactive_ctas=0)   # throttle
        d = ctl.decide(850, 1000, active_ctas=7, inactive_ctas=1)
        assert d is ThrottleDecision.REACTIVATE
        assert ctl.phase is SearchPhase.RECOVERING

    def test_recovery_returns_to_best_count_then_settles(self):
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        ctl.phase = SearchPhase.RECOVERING
        d = ctl.decide(900, 1000, active_ctas=6, inactive_ctas=2)
        assert d is ThrottleDecision.REACTIVATE
        d = ctl.decide(990, 1000, active_ctas=8, inactive_ctas=0)
        assert d is ThrottleDecision.HOLD
        assert ctl.phase is SearchPhase.SETTLED

    def test_best_ipc_updates_during_descent(self):
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        ctl.decide(1200, 1000, active_ctas=7, inactive_ctas=1)
        assert ctl.best_ipc == pytest.approx(1.2)
        assert ctl.best_active == 7

    def test_min_active_floor(self):
        ctl = CTAThrottleController(min_active_ctas=2)
        ctl.best_ipc = 1.0
        d = ctl.decide(1000, 1000, active_ctas=2, inactive_ctas=6)
        assert d is not ThrottleDecision.THROTTLE

    def test_record_only_never_acts(self):
        """Windows with CTA turnover update history but take no action."""
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        d = ctl.decide(2000, 1000, active_ctas=8, inactive_ctas=0, record_only=True)
        assert d is ThrottleDecision.HOLD
        assert ctl.best_ipc == pytest.approx(2.0)

    def test_settled_reopens_on_sustained_drop(self):
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        ctl.phase = SearchPhase.SETTLED
        d = ctl.decide(700, 1000, active_ctas=6, inactive_ctas=2)
        assert d is ThrottleDecision.REACTIVATE
        assert ctl.phase is SearchPhase.RECOVERING

    def test_settled_holds_within_tolerance(self):
        ctl = self.make()
        ctl.best_ipc = 1.0
        ctl.best_active = 8
        ctl.phase = SearchPhase.SETTLED
        assert (
            ctl.decide(950, 1000, active_ctas=6, inactive_ctas=2)
            is ThrottleDecision.HOLD
        )
